//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the slice of the rand API used by the workload generators:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], integer
//! [`Rng::gen_range`] over `Range`/`RangeInclusive`, and
//! [`Rng::gen_bool`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a
//! different stream from upstream rand's ChaCha12, which is fine for
//! this repo: seeds only need to be stable across runs of *this*
//! workspace, not bit-compatible with crates.io rand.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of reproducible generators from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        if p >= 1.0 {
            return true;
        }
        // Threshold comparison on the top 53 bits keeps the test exact
        // for every representable p in [0, 1).
        let threshold = (p * (1u64 << 53) as f64) as u64;
        (self.next_u64() >> 11) < threshold
    }
}

impl<R: RngCore> Rng for R {}

/// A range from which [`Rng::gen_range`] can sample a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Maps a uniform `u64` into `[0, span)` by widening multiply.
///
/// Bias is at most `span / 2^64`, far below anything observable at the
/// spans this workspace samples (all under `2^40`).
fn uniform_below(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_unsigned_sample {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                match (end - start).checked_add(1) {
                    Some(span) => start + uniform_below(rng, span as u64) as $t,
                    // Full-width range: every value is fair game.
                    None => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_unsigned_sample!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                match (end.wrapping_sub(start) as u64).checked_add(1) {
                    Some(span) => start.wrapping_add(uniform_below(rng, span) as $t),
                    None => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_signed_sample!(i32, i64);

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2_000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..3usize);
            assert!(w < 3);
            let s = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn signed_inclusive_hits_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..4_000 {
            match rng.gen_range(-2..=2i64) {
                -2 => lo = true,
                2 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn distribution_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buckets = [0u32; 8];
        for _ in 0..8_000 {
            buckets[rng.gen_range(0..8usize)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((700..1_300).contains(&b), "bucket {i} = {b}");
        }
    }
}
