//! Offline stand-in for the `parking_lot` crate, implemented over
//! `std::sync`.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the small slice of the `parking_lot` API it uses: `Mutex`,
//! `RwLock`, and `Condvar` with parking_lot's ergonomics (no lock
//! poisoning, `Condvar::wait` taking `&mut MutexGuard`). Poisoned std
//! locks are recovered transparently: a panic while holding a lock in
//! one query thread must not wedge the whole server.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// A mutual exclusion primitive (non-poisoning facade over
/// [`std::sync::Mutex`]).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard of a locked [`Mutex`].
///
/// Holds an `Option` internally so [`Condvar::wait`] can temporarily take
/// the underlying std guard by value; the option is `Some` at every point
/// user code can observe.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

/// Result of a timed wait: whether the wait timed out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guard's mutex and waits for a
    /// notification; the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside wait");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Like [`Condvar::wait`], with a timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present outside wait");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Like [`Condvar::wait`], waiting until a deadline.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        // lint:allow(wall-clock): vendored stand-in for the external
        // parking_lot crate; implements the timeout primitive itself.
        #[allow(clippy::disallowed_methods)]
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        self.wait_for(guard, timeout)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// A reader-writer lock (non-poisoning facade over
/// [`std::sync::RwLock`]).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard of an [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard of an [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = Arc::new(RwLock::new(0u32));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 0);
        }
        *l.write() += 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
