//! Offline stand-in for the `crossbeam` crate, implemented over
//! [`std::sync::mpsc`].
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the slice of the crossbeam API it uses: bounded and unbounded
//! MPSC channels with crossbeam's error types and method names.

#![warn(missing_docs)]

/// Multi-producer channels (crossbeam-channel API subset).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    enum SenderInner<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    /// The sending half of a channel.
    pub struct Sender<T>(SenderInner<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                SenderInner::Bounded(s) => SenderInner::Bounded(s.clone()),
                SenderInner::Unbounded(s) => SenderInner::Unbounded(s.clone()),
            })
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderInner::Bounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
                SenderInner::Unbounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(SenderInner::Bounded(tx)), Receiver(rx))
    }

    /// Creates a channel with an unbounded buffer.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderInner::Unbounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn bounded_roundtrip() {
        let (tx, rx) = bounded(1);
        tx.send(7).unwrap();
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn unbounded_multi_producer() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(1).unwrap())
            .join()
            .unwrap();
        tx.send(2).unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }
}
