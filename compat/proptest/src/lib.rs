//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the slice of the proptest API its property tests use:
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros,
//! a [`strategy::Strategy`] trait with `prop_map`, integer-range and
//! tuple strategies, `prop::collection::vec`, `prop::bool::ANY`,
//! [`test_runner::ProptestConfig`], and [`test_runner::TestCaseError`].
//!
//! Differences from upstream that matter to authors of new tests:
//! cases are generated from a seed derived from the test name (fully
//! deterministic across runs), and failing inputs are reported but not
//! shrunk.

#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree and no
    /// shrinking: a strategy simply draws a value from an RNG.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// Strategy adapter returned by [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.sample(rng))
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length falls in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Strategies for `bool`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;

    /// Strategy yielding `true` and `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical instance of [`Any`].
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    //! Test execution: configuration, error plumbing, and the case loop.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-`proptest!`-block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case demonstrated a genuine failure.
        Fail(String),
        /// The case was rejected (e.g. by a precondition) — not a failure.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure from any stringy reason.
        pub fn fail<S: Into<String>>(reason: S) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Builds a rejection from any stringy reason.
        pub fn reject<S: Into<String>>(reason: S) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    /// The RNG handed to strategies while generating a case.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Creates a deterministic generator from a 64-bit seed.
        pub fn seed_from_u64(seed: u64) -> Self {
            TestRng(StdRng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    fn name_seed(name: &str) -> u64 {
        // FNV-1a: stable across runs and platforms, so every test has a
        // reproducible stream independent of sibling tests.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `f` once per configured case with a per-case deterministic
    /// RNG, panicking (with the case number and seed) on the first
    /// failure. Backing for the [`crate::proptest!`] macro.
    pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = name_seed(name);
        for case in 0..config.cases {
            let seed = base ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut rng = TestRng::seed_from_u64(seed);
            match f(&mut rng) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(reason)) => panic!(
                    "proptest `{name}` failed at case {case}/{} (seed {seed:#018x}): {reason}",
                    config.cases
                ),
            }
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias matching upstream's `prop::` paths.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests.
///
/// Accepts an optional leading `#![proptest_config(expr)]` followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items. Each body
/// runs once per generated case inside a closure returning
/// `Result<(), TestCaseError>`, so `?` and the `prop_assert*` macros
/// work as in upstream proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_proptest(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                let __case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

#[cfg(test)]
#[allow(clippy::overly_complex_bool_expr)] // tautology exercises prop_assert
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0u32..10, pair in (0u64..5, 1i64..4)) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 5 && (1..4).contains(&pair.1));
        }

        #[test]
        fn vec_and_map(
            v in prop::collection::vec((0u32..100).prop_map(|n| n * 2), 1..8),
            flag in prop::bool::ANY,
        ) {
            prop_assert!((1..8).contains(&v.len()));
            for n in &v {
                prop_assert_eq!(n % 2, 0);
                prop_assert!(*n < 200);
            }
            prop_assert!(flag || !flag);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn question_mark_and_config(x in 1u32..100) {
            let checked: Result<u32, String> = Ok(x);
            let y = checked.map_err(TestCaseError::fail)?;
            prop_assert_eq!(x, y, "round-trip broke for {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        let config = ProptestConfig::with_cases(16);
        crate::test_runner::run_proptest(&config, "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn same_test_name_gives_same_stream() {
        use crate::strategy::Strategy;
        let mut first = Vec::new();
        let config = ProptestConfig::with_cases(5);
        crate::test_runner::run_proptest(&config, "stream", |rng| {
            first.push((0u64..1_000_000).sample(rng));
            Ok(())
        });
        let mut second = Vec::new();
        crate::test_runner::run_proptest(&config, "stream", |rng| {
            second.push((0u64..1_000_000).sample(rng));
            Ok(())
        });
        assert_eq!(first, second);
        assert_eq!(first.len(), 5);
    }
}
