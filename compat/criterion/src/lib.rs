//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the slice of the criterion API its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — per benchmark it calibrates an
//! iteration count to a small time budget, takes `sample_size` timed
//! samples, and prints min/median/mean. Good enough for relative
//! comparisons in CI logs; it makes no statistical claims.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from
/// deleting the benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How [`Bencher::iter_batched`] amortizes setup cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many iterations per setup.
    SmallInput,
    /// Large inputs: few iterations per setup.
    LargeInput,
    /// Run setup before every iteration.
    PerIteration,
}

/// Identifies one benchmark within a group, e.g. `lookup/1024`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, `name/param`.
    pub fn new<S: Into<String>, P: Display>(name: S, param: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: Display>(param: P) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> String {
        id.id
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // lint:allow(wall-clock): the benchmark harness measures real time.
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs built by `setup`; only the routine
    /// is on the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            // lint:allow(wall-clock): the benchmark harness measures real time.
            #[allow(clippy::disallowed_methods)]
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Per-sample time budget: keeps full bench runs fast while still
/// averaging over enough iterations to be stable.
const SAMPLE_BUDGET: Duration = Duration::from_millis(10);

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Calibration pass: one iteration, to size later samples.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (SAMPLE_BUDGET.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let min = samples_ns[0];
    let median = samples_ns[samples_ns.len() / 2];
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    println!(
        "{label:<50} min {:>10}  median {:>10}  mean {:>10}  ({} samples x {} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        samples_ns.len(),
        iters
    );
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Reads CLI configuration; a no-op here, kept for API parity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, 20, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, String::from(id.into()));
        run_one(&label, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets_run_and_print(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter_batched(
                || vec![n; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, targets_run_and_print);

    #[test]
    fn group_macro_produces_runnable_fn() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            String::from(BenchmarkId::new("lookup", 1024)),
            "lookup/1024"
        );
        assert_eq!(String::from(BenchmarkId::from_parameter(8)), "8");
    }
}
