//! Model-checked atomics with a vector-clock weak-memory model.
//!
//! Inside `loom::model`, every atomic keeps its full store history. A
//! load does not simply return the latest value: it may observe any
//! store that is not yet ruled out by coherence (a thread never reads
//! older than what it already read) or by happens-before (a store that
//! hb-precedes the load supersedes everything before it in modification
//! order). Which admissible store is returned is a *scheduling decision*
//! explored exhaustively by the runtime — so an assertion that only
//! holds when a `Release`/`Acquire` edge exists will fail on some
//! interleaving once that edge is weakened to `Relaxed`.
//!
//! Outside a model the types are thin passthroughs over `std` atomics.

use crate::rt::{self, VClock, MAX_THREADS};
use std::sync::atomic::Ordering;
use std::sync::Mutex as StdMutex;

/// One entry in an atomic's modification order.
struct StoreRec {
    value: u64,
    /// The writer's vector clock at the moment of the store; used for
    /// the coherence/visibility cut.
    when: VClock,
    /// For `Release` (and stronger) stores: the clock a matching
    /// `Acquire` load joins into its own. RMWs inherit the head of the
    /// release sequence they extend.
    rel: Option<VClock>,
}

/// Per-model state of one atomic, rebuilt lazily each iteration.
struct ModelCell {
    /// Execution uid this state belongs to; stale cells are reset.
    uid: u64,
    stores: Vec<StoreRec>,
    /// Index of the newest store each thread has observed (coherence).
    last_seen: [usize; MAX_THREADS],
}

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

macro_rules! model_atomic {
    ($name:ident, $native:ty, $val:ty, $to:expr, $from:expr) => {
        /// Model-checked counterpart of the std atomic of the same name.
        #[derive(Default)]
        pub struct $name {
            native: $native,
            model: StdMutex<Option<ModelCell>>,
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name))
                    .field(&self.native.load(Ordering::Relaxed))
                    .finish()
            }
        }

        impl $name {
            /// Creates an atomic with an initial value.
            pub const fn new(v: $val) -> Self {
                Self {
                    native: <$native>::new(v),
                    model: StdMutex::new(None),
                }
            }

            /// Mutable access without synchronization.
            pub fn get_mut(&mut self) -> &mut $val {
                // Model state (if any) is stale after unsynchronized
                // mutation; drop it so the next op re-seeds from native.
                *self.model.get_mut().unwrap() = None;
                self.native.get_mut()
            }

            /// Consumes the atomic, returning the value.
            pub fn into_inner(self) -> $val {
                self.native.into_inner()
            }

            fn with_cell<R>(
                &self,
                f: impl FnOnce(&mut ModelCell, &std::sync::Arc<rt::Execution>, usize) -> R,
            ) -> Option<R> {
                let (exec, tid) = rt::current()?;
                exec.sched_point(tid);
                let mut slot = self.model.lock().unwrap();
                let stale = slot.as_ref().map(|c| c.uid != exec.uid).unwrap_or(true);
                if stale {
                    *slot = Some(ModelCell {
                        uid: exec.uid,
                        stores: vec![StoreRec {
                            value: ($to)(self.native.load(Ordering::Relaxed)),
                            when: VClock::default(),
                            rel: None,
                        }],
                        last_seen: [0; MAX_THREADS],
                    });
                }
                Some(f(slot.as_mut().unwrap(), &exec, tid))
            }

            /// Index of the oldest store this thread may still observe.
            fn visible_floor(cell: &ModelCell, clock: &VClock, tid: usize) -> usize {
                let mut floor = cell.last_seen[tid];
                for (j, s) in cell.stores.iter().enumerate().skip(floor + 1) {
                    // A store that happened-before the load supersedes
                    // all earlier stores in modification order.
                    if s.when.le(clock) {
                        floor = j;
                    }
                }
                floor
            }

            /// Loads a value; a relaxed load may observe stale stores.
            pub fn load(&self, order: Ordering) -> $val {
                self.with_cell(|cell, exec, tid| {
                    let idx = if order == Ordering::SeqCst {
                        // Approximation: SeqCst loads read the latest
                        // store (sound for the single-total-order part).
                        cell.stores.len() - 1
                    } else {
                        let clock = exec.clock_of(tid);
                        let floor = Self::visible_floor(cell, &clock, tid);
                        let n = cell.stores.len() - floor;
                        floor + if n > 1 { exec.decide(n) } else { 0 }
                    };
                    if is_acquire(order) {
                        if let Some(rel) = &cell.stores[idx].rel {
                            exec.join_clock(tid, rel);
                        }
                    }
                    cell.last_seen[tid] = idx;
                    ($from)(cell.stores[idx].value)
                })
                .unwrap_or_else(|| self.native.load(order))
            }

            /// Stores a value.
            pub fn store(&self, v: $val, order: Ordering) {
                let modeled = self.with_cell(|cell, exec, tid| {
                    let when = exec.clock_of(tid);
                    let rel = is_release(order).then(|| when.clone());
                    cell.stores.push(StoreRec {
                        value: ($to)(v),
                        when,
                        rel,
                    });
                    cell.last_seen[tid] = cell.stores.len() - 1;
                    self.native.store(v, Ordering::Relaxed);
                });
                if modeled.is_none() {
                    self.native.store(v, order);
                }
            }

            /// Read-modify-write core: RMWs always read the latest store
            /// and extend its release sequence.
            fn rmw(&self, order: Ordering, f: impl Fn(u64) -> u64) -> Option<$val> {
                self.with_cell(|cell, exec, tid| {
                    let idx = cell.stores.len() - 1;
                    let old = cell.stores[idx].value;
                    if is_acquire(order) {
                        if let Some(rel) = &cell.stores[idx].rel {
                            exec.join_clock(tid, rel);
                        }
                    }
                    let when = exec.clock_of(tid);
                    let rel = if is_release(order) {
                        Some(when.clone())
                    } else {
                        // An RMW continues the release sequence headed by
                        // the store it replaces.
                        cell.stores[idx].rel.clone()
                    };
                    let new = f(old);
                    cell.stores.push(StoreRec {
                        value: new,
                        when,
                        rel,
                    });
                    cell.last_seen[tid] = cell.stores.len() - 1;
                    self.native.store(($from)(new), Ordering::Relaxed);
                    ($from)(old)
                })
            }

            /// Atomically replaces the value, returning the previous one.
            pub fn swap(&self, v: $val, order: Ordering) -> $val {
                self.rmw(order, |_| ($to)(v))
                    .unwrap_or_else(|| self.native.swap(v, order))
            }

            /// Stores `new` if the current value equals `current`.
            pub fn compare_exchange(
                &self,
                current: $val,
                new: $val,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$val, $val> {
                let modeled = self.with_cell(|cell, exec, tid| {
                    let idx = cell.stores.len() - 1;
                    let old = cell.stores[idx].value;
                    if old != ($to)(current) {
                        if is_acquire(failure) {
                            if let Some(rel) = &cell.stores[idx].rel {
                                exec.join_clock(tid, rel);
                            }
                        }
                        cell.last_seen[tid] = idx;
                        return Err(($from)(old));
                    }
                    if is_acquire(success) {
                        if let Some(rel) = &cell.stores[idx].rel {
                            exec.join_clock(tid, rel);
                        }
                    }
                    let when = exec.clock_of(tid);
                    let rel = if is_release(success) {
                        Some(when.clone())
                    } else {
                        cell.stores[idx].rel.clone()
                    };
                    cell.stores.push(StoreRec {
                        value: ($to)(new),
                        when,
                        rel,
                    });
                    cell.last_seen[tid] = cell.stores.len() - 1;
                    self.native.store(new, Ordering::Relaxed);
                    Ok(($from)(($to)(current)))
                });
                match modeled {
                    Some(r) => r,
                    None => self.native.compare_exchange(current, new, success, failure),
                }
            }

            /// Weak compare-exchange; the model never fails spuriously.
            pub fn compare_exchange_weak(
                &self,
                current: $val,
                new: $val,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$val, $val> {
                self.compare_exchange(current, new, success, failure)
            }
        }
    };
}

model_atomic!(
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64,
    |v: u64| v,
    |v: u64| v
);
model_atomic!(
    AtomicU32,
    std::sync::atomic::AtomicU32,
    u32,
    |v: u32| v as u64,
    |v: u64| v as u32
);
model_atomic!(
    AtomicU8,
    std::sync::atomic::AtomicU8,
    u8,
    |v: u8| v as u64,
    |v: u64| v as u8
);
model_atomic!(
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize,
    |v: usize| v as u64,
    |v: u64| v as usize
);
model_atomic!(
    AtomicBool,
    std::sync::atomic::AtomicBool,
    bool,
    |v: bool| v as u64,
    |v: u64| v != 0
);

macro_rules! int_rmw {
    ($name:ident, $val:ty) => {
        impl $name {
            /// Atomically adds, returning the previous value.
            pub fn fetch_add(&self, v: $val, order: Ordering) -> $val {
                self.rmw(order, |old| (old as $val).wrapping_add(v) as u64)
                    .unwrap_or_else(|| self.native.fetch_add(v, order))
            }

            /// Atomically subtracts, returning the previous value.
            pub fn fetch_sub(&self, v: $val, order: Ordering) -> $val {
                self.rmw(order, |old| (old as $val).wrapping_sub(v) as u64)
                    .unwrap_or_else(|| self.native.fetch_sub(v, order))
            }

            /// Atomic bitwise OR, returning the previous value.
            pub fn fetch_or(&self, v: $val, order: Ordering) -> $val {
                self.rmw(order, |old| ((old as $val) | v) as u64)
                    .unwrap_or_else(|| self.native.fetch_or(v, order))
            }

            /// Atomic bitwise AND, returning the previous value.
            pub fn fetch_and(&self, v: $val, order: Ordering) -> $val {
                self.rmw(order, |old| ((old as $val) & v) as u64)
                    .unwrap_or_else(|| self.native.fetch_and(v, order))
            }

            /// Atomic maximum, returning the previous value.
            pub fn fetch_max(&self, v: $val, order: Ordering) -> $val {
                self.rmw(order, |old| (old as $val).max(v) as u64)
                    .unwrap_or_else(|| self.native.fetch_max(v, order))
            }

            /// Atomic minimum, returning the previous value.
            pub fn fetch_min(&self, v: $val, order: Ordering) -> $val {
                self.rmw(order, |old| (old as $val).min(v) as u64)
                    .unwrap_or_else(|| self.native.fetch_min(v, order))
            }
        }
    };
}

int_rmw!(AtomicU64, u64);
int_rmw!(AtomicU32, u32);
int_rmw!(AtomicU8, u8);
int_rmw!(AtomicUsize, usize);

impl AtomicBool {
    /// Atomic bitwise OR, returning the previous value.
    pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
        self.rmw(order, |old| ((old != 0) | v) as u64)
            .unwrap_or_else(|| self.native.fetch_or(v, order))
    }

    /// Atomic bitwise AND, returning the previous value.
    pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
        self.rmw(order, |old| ((old != 0) & v) as u64)
            .unwrap_or_else(|| self.native.fetch_and(v, order))
    }
}

/// An atomic fence. Modeled as a scheduling point only (the vector-clock
/// model tracks release/acquire edges on the operations themselves).
pub fn fence(order: Ordering) {
    if let Some((exec, tid)) = rt::current() {
        exec.sched_point(tid);
    } else {
        std::sync::atomic::fence(order);
    }
}
