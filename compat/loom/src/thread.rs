//! Model-aware `thread::spawn` / `JoinHandle`.
//!
//! Inside `loom::model`, spawned closures run on real OS threads but are
//! scheduled cooperatively by the runtime (exactly one runs at a time);
//! spawn and join are happens-before edges in the vector-clock model.
//! Outside a model this is plain `std::thread`.

use crate::rt::{self, AbortToken};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex as StdMutex};

/// OS handles of model threads from the current iteration; drained by
/// the explorer after each iteration. Model runs are serialized by the
/// global model lock, so this registry is never shared across models.
static OS_HANDLES: StdMutex<Vec<std::thread::JoinHandle<()>>> = StdMutex::new(Vec::new());

/// Joins every OS thread spawned by the just-finished iteration.
pub(crate) fn join_all_model_threads() {
    let handles = std::mem::take(&mut *OS_HANDLES.lock().unwrap());
    for h in handles {
        let _ = h.join();
    }
}

/// Handle to a spawned thread (model-scheduled inside `loom::model`).
pub struct JoinHandle<T> {
    /// Model path: result slot + model tid.
    model: Option<(Arc<StdMutex<Option<T>>>, usize)>,
    /// Passthrough path: the real handle.
    native: Option<std::thread::JoinHandle<T>>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result.
    pub fn join(self) -> std::thread::Result<T> {
        match (self.model, self.native) {
            (Some((slot, target)), _) => {
                let (exec, tid) = rt::current().expect("model JoinHandle joined outside its model");
                exec.join_thread(tid, target);
                match slot.lock().unwrap().take() {
                    Some(v) => Ok(v),
                    // The child panicked; the model already recorded the
                    // failure and every thread is tearing down.
                    None => std::panic::panic_any(AbortToken),
                }
            }
            (None, Some(h)) => h.join(),
            (None, None) => unreachable!("JoinHandle has neither model nor native side"),
        }
    }
}

/// Spawns a thread; inside `loom::model` it joins the cooperative
/// schedule instead of running freely.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if let Some((exec, tid)) = rt::current() {
        let child = exec.register_thread(tid);
        let slot = Arc::new(StdMutex::new(None));
        let slot2 = Arc::clone(&slot);
        let exec2 = Arc::clone(&exec);
        let os = std::thread::Builder::new()
            .name(format!("loom-model-{child}"))
            .spawn(move || {
                rt::set_current(Arc::clone(&exec2), child);
                exec2.wait_for_grant(child);
                match std::panic::catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => {
                        *slot2.lock().unwrap() = Some(v);
                    }
                    Err(payload) => {
                        if !payload.is::<AbortToken>() {
                            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                                (*s).to_string()
                            } else if let Some(s) = payload.downcast_ref::<String>() {
                                s.clone()
                            } else {
                                "model thread panicked".to_string()
                            };
                            exec2.report_failure(msg);
                        }
                    }
                }
                // finish_thread may itself unwind with an AbortToken
                // when the model is tearing down after a failure.
                let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    exec2.finish_thread(child);
                }));
                rt::clear_current();
            })
            .expect("spawn loom model thread");
        OS_HANDLES.lock().unwrap().push(os);
        // Spawning is itself a scheduling point: the child may run first.
        exec.sched_point(tid);
        JoinHandle {
            model: Some((slot, child)),
            native: None,
        }
    } else {
        JoinHandle {
            model: None,
            native: Some(std::thread::spawn(f)),
        }
    }
}

/// Yields to the model scheduler (a plain scheduling point); outside a
/// model, yields the OS thread.
pub fn yield_now() {
    if let Some((exec, tid)) = rt::current() {
        exec.sched_point(tid);
    } else {
        std::thread::yield_now();
    }
}
