//! Model-checked `Mutex`, `Condvar`, and `RwLock` with the vendored
//! parking_lot shim's ergonomics (non-poisoning, `Condvar::wait` taking
//! `&mut MutexGuard`), so `vmqs-core::sync` can re-export either family
//! unchanged.
//!
//! Inside `loom::model`, acquisition order and condvar wakeups are
//! scheduling decisions explored by the runtime; each lock carries a
//! vector clock so unlock→lock is a release/acquire edge. Untimed
//! condvar waits that can never be woken are reported as deadlocks
//! (lost-wakeup detection); timed waits are woken *as timeouts* only
//! when the model would otherwise deadlock, which keeps the state space
//! small without masking missing notifications on untimed waits.
//!
//! Outside a model everything passes straight through to `std`.

pub use std::sync::Arc;

use crate::rt::{self, Execution, VClock};
use std::ops::{Deref, DerefMut};
use std::sync::{Mutex as StdMutex, PoisonError};
use std::time::{Duration, Instant};

pub mod atomic {
    //! Re-export of the model-checked atomics (std layout of
    //! `loom::sync::atomic`).
    pub use crate::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize};
    pub use std::sync::atomic::Ordering;
}

/// Per-model bookkeeping of one lock, rebuilt lazily each iteration.
#[derive(Debug)]
struct LockCell {
    /// Execution uid the cell belongs to; stale cells are reset.
    uid: u64,
    /// Runtime object id (for block/wake bookkeeping).
    obj: usize,
    /// Active readers (always 0 for a plain mutex).
    readers: usize,
    /// Exclusive holder present?
    locked: bool,
    /// Clock released by the last unlock; joined by the next acquirer.
    clock: VClock,
}

/// Returns the cell for the current execution, resetting stale state.
fn cell<'a>(slot: &'a mut Option<LockCell>, exec: &Arc<Execution>) -> &'a mut LockCell {
    let stale = slot.as_ref().map(|c| c.uid != exec.uid).unwrap_or(true);
    if stale {
        *slot = Some(LockCell {
            uid: exec.uid,
            obj: exec.new_object(),
            readers: 0,
            locked: false,
            clock: VClock::default(),
        });
    }
    slot.as_mut().unwrap()
}

/// A mutual exclusion primitive; model-checked inside `loom::model`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    ctl: StdMutex<Option<LockCell>>,
    inner: StdMutex<T>,
}

/// RAII guard of a locked [`Mutex`].
///
/// Holds an `Option` internally so [`Condvar::wait`] can temporarily take
/// the underlying std guard by value; the option is `Some` at every point
/// user code can observe.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            ctl: StdMutex::new(None),
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Model-side acquisition: blocks (cooperatively) until the lock is
    /// free, then joins the releasing thread's clock.
    fn model_lock(&self, exec: &Arc<Execution>, tid: usize) {
        loop {
            exec.sched_point(tid);
            let (admitted, obj) = {
                let mut slot = self.ctl.lock().unwrap();
                let c = cell(&mut slot, exec);
                if c.locked {
                    (false, c.obj)
                } else {
                    c.locked = true;
                    exec.join_clock(tid, &c.clock);
                    (true, c.obj)
                }
            };
            if admitted {
                return;
            }
            exec.block_on_mutex(tid, obj);
        }
    }

    /// Model-side release: publishes the holder's clock and wakes
    /// blocked acquirers. Safe to call during unwinding (never panics).
    fn model_unlock(&self, exec: &Arc<Execution>, tid: usize) {
        let obj = {
            let mut slot = self.ctl.lock().unwrap();
            let c = cell(&mut slot, exec);
            c.locked = false;
            c.clock = exec.clock_of(tid);
            c.obj
        };
        exec.wake_lock_waiters(obj);
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some((exec, tid)) = rt::current() {
            self.model_lock(&exec, tid);
        }
        // In-model acquisitions reach this point holding the modeled
        // lock, so the std lock below is uncontended.
        MutexGuard {
            lock: self,
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if let Some((exec, tid)) = rt::current() {
            exec.sched_point(tid);
            let admitted = {
                let mut slot = self.ctl.lock().unwrap();
                let c = cell(&mut slot, &exec);
                if c.locked {
                    false
                } else {
                    c.locked = true;
                    exec.join_clock(tid, &c.clock);
                    true
                }
            };
            if !admitted {
                return None;
            }
            return Some(MutexGuard {
                lock: self,
                inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
            });
        }
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                lock: self,
                inner: Some(g),
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                lock: self,
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Std guard first: a parked model thread must never be holding
        // the (real) std mutex when another model thread acquires it.
        drop(self.inner.take());
        if let Some((exec, tid)) = rt::current() {
            self.lock.model_unlock(&exec, tid);
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    ctl: StdMutex<Option<CvCell>>,
    native: std::sync::Condvar,
}

#[derive(Debug)]
struct CvCell {
    uid: u64,
    obj: usize,
}

/// Result of a timed wait: whether the wait timed out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            ctl: StdMutex::new(None),
            native: std::sync::Condvar::new(),
        }
    }

    fn obj(&self, exec: &Arc<Execution>) -> usize {
        let mut slot = self.ctl.lock().unwrap();
        let stale = slot.as_ref().map(|c| c.uid != exec.uid).unwrap_or(true);
        if stale {
            *slot = Some(CvCell {
                uid: exec.uid,
                obj: exec.new_object(),
            });
        }
        slot.as_ref().unwrap().obj
    }

    /// In-model wait: releases the guard's mutex, parks on the modeled
    /// wait queue, re-acquires on wakeup. Returns true on (modeled)
    /// timeout.
    fn model_wait<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        exec: &Arc<Execution>,
        tid: usize,
        timed: bool,
    ) -> bool {
        let cv = self.obj(exec);
        drop(guard.inner.take());
        guard.lock.model_unlock(exec, tid);
        let timed_out = exec.condvar_wait(tid, cv, timed);
        guard.lock.model_lock(exec, tid);
        guard.inner = Some(
            guard
                .lock
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        timed_out
    }

    /// Atomically releases the guard's mutex and waits for a
    /// notification; the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        if let Some((exec, tid)) = rt::current() {
            self.model_wait(guard, &exec, tid, false);
            return;
        }
        let inner = guard.inner.take().expect("guard present outside wait");
        guard.inner = Some(
            self.native
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Like [`Condvar::wait`], with a timeout. In a model the timeout
    /// fires only when every thread would otherwise be blocked.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        if let Some((exec, tid)) = rt::current() {
            return WaitTimeoutResult(self.model_wait(guard, &exec, tid, true));
        }
        let inner = guard.inner.take().expect("guard present outside wait");
        let (inner, res) = match self.native.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Like [`Condvar::wait`], waiting until a deadline.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        if let Some((exec, tid)) = rt::current() {
            return WaitTimeoutResult(self.model_wait(guard, &exec, tid, true));
        }
        // lint:allow(wall-clock): passthrough timed wait outside a model.
        #[allow(clippy::disallowed_methods)]
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wakes one waiter (FIFO inside a model).
    pub fn notify_one(&self) -> bool {
        if let Some((exec, tid)) = rt::current() {
            exec.sched_point(tid);
            exec.condvar_notify(self.obj(&exec), 1);
            return true;
        }
        self.native.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        if let Some((exec, tid)) = rt::current() {
            exec.sched_point(tid);
            exec.condvar_notify(self.obj(&exec), usize::MAX);
            return 0;
        }
        self.native.notify_all();
        0
    }
}

/// A reader-writer lock; model-checked inside `loom::model`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    ctl: StdMutex<Option<LockCell>>,
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard of an [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
}

/// Exclusive-write guard of an [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
}

impl<T> RwLock<T> {
    /// Creates a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            ctl: StdMutex::new(None),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Try-admit under the model; `write` selects exclusive access.
    /// Returns the object id on refusal.
    fn model_try(&self, exec: &Arc<Execution>, tid: usize, write: bool) -> Result<(), usize> {
        let mut slot = self.ctl.lock().unwrap();
        let c = cell(&mut slot, exec);
        let ok = if write {
            !c.locked && c.readers == 0
        } else {
            !c.locked
        };
        if !ok {
            return Err(c.obj);
        }
        if write {
            c.locked = true;
        } else {
            c.readers += 1;
        }
        exec.join_clock(tid, &c.clock);
        Ok(())
    }

    fn model_acquire(&self, exec: &Arc<Execution>, tid: usize, write: bool) {
        let this = &self;
        exec.acquire_when(tid, self.obj_id(exec), write, || {
            this.model_try(exec, tid, write).is_ok()
        });
    }

    fn obj_id(&self, exec: &Arc<Execution>) -> usize {
        let mut slot = self.ctl.lock().unwrap();
        cell(&mut slot, exec).obj
    }

    /// Release one hold; joins the releaser's clock into the lock clock
    /// so every later acquirer (reader or writer) is ordered after it.
    fn model_release(&self, exec: &Arc<Execution>, tid: usize, write: bool) {
        let obj = {
            let mut slot = self.ctl.lock().unwrap();
            let c = cell(&mut slot, exec);
            if write {
                c.locked = false;
            } else {
                c.readers = c.readers.saturating_sub(1);
            }
            let released = exec.clock_of(tid);
            c.clock.join(&released);
            c.obj
        };
        exec.wake_lock_waiters(obj);
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if let Some((exec, tid)) = rt::current() {
            self.model_acquire(&exec, tid, false);
        }
        RwLockReadGuard {
            lock: self,
            inner: Some(self.inner.read().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if let Some((exec, tid)) = rt::current() {
            self.model_acquire(&exec, tid, true);
        }
        RwLockWriteGuard {
            lock: self,
            inner: Some(self.inner.write().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        if let Some((exec, tid)) = rt::current() {
            exec.sched_point(tid);
            if self.model_try(&exec, tid, false).is_err() {
                return None;
            }
            return Some(RwLockReadGuard {
                lock: self,
                inner: Some(self.inner.read().unwrap_or_else(PoisonError::into_inner)),
            });
        }
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard {
                lock: self,
                inner: Some(g),
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                lock: self,
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        if let Some((exec, tid)) = rt::current() {
            exec.sched_point(tid);
            if self.model_try(&exec, tid, true).is_err() {
                return None;
            }
            return Some(RwLockWriteGuard {
                lock: self,
                inner: Some(self.inner.write().unwrap_or_else(PoisonError::into_inner)),
            });
        }
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard {
                lock: self,
                inner: Some(g),
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                lock: self,
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((exec, tid)) = rt::current() {
            self.lock.model_release(&exec, tid, false);
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((exec, tid)) = rt::current() {
            self.lock.model_release(&exec, tid, true);
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside release")
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside release")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside release")
    }
}
