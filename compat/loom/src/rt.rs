//! The model-checking runtime: a bounded-exhaustive scheduler that
//! explores thread interleavings via depth-first search over scheduling
//! decisions, with preemption bounding (the CHESS technique) to keep the
//! state space tractable.
//!
//! Every synchronization operation (atomic access, mutex lock/unlock,
//! condvar wait/notify, spawn/join) is a *scheduling point*: the runtime
//! decides which thread executes next, records the decision on a path,
//! and on subsequent iterations revisits unexplored alternatives until
//! the whole (bounded) tree has been walked. Exactly one model thread
//! runs at a time, so the model body needs no real synchronization —
//! std primitives underneath only carry data.
//!
//! Weak-memory effects are modeled with vector clocks (see
//! [`crate::sync::atomic`]): relaxed loads may observe stale values from
//! an atomic's store history, which is what makes weakening an
//! `Acquire`/`Release` pair to `Relaxed` an observable — and therefore
//! checkable — bug.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Maximum threads per model (thread 0 is the model closure itself).
pub const MAX_THREADS: usize = 8;

/// Hard cap on iterations so a state-space explosion fails loudly
/// instead of hanging CI.
const MAX_ITERATIONS: u64 = 500_000;

/// Hard cap on scheduling points in a single execution (runaway-loop
/// backstop: a correct model finishes in far fewer).
const MAX_OPS_PER_EXEC: u64 = 100_000;

thread_local! {
    static CURRENT: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// Per-OS-thread handle into the active execution.
#[derive(Clone)]
struct ThreadCtx {
    exec: Arc<Execution>,
    tid: usize,
}

/// A vector clock over model threads.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VClock(pub [u64; MAX_THREADS]);

impl VClock {
    /// Pointwise maximum (join) of two clocks.
    pub fn join(&mut self, other: &VClock) {
        for i in 0..MAX_THREADS {
            self.0[i] = self.0[i].max(other.0[i]);
        }
    }

    /// True when `self` ≤ `other` pointwise (self happens-before-or-equal
    /// other's knowledge).
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().zip(other.0.iter()).all(|(a, b)| a <= b)
    }
}

/// Why a thread cannot currently run.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Blocked {
    /// Waiting to acquire the mutex with this runtime id.
    Mutex(usize),
    /// Waiting on the condvar with this runtime id; `timed` waits are
    /// woken (as timeouts) instead of deadlocking the model.
    Condvar { cv: usize, timed: bool },
    /// Waiting to acquire an rwlock (runtime id, write?).
    RwLock { lock: usize, write: bool },
    /// Waiting for the thread with this model tid to finish.
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Run {
    Unused,
    Runnable,
    Blocked(Blocked),
    Finished,
}

struct ThreadSlot {
    state: Run,
    /// Park flag + its condvar: a model thread runs only while granted.
    granted: bool,
    /// Set when a timed condvar wait was ended by its modeled timeout
    /// (rather than a notification); consumed by `condvar_wait`.
    timeout_fired: bool,
}

/// One decision on the exploration path.
struct Branch {
    /// Index into `options` taken on the current iteration.
    chosen: usize,
    /// Candidate count at this point (candidates themselves are
    /// reproduced deterministically on replay).
    options: usize,
}

struct ExecState {
    threads: Vec<ThreadSlot>,
    current: usize,
    /// DFS path: decisions are replayed up to `cursor`, then extended.
    path: Vec<Branch>,
    cursor: usize,
    /// Per-thread vector clocks.
    pub clocks: Vec<VClock>,
    preemptions: u32,
    ops: u64,
    /// First failure observed this iteration (assertion, deadlock, ...).
    failure: Option<String>,
    /// Registered condvar wait queues, keyed by runtime id.
    cv_waiters: Vec<VecDeque<usize>>,
    next_obj: usize,
}

/// One model execution tree, shared by every thread of the model.
pub struct Execution {
    state: StdMutex<ExecState>,
    /// One park condvar per model thread slot.
    parks: Vec<StdCondvar>,
    aborting: AtomicBool,
    /// Globally unique id; lazily-initialized per-object model state
    /// (atomics, mutexes) uses it to detect stale state from a previous
    /// iteration or a previous model.
    pub(crate) uid: u64,
    max_preemptions: u32,
}

/// Unwind payload used to tear down sibling threads after a failure;
/// swallowed by the per-thread catch_unwind.
pub struct AbortToken;

/// Source of globally unique execution ids.
static NEXT_UID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl Execution {
    fn new(max_preemptions: u32) -> Arc<Self> {
        Arc::new(Execution {
            state: StdMutex::new(ExecState {
                threads: (0..MAX_THREADS)
                    .map(|i| ThreadSlot {
                        state: if i == 0 { Run::Runnable } else { Run::Unused },
                        granted: i == 0,
                        timeout_fired: false,
                    })
                    .collect(),
                current: 0,
                path: Vec::new(),
                cursor: 0,
                clocks: vec![VClock::default(); MAX_THREADS],
                preemptions: 0,
                ops: 0,
                failure: None,
                cv_waiters: Vec::new(),
                next_obj: 0,
            }),
            parks: (0..MAX_THREADS).map(|_| StdCondvar::new()).collect(),
            aborting: AtomicBool::new(false),
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
            max_preemptions,
        })
    }

    /// Carries the DFS path into the next iteration's fresh execution.
    fn with_path(self: &Arc<Self>) -> Arc<Self> {
        let next = Execution::new(self.max_preemptions);
        {
            let old = self.state.lock().unwrap();
            let mut st = next.state.lock().unwrap();
            st.path = old
                .path
                .iter()
                .map(|b| Branch {
                    chosen: b.chosen,
                    options: b.options,
                })
                .collect();
        }
        next
    }

    /// Advances the DFS path to the next unexplored branch. Returns
    /// `false` when the tree is exhausted.
    fn backtrack(&self) -> bool {
        let mut st = self.state.lock().unwrap();
        // Drop decisions never replayed this iteration (shorter run).
        let cursor = st.cursor;
        st.path.truncate(cursor);
        while let Some(last) = st.path.last_mut() {
            if last.chosen + 1 < last.options {
                last.chosen += 1;
                return true;
            }
            st.path.pop();
        }
        false
    }

    fn fail(&self, st: &mut ExecState, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        self.aborting.store(true, Ordering::SeqCst);
        // Wake every parked thread so it can unwind.
        for t in st.threads.iter_mut() {
            t.granted = true;
        }
        for cv in &self.parks {
            cv.notify_all();
        }
    }

    /// Records a generic branch decision with `options` alternatives and
    /// returns the chosen index. `options` must be ≥ 1 and reproduce
    /// deterministically on replay.
    pub fn decide(&self, options: usize) -> usize {
        let mut st = self.state.lock().unwrap();
        self.decide_locked(&mut st, options)
    }

    fn decide_locked(&self, st: &mut ExecState, options: usize) -> usize {
        debug_assert!(options >= 1);
        if st.cursor < st.path.len() {
            let b = &st.path[st.cursor];
            debug_assert_eq!(
                b.options, options,
                "non-deterministic model: replay diverged (loom models must \
                 make the same choices given the same schedule)"
            );
            let chosen = b.chosen;
            st.cursor += 1;
            chosen
        } else {
            st.path.push(Branch { chosen: 0, options });
            st.cursor += 1;
            0
        }
    }

    /// The scheduling point: decides which runnable thread executes
    /// next and parks the caller until it is granted again. Called by
    /// the current thread before every synchronization operation.
    pub fn sched_point(&self, tid: usize) {
        self.check_abort();
        let mut st = self.state.lock().unwrap();
        st.ops += 1;
        if st.ops > MAX_OPS_PER_EXEC {
            self.fail(
                &mut st,
                "model exceeded the per-execution operation cap (livelock?)".into(),
            );
            drop(st);
            self.check_abort();
            return;
        }
        // Tick the acting thread's clock component.
        st.clocks[tid].0[tid] += 1;

        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == Run::Runnable)
            .map(|(i, _)| i)
            .collect();
        debug_assert!(runnable.contains(&tid), "current thread must be runnable");
        // Preemption bounding: continuing the current thread is free;
        // switching away from a runnable thread costs one preemption.
        let candidates: Vec<usize> = if st.preemptions >= self.max_preemptions {
            vec![tid]
        } else {
            // Current thread first so choice 0 = "keep running".
            let mut c = vec![tid];
            c.extend(runnable.iter().copied().filter(|&t| t != tid));
            c
        };
        let chosen = candidates[self.decide_locked(&mut st, candidates.len())];
        if chosen != tid {
            st.preemptions += 1;
            self.switch_locked(st, tid, chosen, true);
        }
    }

    /// Hands control to `next`; if `park` the calling thread waits until
    /// re-granted. Consumes the state guard.
    fn switch_locked(
        &self,
        mut st: std::sync::MutexGuard<'_, ExecState>,
        from: usize,
        next: usize,
        park: bool,
    ) {
        st.current = next;
        st.threads[from].granted = false;
        st.threads[next].granted = true;
        self.parks[next].notify_all();
        if park {
            while !st.threads[from].granted {
                st = self.parks[from].wait(st).unwrap();
            }
        }
        drop(st);
        self.check_abort();
    }

    /// Blocks the current thread on `reason` and hands control to some
    /// runnable thread (a branch point when several exist). Returns when
    /// the thread is runnable again.
    fn block_current(&self, tid: usize, reason: Blocked) {
        let mut st = self.state.lock().unwrap();
        st.threads[tid].state = Run::Blocked(reason);
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == Run::Runnable)
            .map(|(i, _)| i)
            .collect();
        let next = if runnable.is_empty() {
            match self.wake_timed_waiter(&mut st) {
                Some(t) => t,
                None => {
                    let held: Vec<String> = st
                        .threads
                        .iter()
                        .enumerate()
                        .filter_map(|(i, t)| match t.state {
                            Run::Blocked(b) => Some(format!("thread {i} blocked on {b:?}")),
                            _ => None,
                        })
                        .collect();
                    self.fail(&mut st, format!("deadlock: {}", held.join("; ")));
                    drop(st);
                    self.check_abort();
                    return;
                }
            }
        } else if runnable.len() == 1 {
            runnable[0]
        } else {
            // Blocking hand-offs don't count as preemptions (the current
            // thread cannot continue), but the target is still a choice.
            runnable[self.decide_locked(&mut st, runnable.len())]
        };
        self.switch_locked(st, tid, next, true);
    }

    /// Wakes the longest-waiting timed condvar waiter, modeling its
    /// timeout firing; `None` when there is none.
    fn wake_timed_waiter(&self, st: &mut ExecState) -> Option<usize> {
        let timed: Option<usize> = st
            .threads
            .iter()
            .position(|t| matches!(t.state, Run::Blocked(Blocked::Condvar { timed: true, .. })));
        let t = timed?;
        if let Run::Blocked(Blocked::Condvar { cv, .. }) = st.threads[t].state {
            if let Some(q) = st.cv_waiters.get_mut(cv) {
                q.retain(|&w| w != t);
            }
        }
        st.threads[t].state = Run::Runnable;
        st.threads[t].timeout_fired = true;
        Some(t)
    }

    fn check_abort(&self) {
        if self.aborting.load(Ordering::SeqCst) {
            std::panic::panic_any(AbortToken);
        }
    }

    /// True once a failure has been recorded and threads are tearing
    /// down. Guard drops consult this to avoid panicking inside a drop
    /// that runs during unwinding.
    pub fn is_aborting(&self) -> bool {
        self.aborting.load(Ordering::SeqCst)
    }

    /// Records a model failure from user code (e.g. a panic hook).
    pub fn report_failure(&self, msg: String) {
        let mut st = self.state.lock().unwrap();
        self.fail(&mut st, msg);
    }

    /// Allocates a runtime id for a model-managed object (mutex, condvar,
    /// rwlock).
    pub fn new_object(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        let id = st.next_obj;
        st.next_obj += 1;
        st.cv_waiters.push(VecDeque::new());
        id
    }

    // ---- thread management -------------------------------------------

    /// Registers a new model thread; the child's clock starts as a copy
    /// of the parent's (spawn is a release/acquire edge).
    pub fn register_thread(&self, parent: usize) -> usize {
        let mut st = self.state.lock().unwrap();
        let tid = st
            .threads
            .iter()
            .position(|t| t.state == Run::Unused)
            .unwrap_or_else(|| panic!("model exceeds {MAX_THREADS} threads"));
        st.threads[tid].state = Run::Runnable;
        st.threads[tid].granted = false;
        let parent_clock = st.clocks[parent].clone();
        st.clocks[tid] = parent_clock;
        tid
    }

    /// Parks a freshly spawned thread until the scheduler grants it.
    pub fn wait_for_grant(&self, tid: usize) {
        let mut st = self.state.lock().unwrap();
        while !st.threads[tid].granted {
            st = self.parks[tid].wait(st).unwrap();
        }
        drop(st);
        self.check_abort();
    }

    /// Marks `tid` finished, joins its clock into waiters, and hands
    /// control onward. Does not park (the thread is done).
    pub fn finish_thread(&self, tid: usize) {
        let mut st = self.state.lock().unwrap();
        st.threads[tid].state = Run::Finished;
        // Wake joiners.
        for i in 0..st.threads.len() {
            if st.threads[i].state == Run::Blocked(Blocked::Join(tid)) {
                st.threads[i].state = Run::Runnable;
                let fclock = st.clocks[tid].clone();
                st.clocks[i].join(&fclock);
            }
        }
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == Run::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            let any_blocked = st
                .threads
                .iter()
                .any(|t| matches!(t.state, Run::Blocked(_)));
            if any_blocked {
                match self.wake_timed_waiter(&mut st) {
                    Some(t) => self.switch_locked(st, tid, t, false),
                    None => {
                        self.fail(&mut st, "deadlock: threads still blocked at exit".into());
                    }
                }
            }
            // All finished: iteration over.
        } else {
            let next = runnable[0];
            self.switch_locked(st, tid, next, false);
        }
    }

    /// Blocks until model thread `target` finishes; joins its clock.
    pub fn join_thread(&self, tid: usize, target: usize) {
        loop {
            self.sched_point(tid);
            let mut st = self.state.lock().unwrap();
            if st.threads[target].state == Run::Finished {
                let fclock = st.clocks[target].clone();
                st.clocks[tid].join(&fclock);
                return;
            }
            drop(st);
            self.block_current(tid, Blocked::Join(target));
        }
    }

    // ---- mutex / condvar / rwlock hooks ------------------------------
    // The actual lock state lives in the caller (sync module); the
    // runtime only provides block/wake and clock plumbing.

    /// Blocks until the closure (called with the state lock held) admits
    /// the thread. `reason` describes the wait for deadlock reports.
    pub fn acquire_when<F>(&self, tid: usize, reason_obj: usize, write: bool, mut try_admit: F)
    where
        F: FnMut() -> bool,
    {
        loop {
            self.sched_point(tid);
            if try_admit() {
                return;
            }
            self.block_current(
                tid,
                Blocked::RwLock {
                    lock: reason_obj,
                    write,
                },
            );
        }
    }

    /// Marks every thread blocked on lock object `obj` runnable (they
    /// re-contend at their next admission check).
    pub fn wake_lock_waiters(&self, obj: usize) {
        let mut st = self.state.lock().unwrap();
        for t in st.threads.iter_mut() {
            match t.state {
                Run::Blocked(Blocked::Mutex(o)) if o == obj => t.state = Run::Runnable,
                Run::Blocked(Blocked::RwLock { lock, .. }) if lock == obj => {
                    t.state = Run::Runnable
                }
                _ => {}
            }
        }
    }

    /// Blocks the current thread waiting to acquire mutex object `obj`.
    pub fn block_on_mutex(&self, tid: usize, obj: usize) {
        self.block_current(tid, Blocked::Mutex(obj));
    }

    /// Parks the current thread on condvar `cv` (mutex already released
    /// by the caller). Returns when notified or — for `timed` waits —
    /// when the model would otherwise deadlock; the return value is true
    /// when the wait ended by timeout.
    pub fn condvar_wait(&self, tid: usize, cv: usize, timed: bool) -> bool {
        {
            let mut st = self.state.lock().unwrap();
            st.cv_waiters[cv].push_back(tid);
        }
        self.block_current(tid, Blocked::Condvar { cv, timed });
        let mut st = self.state.lock().unwrap();
        std::mem::take(&mut st.threads[tid].timeout_fired)
    }

    /// Wakes up to `n` waiters of condvar `cv` in FIFO order.
    pub fn condvar_notify(&self, cv: usize, n: usize) {
        let mut st = self.state.lock().unwrap();
        for _ in 0..n {
            let Some(w) = st.cv_waiters[cv].pop_front() else {
                break;
            };
            if matches!(st.threads[w].state, Run::Blocked(Blocked::Condvar { .. })) {
                st.threads[w].state = Run::Runnable;
            }
        }
    }

    // ---- clock access ------------------------------------------------

    /// Snapshot of thread `tid`'s vector clock.
    pub fn clock_of(&self, tid: usize) -> VClock {
        self.state.lock().unwrap().clocks[tid].clone()
    }

    /// Joins `other` into thread `tid`'s clock.
    pub fn join_clock(&self, tid: usize, other: &VClock) {
        self.state.lock().unwrap().clocks[tid].join(other);
    }

    fn take_failure(&self) -> Option<String> {
        self.state.lock().unwrap().failure.take()
    }
}

/// Returns the active execution context of this OS thread, if any.
pub fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().as_ref().map(|ctx| (ctx.exec.clone(), ctx.tid)))
}

/// True when called from inside a `loom::model` thread.
pub fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Installs the execution context on a spawned model thread.
pub fn set_current(exec: Arc<Execution>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some(ThreadCtx { exec, tid }));
}

/// Clears the context (end of a model thread's body).
pub fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Model-checking entry point: explores interleavings of `f` until the
/// (preemption-bounded) schedule tree is exhausted or a failure is found.
pub fn explore<F>(max_preemptions: u32, f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let f = Arc::new(f);
    let mut exec = Execution::new(max_preemptions);
    let log = std::env::var("LOOM_LOG").is_ok();
    let mut iterations: u64 = 0;
    loop {
        iterations += 1;
        if iterations > MAX_ITERATIONS {
            panic!("loom: model not exhausted after {MAX_ITERATIONS} iterations");
        }
        let body = Arc::clone(&f);
        let iter_exec = Arc::clone(&exec);
        // Thread 0 runs on its own OS thread so a failing iteration can
        // be torn down without poisoning the caller's thread state.
        let handle = std::thread::Builder::new()
            .name("loom-model-0".into())
            .spawn(move || {
                set_current(Arc::clone(&iter_exec), 0);
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| body()));
                if let Err(payload) = result {
                    if !payload.is::<AbortToken>() {
                        let msg = panic_message(&payload);
                        let mut st = iter_exec.state.lock().unwrap();
                        iter_exec.fail(&mut st, msg);
                    }
                }
                // Drive any still-live sibling threads to completion (or
                // detect that they are deadlocked). May unwind with an
                // AbortToken during failure teardown.
                let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    iter_exec.finish_thread(0);
                }));
                clear_current();
            })
            .expect("spawn loom model thread");
        let _ = handle.join();
        crate::thread::join_all_model_threads();

        if let Some(failure) = exec.take_failure() {
            let path: Vec<usize> = exec
                .state
                .lock()
                .unwrap()
                .path
                .iter()
                .map(|b| b.chosen)
                .collect();
            panic!(
                "loom model failed at iteration {iterations}: {failure}\n  schedule path: {path:?}"
            );
        }
        if !exec.backtrack() {
            if log {
                eprintln!("loom: model passed, {iterations} iterations explored");
            }
            return;
        }
        exec = exec.with_path();
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".to_string()
    }
}
