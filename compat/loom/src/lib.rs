//! Offline stand-in for the `loom` concurrency model checker.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the slice of the loom API that `vmqs-core::sync` re-exports:
//! `loom::model`, `loom::thread`, `loom::sync::{Arc, Mutex, Condvar,
//! RwLock}` and `loom::sync::atomic`. Unlike a plain shim, this is a
//! real (small) model checker:
//!
//! * [`model`] explores thread interleavings of its closure by
//!   depth-first search over scheduling decisions, with CHESS-style
//!   preemption bounding (`LOOM_MAX_PREEMPTIONS`, default 2).
//! * Atomics keep their store history and model weak memory with vector
//!   clocks: a `Relaxed` load may observe any coherence-admissible stale
//!   store, so weakening a required `Release`/`Acquire` pair to
//!   `Relaxed` makes some explored interleaving fail.
//! * Deadlocks — including lost condvar wakeups — are detected and
//!   reported with the failing schedule path.
//!
//! Outside [`model`], every primitive passes through to `std`, so code
//! built with `--cfg loom` still behaves normally in regular tests.
//!
//! Differences from real loom (acceptable for this workspace's models):
//! `SeqCst` is approximated as read-latest (no global S order), fences
//! are scheduling points only, spurious condvar wakeups are not
//! generated, and timed waits only "time out" when the model would
//! otherwise deadlock.

#![warn(missing_docs)]

mod atomic;
pub mod rt;
pub mod sync;
pub mod thread;

pub mod hint {
    //! Spin-loop hint (a scheduling point inside a model).

    /// Equivalent of [`std::hint::spin_loop`].
    pub fn spin_loop() {
        crate::thread::yield_now();
    }
}

use std::sync::Mutex as StdMutex;

/// Serializes model runs: OS-thread bookkeeping and the deterministic
/// replay machinery assume one active model per process.
static MODEL_LOCK: StdMutex<()> = StdMutex::new(());

/// Default preemption bound (scheduling points where a *runnable*
/// thread is switched away from). 2 catches almost all real ordering
/// bugs (CHESS) while keeping exploration fast.
const DEFAULT_MAX_PREEMPTIONS: u32 = 2;

/// Runs `f` under the model checker, exploring interleavings until the
/// bounded schedule tree is exhausted. Panics with the failing schedule
/// path on the first assertion failure, deadlock, or lost wakeup.
///
/// Environment knobs: `LOOM_MAX_PREEMPTIONS` (bound, default 2) and
/// `LOOM_LOG` (print iteration count on success).
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let _serial = MODEL_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let bound = std::env::var("LOOM_MAX_PREEMPTIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_MAX_PREEMPTIONS);
    rt::explore(bound, f);
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use super::sync::{Arc, Condvar, Mutex};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn fails(f: impl Fn() + Send + Sync + 'static) -> String {
        let err = catch_unwind(AssertUnwindSafe(|| super::model(f)))
            .expect_err("model unexpectedly passed");
        if let Some(s) = err.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic".into()
        }
    }

    #[test]
    fn message_passing_release_acquire_passes() {
        super::model(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = crate::thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(true, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join().unwrap();
        });
    }

    #[test]
    fn message_passing_relaxed_flag_fails() {
        // Same litmus with the flag store weakened to Relaxed: some
        // interleaving observes flag=true but stale data=0.
        let msg = fails(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = crate::thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(true, Ordering::Relaxed);
            });
            if flag.load(Ordering::Acquire) {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join().unwrap();
        });
        assert!(msg.contains("loom model failed"), "got: {msg}");
    }

    #[test]
    fn message_passing_relaxed_load_fails() {
        let msg = fails(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = crate::thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(true, Ordering::Release);
            });
            if flag.load(Ordering::Relaxed) {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join().unwrap();
        });
        assert!(msg.contains("loom model failed"), "got: {msg}");
    }

    #[test]
    fn rmw_sees_latest_and_never_loses_updates() {
        super::model(|| {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            let t = crate::thread::spawn(move || {
                n2.fetch_add(1, Ordering::Relaxed);
            });
            n.fetch_add(1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::Relaxed), 2);
        });
    }

    #[test]
    fn load_store_increment_loses_updates() {
        // Non-atomic read-modify-write (load; add; store) must lose an
        // update on some interleaving.
        let msg = fails(|| {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            let t = crate::thread::spawn(move || {
                let v = n2.load(Ordering::SeqCst);
                n2.store(v + 1, Ordering::SeqCst);
            });
            let v = n.load(Ordering::SeqCst);
            n.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
        assert!(msg.contains("loom model failed"), "got: {msg}");
    }

    #[test]
    fn mutex_counter_is_exact() {
        super::model(|| {
            let n = Arc::new(Mutex::new(0u64));
            let n2 = Arc::clone(&n);
            let t = crate::thread::spawn(move || {
                *n2.lock() += 1;
            });
            *n.lock() += 1;
            t.join().unwrap();
            assert_eq!(*n.lock(), 2);
        });
    }

    #[test]
    fn condvar_handshake_passes() {
        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let t = crate::thread::spawn(move || {
                let (m, cv) = &*p2;
                *m.lock() = true;
                cv.notify_one();
            });
            {
                let (m, cv) = &*pair;
                let mut done = m.lock();
                while !*done {
                    cv.wait(&mut done);
                }
            }
            t.join().unwrap();
        });
    }

    #[test]
    fn condvar_missing_notify_is_lost_wakeup() {
        // The flag is set but nobody notifies: the waiter can sleep
        // forever — reported as a deadlock.
        let msg = fails(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let t = crate::thread::spawn(move || {
                let (m, _cv) = &*p2;
                *m.lock() = true;
            });
            {
                let (m, cv) = &*pair;
                let mut done = m.lock();
                while !*done {
                    cv.wait(&mut done);
                }
            }
            t.join().unwrap();
        });
        assert!(msg.contains("deadlock"), "got: {msg}");
    }

    #[test]
    fn timed_wait_escapes_deadlock_as_timeout() {
        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let (m, cv) = &*pair;
            let mut done = m.lock();
            while !*done {
                let res = cv.wait_for(&mut done, std::time::Duration::from_millis(1));
                if res.timed_out() {
                    break;
                }
            }
        });
    }

    #[test]
    fn abba_lock_order_deadlocks() {
        let msg = fails(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = crate::thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop(_ga);
            drop(_gb);
            t.join().unwrap();
        });
        assert!(msg.contains("deadlock"), "got: {msg}");
    }

    #[test]
    fn passthrough_outside_model() {
        // No active model: primitives behave like std.
        let n = AtomicU64::new(1);
        assert_eq!(n.fetch_add(2, Ordering::SeqCst), 1);
        assert_eq!(n.load(Ordering::Acquire), 3);
        let m = Mutex::new(5);
        assert_eq!(*m.lock(), 5);
        let t = crate::thread::spawn(|| 7u32);
        assert_eq!(t.join().unwrap(), 7);
    }
}
