//! # vmqs — multi-query scheduling for data visualization workloads
//!
//! A production-quality Rust reproduction of *"Scheduling Multiple Data
//! Visualization Query Workloads on a Shared Memory Machine"* (Andrade,
//! Kurc, Sussman, Saltz; IPPS/IPDPS 2002).
//!
//! The system is a multi-query-aware middleware for data analysis servers:
//! queries are held in a **scheduling graph** whose edges carry reuse
//! weights, ranked by one of six strategies (FIFO, MUF, FF, CF, CNBF,
//! SJF), executed by a thread pool against a **semantic result cache**
//! (Data Store Manager) and a **page cache with I/O merging** (Page Space
//! Manager). The bundled application is the **Virtual Microscope**:
//! browsing multi-gigabyte digitized slides at interactive magnifications.
//!
//! This facade crate re-exports the workspace; see the individual crates
//! for detail:
//!
//! | crate | contents |
//! |---|---|
//! | [`core`] | scheduling graph, ranking strategies, geometry |
//! | [`datastore`] | semantic cache for intermediate results |
//! | [`pagespace`] | page cache, I/O merging & deduplication |
//! | [`storage`] | data sources and disk models |
//! | [`obs`] | event log, metrics registry, lifecycle timelines |
//! | [`microscope`] | the Virtual Microscope application |
//! | [`server`] | real multithreaded execution engine |
//! | [`sim`] | paper-scale discrete-event simulator |
//! | [`workload`] | client emulator & experiment harness |
//! | [`volume`] | §6 extension: 3-D volume visualization application |
//!
//! ## Quickstart
//!
//! ```
//! use vmqs::prelude::*;
//! use std::sync::Arc;
//!
//! // A small slide served from deterministic synthetic data.
//! let slide = SlideDataset::new(DatasetId(0), 2000, 2000);
//! let server = QueryServer::new(ServerConfig::small(), Arc::new(SyntheticSource::new()));
//!
//! // Two overlapping queries: the second reuses the first's cached result.
//! let q1 = VmQuery::new(slide, Rect::new(0, 0, 512, 512), 2, VmOp::Subsample);
//! let q2 = VmQuery::new(slide, Rect::new(256, 0, 512, 512), 2, VmOp::Subsample);
//! server.submit(q1).wait().unwrap();
//! let r2 = server.submit(q2).wait().unwrap();
//! assert!(r2.record.covered_fraction > 0.0);
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub use vmqs_core as core;
pub use vmqs_datastore as datastore;
pub use vmqs_microscope as microscope;
pub use vmqs_obs as obs;
pub use vmqs_pagespace as pagespace;
pub use vmqs_server as server;
pub use vmqs_sim as sim;
pub use vmqs_storage as storage;
pub use vmqs_volume as volume;
pub use vmqs_workload as workload;

/// The most common imports, in one place.
pub mod prelude {
    pub use vmqs_core::{
        ClientId, DatasetId, OverloadConfig, QueryId, QuerySpec, QueryState, Rect, SchedulingGraph,
        Strategy,
    };
    pub use vmqs_datastore::{DataStore, Payload};
    pub use vmqs_microscope::{RgbImage, SlideDataset, VmCostModel, VmOp, VmQuery};
    pub use vmqs_obs::{EventKind, EventRecord, Obs};
    pub use vmqs_server::{QueryServer, ServerConfig, ServerError};
    pub use vmqs_sim::{run_sim, ClientStream, SimConfig, SubmissionMode};
    pub use vmqs_storage::{DataSource, DiskModel, FileSource, SyntheticSource};
    pub use vmqs_workload::{generate, WorkloadConfig};
}
