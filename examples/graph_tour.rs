//! A tour of the scheduling graph itself: builds the Fig. 3 situation from
//! the paper (overlapping queries at different magnifications, including a
//! one-directional edge from a non-invertible transformation), prints the
//! graph in DOT form, and walks one dequeue cycle per strategy to show how
//! the rankings differ.
//!
//! Run with: `cargo run --release --example graph_tour`

use vmqs::prelude::*;
use vmqs_core::QueryId;

fn sample_queries(slide: SlideDataset) -> Vec<(QueryId, VmQuery)> {
    vec![
        // q1 and q2: same zoom, half-overlapping windows (bidirectional edge).
        (
            QueryId(1),
            VmQuery::new(slide, Rect::new(0, 0, 2048, 2048), 2, VmOp::Subsample),
        ),
        (
            QueryId(2),
            VmQuery::new(slide, Rect::new(1024, 0, 2048, 2048), 2, VmOp::Subsample),
        ),
        // q3 overlaps q2 at the same zoom.
        (
            QueryId(3),
            VmQuery::new(slide, Rect::new(2048, 0, 2048, 2048), 2, VmOp::Subsample),
        ),
        // q4: coarser zoom over q2's window — only e_{2,4} exists because
        // the transformation is not invertible (paper Fig. 3).
        (
            QueryId(4),
            VmQuery::new(slide, Rect::new(1024, 0, 2048, 2048), 8, VmOp::Subsample),
        ),
        // q5: disjoint region, no edges at all.
        (
            QueryId(5),
            VmQuery::new(
                slide,
                Rect::new(16384, 16384, 2048, 2048),
                2,
                VmOp::Subsample,
            ),
        ),
    ]
}

fn main() {
    let slide = SlideDataset::paper_scale(DatasetId(0));

    println!("=== The query scheduling graph (paper Fig. 3) ===\n");
    let mut g: SchedulingGraph<VmQuery> = SchedulingGraph::new(Strategy::Cnbf);
    for (id, q) in sample_queries(slide) {
        g.insert(id, q);
    }
    println!("{}", g.to_dot());
    println!("q4 reuse sources: {:?}", g.reuse_sources(QueryId(4)));
    println!(
        "q4 dependents:    {:?} (none — coarse results can't serve fine queries)\n",
        g.dependents(QueryId(4))
    );

    println!("=== One dequeue under each strategy ===\n");
    for strategy in Strategy::paper_set() {
        let mut g: SchedulingGraph<VmQuery> = SchedulingGraph::new(strategy);
        for (id, q) in sample_queries(slide) {
            g.insert(id, q);
        }
        // Pretend q1 already ran and is cached, so cache-aware strategies
        // have something to react to.
        let first = g.dequeue().unwrap();
        g.mark_cached(first);
        let (next, rank) = g.peek().unwrap();
        println!(
            "{:>4}: ran {first} first, would now run {next} (rank {:.0})",
            strategy.name(),
            rank.value()
        );
    }

    println!("\n=== Rank evolution for CNBF as states change ===\n");
    let mut g: SchedulingGraph<VmQuery> = SchedulingGraph::new(Strategy::Cnbf);
    for (id, q) in sample_queries(slide) {
        g.insert(id, q);
    }
    let show = |g: &SchedulingGraph<VmQuery>, label: &str| {
        let ranks: Vec<String> = (1..=5)
            .filter_map(|i| {
                g.rank_of(QueryId(i)).map(|r| {
                    format!(
                        "q{i}={:.1}MB ({})",
                        r.value() / (1024.0 * 1024.0),
                        g.state_of(QueryId(i)).unwrap()
                    )
                })
            })
            .collect();
        println!("{label:32} {}", ranks.join("  "));
    };
    show(&g, "all waiting:");
    let a = g.dequeue().unwrap();
    show(&g, &format!("{a} executing (deps penalized):"));
    g.mark_cached(a);
    show(&g, &format!("{a} cached (deps rewarded):"));
    g.swap_out(a);
    show(&g, &format!("{a} swapped out (edges gone):"));
}
