//! Quickstart: start a query server over a synthetic slide, submit a few
//! overlapping Virtual Microscope queries, and watch the multi-query
//! optimizations kick in (exact hits, partial projection, sub-queries).
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;
use vmqs::prelude::*;

fn main() {
    // A 4000×4000-pixel slide (48 MB raw) served from deterministic
    // synthetic data — no files needed.
    let slide = SlideDataset::new(DatasetId(0), 4000, 4000);
    let server = QueryServer::new(
        ServerConfig::small()
            .with_strategy(Strategy::Cnbf)
            .with_threads(2),
        Arc::new(SyntheticSource::new()),
    );

    println!(
        "Virtual Microscope quickstart — slide {}x{}",
        slide.width, slide.height
    );
    println!("{:-<72}", "");

    // 1. A fresh query: computed entirely from raw chunks.
    let q1 = VmQuery::new(slide, Rect::new(0, 0, 1024, 1024), 2, VmOp::Subsample);
    let r1 = server.submit(q1).wait().expect("query 1");
    report("q1: fresh 512x512 render at zoom 2", &r1);

    // 2. The identical query again: answered from cache without touching
    //    a single page (common subexpression elimination).
    let r2 = server.submit(q1).wait().expect("query 2");
    report("q2: identical repeat", &r2);

    // 3. A shifted window: partially projected from q1's cached output,
    //    the uncovered strip computed via sub-queries.
    let q3 = VmQuery::new(slide, Rect::new(512, 0, 1024, 1024), 2, VmOp::Subsample);
    let r3 = server.submit(q3).wait().expect("query 3");
    report("q3: half-overlapping pan", &r3);

    // 4. Zooming out over the same region: derivable entirely from q1 by
    //    the `project` transformation (no new I/O).
    let q4 = VmQuery::new(slide, Rect::new(0, 0, 1024, 1024), 8, VmOp::Subsample);
    let r4 = server.submit(q4).wait().expect("query 4");
    report("q4: zoom out 2 -> 8 over q1's window", &r4);

    // 5. The averaging function cannot reuse subsampled results: fresh
    //    computation (different query object, paper section 3).
    let q5 = VmQuery::new(slide, Rect::new(0, 0, 1024, 1024), 8, VmOp::Average);
    let r5 = server.submit(q5).wait().expect("query 5");
    report("q5: same window but pixel-averaging", &r5);

    println!("{:-<72}", "");
    let ds = server.ds_stats();
    let ps = server.ps_stats();
    println!(
        "data store: {} exact hits, {} partial hits, {} misses",
        ds.exact_hits, ds.partial_hits, ds.misses
    );
    println!(
        "page space: {} pages fetched in {} merged runs, {} hits, {} dedup waits",
        ps.pages_fetched, ps.runs_issued, ps.hits, ps.dedup_waits
    );
    server.shutdown();
}

fn report(label: &str, r: &vmqs::server::QueryResult) {
    println!(
        "{label:44} {:?}  reuse {:>5.1}%  pages {:>3}  {:>7.1?}",
        r.record.path,
        100.0 * r.record.covered_fraction,
        r.record.pages_requested,
        r.record.exec_time,
    );
}
