//! The §6 extension in action: 3-D volume visualization on the same
//! middleware. Eight emulated scientists explore two 4 GiB volumes with
//! maximum-intensity projections — panning, changing level of detail, and
//! stepping through depth slabs — while the simulated server schedules
//! their queries under each ranking strategy.
//!
//! Also renders a real MIP projection on a small volume through the actual
//! kernels, verified against the ground-truth reference.
//!
//! Run with: `cargo run --release --example volume_explorer`

use std::sync::Arc;
use vmqs::prelude::*;
use vmqs_storage::DataSource;
use vmqs_volume::kernels::{compute_from_bricks, reference_render};
use vmqs_volume::{
    generate_volume, run_volume_sim, VolCostModel, VolOp, VolQuery, VolWorkloadConfig,
    VolumeDataset,
};

fn main() {
    // Part 1: real kernel execution on a small synthetic volume.
    let small = VolumeDataset::new(DatasetId(42), 200, 200, 160);
    let query = VolQuery::new(small, Rect::new(20, 20, 160, 160), 40, 120, 2, VolOp::Mip);
    let src = SyntheticSource::new();
    let img = compute_from_bricks(&query, |idx| {
        Arc::new(
            src.read_page(small.id, idx, vmqs_volume::PAGE_SIZE)
                .unwrap(),
        )
    });
    assert_eq!(img, reference_render(&query));
    println!(
        "rendered a {}x{} MIP of volume {} (depth slab 40..120), verified against reference",
        img.width, img.height, small.id
    );
    let histogram_max = img.data.iter().copied().max().unwrap_or(0);
    println!("brightest projected voxel value: {histogram_max}\n");

    // Part 2: paper-style scheduling study on the large volumes.
    println!("8 scientists exploring two 4 GiB volumes (simulated, 4 threads, DS = 64 MB):");
    println!(
        "{:>8} | {:>15} {:>10} {:>12}",
        "strategy", "t-mean resp", "reuse", "makespan"
    );
    for strategy in Strategy::paper_set() {
        let streams = generate_volume(&VolWorkloadConfig::standard(VolOp::Mip, 11));
        let cfg = SimConfig::paper_baseline().with_strategy(strategy);
        let report = run_volume_sim(cfg, VolCostModel::calibrated(&cfg.disk), streams);
        println!(
            "{:>8} | {:>13.2} s {:>9.1}% {:>10.1} s",
            strategy.name(),
            report.trimmed_mean_response(),
            100.0 * report.average_overlap(),
            report.makespan,
        );
    }
    println!("\n(The same scheduling graph and caches serve both applications; only the");
    println!(" QuerySpec predicate and the kernels changed — the paper's middleware claim.)");
}
