//! The movie scenario (paper §5): "if we want to create a movie from a
//! case study using VM, we may submit a set of queries, each of which
//! corresponds to a visualization of the slide being studied. In that
//! case, it is important to decrease the overall execution time of the
//! batch of queries."
//!
//! Builds a camera path over a paper-scale slide (pan + zoom, with the
//! frames naturally overlapping their neighbours), submits all frames as
//! one batch to the discrete-event simulator, and compares the total
//! render time under every ranking strategy — the Fig. 7 effect on a
//! concrete application.
//!
//! Run with: `cargo run --release --example movie_batch`

use vmqs::prelude::*;

/// A 96-frame camera path: a slow pan across the slide at zoom 4 with a
/// zoom-in/zoom-out bounce in the middle. Consecutive frames overlap by
/// 75%, so a reuse-aware schedule renders the movie mostly by projection.
fn camera_path(slide: SlideDataset) -> Vec<VmQuery> {
    let mut frames = Vec::new();
    let side = 4096u32;
    let step = side / 4;
    for i in 0..64u32 {
        let x = (i * step).min(slide.width - side);
        frames.push(VmQuery::new(
            slide,
            Rect::new(x, 8192, side, side),
            4,
            VmOp::Subsample,
        ));
    }
    // Zoom bounce around the midpoint of the pan.
    for &zoom in &[2u32, 1, 1, 2, 4, 8] {
        let side = 1024 * zoom;
        let x = 12000u32.min(slide.width - side);
        frames.push(VmQuery::new(
            slide,
            Rect::new(x, 10000.min(slide.height - side), side, side),
            zoom,
            VmOp::Subsample,
        ));
    }
    // Pan back at coarse zoom (entirely derivable from earlier frames).
    for i in (0..26u32).rev() {
        let x = (i * step * 2).min(slide.width - 8192);
        frames.push(VmQuery::new(
            slide,
            Rect::new(x, 8192, 8192, 8192),
            8,
            VmOp::Subsample,
        ));
    }
    frames
}

fn main() {
    let slide = SlideDataset::paper_scale(DatasetId(0));
    let frames = camera_path(slide);
    println!(
        "movie render: {} frames over a {}x{} slide, batch submission, 4 threads",
        frames.len(),
        slide.width,
        slide.height
    );
    println!(
        "{:>8} | {:>14} {:>10} {:>12} {:>12}",
        "strategy", "batch time", "reuse", "exact hits", "disk reads"
    );
    let mut baseline = None;
    for strategy in Strategy::paper_set() {
        let cfg = SimConfig::paper_baseline()
            .with_strategy(strategy)
            .with_mode(SubmissionMode::Batch)
            .with_ds_budget(64 << 20);
        let report = run_sim(
            cfg,
            vec![ClientStream {
                client: ClientId(0),
                queries: frames.clone(),
            }],
        );
        let t = report.makespan;
        let speedup = *baseline.get_or_insert(t) / t;
        println!(
            "{:>8} | {:>10.1} s {:>9.1}% {:>12} {:>12}  ({speedup:.2}x vs FIFO)",
            strategy.name(),
            t,
            100.0 * report.average_overlap(),
            report.ds_stats.exact_hits,
            report.disk_stats.requests,
        );
    }
    println!("\n(Shape per paper Fig. 7: locality-aware CF/CNBF render the movie fastest.)");
}
