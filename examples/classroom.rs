//! The classroom scenario (paper §3): "an entire class can access and
//! individually manipulate the same slide at the same time, searching for
//! a particular feature" — many interactive clients, heavy inter-client
//! overlap, one shared server.
//!
//! Runs the same emulated-client workload on the *real threaded engine*
//! under every ranking strategy and prints the response-time and reuse
//! comparison.
//!
//! Run with: `cargo run --release --example classroom`

use vmqs::prelude::*;
use vmqs_core::stats::trimmed_mean_95;
use vmqs_workload::{run_server_interactive, small_server};

fn main() {
    println!("classroom: 4 emulated clients browsing shared slides (threaded engine)");
    println!(
        "{:>8} {:>6} | {:>14} {:>12} {:>11} {:>11} {:>9}",
        "strategy", "op", "t-mean resp", "mean reuse", "exact hits", "part hits", "pages"
    );
    for op in [VmOp::Subsample, VmOp::Average] {
        for strategy in Strategy::paper_set() {
            // The same seeded workload for every strategy: 4 clients, 4
            // queries each, hotspot-clustered so clients overlap.
            let streams = generate(&WorkloadConfig::small(op, 7));
            let server = small_server(strategy, 2);
            let records = run_server_interactive(&server, streams);
            let resp: Vec<f64> = records
                .iter()
                .map(|r| r.response_time().as_secs_f64() * 1e3)
                .collect();
            let reuse: f64 =
                records.iter().map(|r| r.covered_fraction).sum::<f64>() / records.len() as f64;
            let ds = server.ds_stats();
            let ps = server.ps_stats();
            println!(
                "{:>8} {:>6} | {:>11.2} ms {:>11.1}% {:>11} {:>11} {:>9}",
                strategy.name(),
                op.name(),
                trimmed_mean_95(&resp),
                100.0 * reuse,
                ds.exact_hits,
                ds.partial_hits,
                ps.pages_fetched,
            );
            server.shutdown();
        }
    }
    println!("\n(16 queries per run; reuse-aware strategies fetch fewer pages)");
}
