//! Property-based tests (proptest) for the core invariants the system's
//! correctness rests on: rectangle algebra, overlap indices, scheduling
//! graph consistency, cache accounting, kernel-vs-reference agreement, and
//! simulator sanity under randomized workloads.

use proptest::prelude::*;
use vmqs::prelude::{generate, run_sim};
use vmqs::prelude::{
    DataStore, DatasetId, Payload, QuerySpec, QueryState, Rect, SchedulingGraph, SimConfig,
    SlideDataset, SubmissionMode, SyntheticSource, VmOp, VmQuery, WorkloadConfig,
};
use vmqs_core::geom::{greedy_cover, subtract_all, total_area};
use vmqs_core::spec::testutil::IntervalSpec;
use vmqs_core::QueryId;
use vmqs_core::Strategy as RankStrategy;
use vmqs_datastore::DsError;
use vmqs_microscope::kernels::{compute_from_chunks, reference_render};
use vmqs_microscope::PAGE_SIZE;
use vmqs_pagespace::{PageCacheCore, PageData, PageDisposition, PageKey};
use vmqs_storage::DataSource;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0u32..200, 0u32..200, 1u32..100, 1u32..100).prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
}

proptest! {
    #[test]
    fn intersection_is_commutative_and_bounded(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        if let Some(i) = a.intersect(&b) {
            prop_assert!(a.contains(&i) && b.contains(&i));
            prop_assert!(i.area() <= a.area().min(b.area()));
        }
    }

    #[test]
    fn subtraction_conserves_area(a in arb_rect(), b in arb_rect()) {
        let parts = a.subtract(&b);
        prop_assert_eq!(total_area(&parts), a.area() - a.intersection_area(&b));
        for (i, p) in parts.iter().enumerate() {
            prop_assert!(a.contains(p));
            prop_assert!(!p.intersects(&b));
            prop_assert!(!p.is_empty());
            for q in &parts[i + 1..] {
                prop_assert!(!p.intersects(q));
            }
        }
    }

    #[test]
    fn subtract_all_leaves_disjoint_remainder(
        target in arb_rect(),
        covers in prop::collection::vec(arb_rect(), 0..6),
    ) {
        let rem = subtract_all(&target, &covers);
        for (i, r) in rem.iter().enumerate() {
            prop_assert!(target.contains(r));
            for c in &covers {
                prop_assert!(!r.intersects(c));
            }
            for s in &rem[i + 1..] {
                prop_assert!(!r.intersects(s));
            }
        }
        // Remainder + covers tile the target: any sampled target point is
        // in a cover or in the remainder.
        let px = target.x + target.w / 2;
        let py = target.y + target.h / 2;
        let in_cover = covers.iter().any(|c| c.contains_point(px, py));
        let in_rem = rem.iter().any(|r| r.contains_point(px, py));
        prop_assert!(in_cover || in_rem);
    }

    #[test]
    fn greedy_cover_fragments_disjoint_and_tagged_correctly(
        target in arb_rect(),
        candidates in prop::collection::vec(arb_rect(), 0..6),
    ) {
        let cover = greedy_cover(&target, &candidates);
        for (i, (frag, tag)) in cover.iter().enumerate() {
            prop_assert!(target.contains(frag));
            prop_assert!(candidates[*tag].contains(frag));
            for (other, _) in &cover[i + 1..] {
                prop_assert!(!frag.intersects(other));
            }
        }
    }

    #[test]
    fn interval_overlap_in_unit_range(
        s1 in 0u64..500, l1 in 1u64..200, sc1 in 1u64..5,
        s2 in 0u64..500, l2 in 1u64..200, sc2 in 1u64..5,
    ) {
        let a = IntervalSpec::new(s1, l1 * sc1, sc1);
        let b = IntervalSpec::new(s2, l2 * sc2, sc2);
        let ov = a.overlap(&b);
        prop_assert!((0.0..=1.0).contains(&ov), "overlap {} out of range", ov);
        prop_assert!((a.overlap(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vm_overlap_in_unit_range_and_directional(
        x1 in 0u32..1000, y1 in 0u32..1000,
        x2 in 0u32..1000, y2 in 0u32..1000,
        z1 in 0usize..3, z2 in 0usize..3,
        op in prop::bool::ANY,
    ) {
        let zooms = [1u32, 2, 4];
        let slide = SlideDataset::new(DatasetId(0), 2048, 2048);
        let op = if op { VmOp::Subsample } else { VmOp::Average };
        let a = VmQuery::new(slide, Rect::new(x1, y1, 512, 512), zooms[z1], op);
        let b = VmQuery::new(slide, Rect::new(x2, y2, 512, 512), zooms[z2], op);
        let ov = a.overlap(&b);
        prop_assert!((0.0..=1.0).contains(&ov));
        // Non-invertibility: a coarser result can never serve a finer query.
        if a.zoom > b.zoom {
            prop_assert_eq!(ov, 0.0);
        }
        // Coverage consistency: positive overlap implies usable coverage
        // or a sliver smaller than one output pixel.
        if ov > 0.01 {
            prop_assert!(a.can_project_to(&b));
        }
    }

    // Graph invariants under random operation sequences: edge mirroring,
    // waiting-set consistency, and incremental ranks equal to a fresh
    // recomputation.
    #[test]
    fn graph_consistent_under_random_ops(
        specs in prop::collection::vec((0u64..400, 1u64..4, 0u8..3), 3..25),
        ops in prop::collection::vec(0u8..4, 0..40),
        strat in 0usize..6,
    ) {
        let strategy = RankStrategy::paper_set()[strat];
        let mut g: SchedulingGraph<IntervalSpec> = SchedulingGraph::new(strategy);
        let mut next = 0u64;
        let mut pending: Vec<(u64, u64, u8)> = specs.clone();
        for op in ops {
            match op {
                // Insert the next spec, if any remain.
                0 | 1 => {
                    if let Some((start, scale, _)) = pending.pop() {
                        g.insert(QueryId(next), IntervalSpec::new(start, 100 * scale, scale));
                        next += 1;
                    }
                }
                // Dequeue + immediately cache.
                2 => {
                    if let Some(id) = g.dequeue() {
                        g.mark_cached(id);
                    }
                }
                // Swap out the oldest cached node.
                _ => {
                    let mut cached = g.ids_in_state(QueryState::Cached);
                    cached.sort();
                    if let Some(&id) = cached.first() {
                        g.swap_out(id);
                    }
                }
            }
            g.validate().map_err(TestCaseError::fail)?;
        }
    }

    #[test]
    fn graph_dequeue_returns_max_rank(
        specs in prop::collection::vec((0u64..300, 1u64..4), 2..15),
    ) {
        let mut g: SchedulingGraph<IntervalSpec> = SchedulingGraph::new(RankStrategy::Muf);
        for (i, (start, scale)) in specs.iter().enumerate() {
            g.insert(QueryId(i as u64), IntervalSpec::new(*start, 120 * scale, *scale));
        }
        let waiting = g.ids_in_state(QueryState::Waiting);
        let max_rank = waiting
            .iter()
            .map(|&id| g.rank_of(id).unwrap())
            .max()
            .unwrap();
        let picked = g.dequeue().unwrap();
        // The dequeued node carried the maximum rank (ties break by
        // arrival, which is still a max-rank node).
        prop_assert_eq!(g.rank_of(picked).unwrap(), max_rank);
    }

    // Data Store: budget never exceeded; lookups only return visible
    // blobs; exact match implies cmp.
    #[test]
    fn datastore_budget_and_visibility(
        inserts in prop::collection::vec((0u64..300, 1u64..80), 1..30),
        budget in 50u64..300,
    ) {
        let mut ds: DataStore<IntervalSpec> = DataStore::new(budget);
        let mut evicted = Vec::new();
        for (i, (start, len)) in inserts.iter().enumerate() {
            let spec = IntervalSpec::new(*start, *len, 1);
            let size = *len;
            match ds.insert(QueryId(i as u64), spec.clone(), size, Payload::Virtual, &mut evicted) {
                Ok(_) => {}
                Err(DsError::TooLarge) => prop_assert!(size > budget),
                Err(DsError::Busy) => prop_assert!(false, "no pinned entries exist"),
                // Admission control only rejects scored inserts under the
                // cost-based policy; plain inserts always admit.
                Err(DsError::Unprofitable) => prop_assert!(false, "uncosted inserts bypass admission"),
            }
            prop_assert!(ds.used() <= budget, "used {} > budget {}", ds.used(), budget);
            let probe = IntervalSpec::new(*start, *len, 1);
            for m in ds.lookup(&probe) {
                let e = ds.get(m.blob).unwrap();
                prop_assert!(e.visible());
                if m.overlap == 1.0 && e.spec.cmp(&probe) {
                    prop_assert_eq!(m.reuse_bytes, e.spec.qoutsize());
                }
            }
        }
    }

    // Page cache: capacity respected; a resident page is never classified
    // MustFetch; in-flight pages are never duplicated.
    #[test]
    fn pagecache_invariants(
        requests in prop::collection::vec(
            prop::collection::vec(0u64..40, 1..8), 1..20),
        capacity in 1u64..16,
    ) {
        let mut ps = PageCacheCore::new(capacity * 64, 64);
        for req in &requests {
            let keys: Vec<PageKey> =
                req.iter().map(|&i| PageKey::new(DatasetId(0), i)).collect();
            let resident_before: Vec<bool> = {
                let mut sorted = keys.clone();
                sorted.sort_unstable();
                sorted.dedup();
                sorted.iter().map(|k| ps.is_resident(*k)).collect()
            };
            let plan = ps.plan_read(&keys);
            for ((page, disp), was_resident) in plan.pages.iter().zip(resident_before) {
                if was_resident {
                    prop_assert_eq!(disp.clone(), PageDisposition::Hit);
                }
                if *disp == PageDisposition::MustFetch {
                    prop_assert!(ps.is_in_flight(*page));
                }
            }
            for run in &plan.fetch_runs {
                for page in run.pages() {
                    ps.complete_fetch(page, PageData::Virtual);
                }
            }
            prop_assert!(ps.resident_pages() <= capacity as usize);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Kernels equal the ground-truth reference for arbitrary aligned
    // windows (exact for subsampling AND direct averaging).
    #[test]
    fn kernels_match_reference(
        x in 0u32..400, y in 0u32..400,
        w in 1u32..100, h in 1u32..100,
        zexp in 0u32..3,
        subsample in prop::bool::ANY,
    ) {
        let zoom = 1u32 << zexp;
        let slide = SlideDataset::new(DatasetId(1), 600, 600);
        let op = if subsample { VmOp::Subsample } else { VmOp::Average };
        let region = Rect::new(x, y, w.max(zoom), h.max(zoom));
        let q = VmQuery::new(slide, region, zoom, op);
        let src = SyntheticSource::new();
        let got = compute_from_chunks(&q, |idx| {
            std::sync::Arc::new(src.read_page(slide.id, idx, PAGE_SIZE).unwrap())
        });
        prop_assert_eq!(got, reference_render(&q));
    }

    // Random small workloads through the simulator: every query completes
    // exactly once, times are sane, and runs are deterministic.
    #[test]
    fn simulator_sane_on_random_workloads(
        seeds in prop::collection::vec(0u64..1000, 1..4),
        threads in 1usize..6,
        strat in 0usize..6,
        batch in prop::bool::ANY,
    ) {
        let mut wcfg = WorkloadConfig::small(VmOp::Subsample, seeds[0]);
        wcfg.queries_per_client = 3;
        let streams = generate(&wcfg);
        let total: usize = streams.iter().map(|s| s.queries.len()).sum();
        let mode = if batch { SubmissionMode::Batch } else { SubmissionMode::Interactive };
        let cfg = SimConfig::paper_baseline()
            .with_strategy(RankStrategy::paper_set()[strat])
            .with_threads(threads)
            .with_mode(mode);
        let a = run_sim(cfg, streams.clone());
        prop_assert_eq!(a.records.len(), total);
        for r in &a.records {
            prop_assert!(r.arrival >= 0.0);
            prop_assert!(r.start >= r.arrival);
            prop_assert!(r.finish >= r.start);
            prop_assert!((0.0..=1.0).contains(&r.covered_fraction));
            prop_assert!(r.finish <= a.makespan + 1e-9);
        }
        let b = run_sim(cfg, streams);
        prop_assert_eq!(a.makespan, b.makespan);
    }

    // Observability event-log invariants (DESIGN.md §9) over randomized
    // simulated runs: every Submitted query gets exactly one terminal
    // event and exactly one Ranked, per-query timestamps never go
    // backwards in sequence order, and every LookupHit overlap lies in
    // [0, 1].
    #[test]
    fn event_log_invariants_on_random_workloads(
        seed in 0u64..1000,
        threads in 1usize..6,
        strat in 0usize..6,
        batch in prop::bool::ANY,
    ) {
        use std::collections::HashMap;
        use vmqs_obs::EventKind;

        let mut wcfg = WorkloadConfig::small(VmOp::Subsample, seed);
        wcfg.queries_per_client = 3;
        let streams = generate(&wcfg);
        let total: usize = streams.iter().map(|s| s.queries.len()).sum();
        let mode = if batch { SubmissionMode::Batch } else { SubmissionMode::Interactive };
        let cfg = SimConfig::paper_baseline()
            .with_strategy(RankStrategy::paper_set()[strat])
            .with_threads(threads)
            .with_mode(mode)
            .with_observe(true);
        let report = run_sim(cfg, streams);

        let mut submitted: HashMap<QueryId, u64> = HashMap::new();
        let mut terminals: HashMap<QueryId, u64> = HashMap::new();
        let mut ranked: HashMap<QueryId, u64> = HashMap::new();
        let mut last_time: HashMap<QueryId, f64> = HashMap::new();
        for e in &report.events {
            let prev = last_time.insert(e.query, e.time).unwrap_or(0.0);
            prop_assert!(
                e.time >= prev,
                "{} time went backwards: {} -> {}", e.query, prev, e.time
            );
            match e.kind {
                EventKind::Submitted => *submitted.entry(e.query).or_default() += 1,
                EventKind::Ranked { .. } => *ranked.entry(e.query).or_default() += 1,
                EventKind::LookupHit { overlap, .. } => {
                    prop_assert!(
                        (0.0..=1.0).contains(&overlap),
                        "{} overlap {} out of range", e.query, overlap
                    );
                }
                k if k.is_terminal() => *terminals.entry(e.query).or_default() += 1,
                _ => {}
            }
        }
        prop_assert_eq!(submitted.len(), total, "every query must be Submitted");
        for (q, n) in &submitted {
            prop_assert_eq!(*n, 1, "{} submitted more than once", q);
            prop_assert_eq!(
                terminals.get(q).copied(), Some(1),
                "{} needs exactly one terminal event", q
            );
            prop_assert_eq!(
                ranked.get(q).copied(), Some(1),
                "{} must be ranked exactly once", q
            );
        }
        // The timeline reconstruction agrees: one latency per completion.
        let lat = vmqs_obs::timeline::latencies(&report.events);
        prop_assert_eq!(lat.len(), report.records.len());
        prop_assert!(lat.iter().all(|&l| l >= 0.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Query conservation under overload (DESIGN.md §10): every submitted
    // query resolves to exactly one typed outcome —
    //   submitted == completed + failed + timed_out + shed + rejected
    // — at the handle level, AND the metrics registry agrees with the
    // handles. Random workloads through the *real* threaded server with
    // random admission bounds and thresholds.
    #[test]
    fn overload_conserves_queries_on_random_workloads(
        seed in 0u64..1000,
        threads in 1usize..4,
        max_pending in 1usize..12,
        // Percent thresholds; values below the floor mean "disabled".
        degrade in 0u32..100,
        shed in 0u32..100,
        queries in 6usize..20,
    ) {
        use std::sync::Arc;
        use vmqs::prelude::{OverloadConfig, QueryServer, ServerConfig, ServerError};

        let slide = SlideDataset::new(DatasetId(0), 800, 800);
        let specs: Vec<VmQuery> = (0..queries)
            .map(|i| {
                let r = (seed ^ i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let op = if (r >> 7) & 1 == 0 { VmOp::Subsample } else { VmOp::Average };
                let side = 80 + ((r >> 16) % 3) as u32 * 40;
                let x = ((r >> 32) as u32) % (800 - side);
                let y = ((r >> 44) as u32) % (800 - side);
                VmQuery::new(slide, Rect::new(x, y, side, side), 1 << ((r >> 24) % 2), op)
            })
            .collect();

        let ov = OverloadConfig {
            max_pending,
            client_rate: 0.0,
            degrade_threshold: if degrade < 25 {
                f64::INFINITY
            } else {
                degrade as f64 / 100.0
            },
            shed_threshold: if shed < 50 {
                f64::INFINITY
            } else {
                shed as f64 / 100.0
            },
        };
        let cfg = ServerConfig::small()
            .with_threads(threads)
            .with_start_paused(true)
            .with_overload(ov);
        let server = QueryServer::new(cfg, Arc::new(SyntheticSource::new()));
        let handles = server.submit_batch(specs);
        server.resume_workers();

        let (mut completed, mut failed, mut timed_out, mut shed_n, mut rejected) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        for h in handles {
            match h.wait() {
                Ok(_) => completed += 1,
                Err(ServerError::Overloaded { retry_after }) => {
                    prop_assert!(retry_after > std::time::Duration::ZERO);
                    rejected += 1;
                }
                Err(ServerError::Shed { pressure }) => {
                    prop_assert!((0.0..=1.0).contains(&pressure));
                    shed_n += 1;
                }
                Err(ServerError::Timeout { .. }) => timed_out += 1,
                Err(_) => failed += 1,
            }
        }
        server.drain();
        let metrics = server.metrics();
        let summary = server.summary();
        server.shutdown();

        // Handle-level conservation.
        prop_assert_eq!(
            completed + failed + timed_out + shed_n + rejected,
            queries as u64,
            "every query must resolve exactly once"
        );
        // The metrics registry tells the same story as the handles.
        let counter = |name: &str| metrics.counters.get(name).copied().unwrap_or(0);
        prop_assert_eq!(counter("vmqs_queries_submitted_total"), queries as u64);
        prop_assert_eq!(counter("vmqs_queries_completed_total"), completed);
        prop_assert_eq!(counter("vmqs_queries_failed_total"), failed);
        prop_assert_eq!(counter("vmqs_queries_timed_out_total"), timed_out);
        prop_assert_eq!(counter("vmqs_queries_rejected_total"), rejected);
        prop_assert_eq!(counter("vmqs_queries_shed_total"), shed_n);
        // And so does the server summary.
        prop_assert_eq!(summary.rejected as u64, rejected);
        prop_assert_eq!(summary.shed as u64, shed_n);
        prop_assert_eq!(summary.completed as u64, completed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Query conservation under work stealing (DESIGN.md §12): with the
    // scheduling graph sharded per worker and idle workers stealing from
    // the richest shard, no query may be lost or resolved twice at any
    // pool size. Interactive multi-client submission (unlike the paused
    // batch above) so dequeues, steals, and admissions genuinely race,
    // with the shed/reject ladder armed so every outcome class is
    // reachable.
    #[test]
    fn stealing_conserves_queries_at_2_4_8_workers(
        seed in 0u64..500,
        widx in 0usize..3,
        steal_seed in 0u64..1000,
        queries in 24usize..48,
    ) {
        use std::sync::Arc;
        use vmqs::prelude::{OverloadConfig, QueryServer, ServerConfig, ServerError};

        let workers = [2usize, 4, 8][widx];
        let slide = SlideDataset::new(DatasetId(0), 800, 800);
        let specs: Vec<VmQuery> = (0..queries)
            .map(|i| {
                let r = (seed ^ (i as u64) << 3)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let op = if (r >> 7) & 1 == 0 { VmOp::Subsample } else { VmOp::Average };
                let side = 80 + ((r >> 16) % 3) as u32 * 40;
                let x = ((r >> 32) as u32) % (800 - side);
                let y = ((r >> 44) as u32) % (800 - side);
                VmQuery::new(slide, Rect::new(x, y, side, side), 1 << ((r >> 24) % 2), op)
            })
            .collect();

        let ov = OverloadConfig {
            max_pending: (queries / 2).max(1),
            client_rate: 0.0,
            degrade_threshold: 0.5,
            shed_threshold: 0.9,
        };
        let cfg = ServerConfig::small()
            .with_threads(workers)
            .with_steal_seed(steal_seed)
            .with_overload(ov);
        let server = QueryServer::new(cfg, Arc::new(SyntheticSource::new()));

        // Four concurrent clients, each waiting for its previous answer —
        // the submission pattern that interleaves admission fast paths
        // with dequeues and steals on other shards.
        let totals = std::sync::Mutex::new([0u64; 5]);
        std::thread::scope(|scope| {
            for chunk in specs.chunks(queries.div_ceil(4)) {
                let (server, totals) = (&server, &totals);
                scope.spawn(move || {
                    let mut local = [0u64; 5];
                    for q in chunk {
                        match server.submit(*q).wait() {
                            Ok(_) => local[0] += 1,
                            Err(ServerError::Shed { .. }) => local[1] += 1,
                            Err(ServerError::Overloaded { .. }) => local[2] += 1,
                            Err(ServerError::Timeout { .. }) => local[3] += 1,
                            Err(_) => local[4] += 1,
                        }
                    }
                    let mut t = totals.lock().unwrap();
                    for (a, b) in t.iter_mut().zip(local) {
                        *a += b;
                    }
                });
            }
        });
        server.drain();
        server.check_invariants();
        let [completed, shed_n, rejected, timed_out, failed] =
            *totals.lock().unwrap();
        let metrics = server.metrics();
        let stats = server.graph_stats();
        let summary = server.summary();
        server.shutdown();

        prop_assert_eq!(
            completed + failed + timed_out + shed_n + rejected,
            queries as u64,
            "every query must resolve exactly once"
        );
        let counter = |name: &str| metrics.counters.get(name).copied().unwrap_or(0);
        prop_assert_eq!(counter("vmqs_queries_submitted_total"), queries as u64);
        prop_assert_eq!(counter("vmqs_queries_completed_total"), completed);
        prop_assert_eq!(counter("vmqs_queries_failed_total"), failed);
        prop_assert_eq!(counter("vmqs_queries_timed_out_total"), timed_out);
        prop_assert_eq!(counter("vmqs_queries_rejected_total"), rejected);
        prop_assert_eq!(counter("vmqs_queries_shed_total"), shed_n);
        prop_assert_eq!(summary.completed as u64, completed);
        // Graph-level conservation across all shards: everything inserted
        // left through a worker dequeue or a shed/timeout swap-out, and
        // nothing remains after drain.
        // nothing remains after drain. (`dequeue_specific` on the shed
        // path counts as a dequeue, so dequeued covers all four classes.)
        prop_assert_eq!(stats.inserted, completed + failed + timed_out + shed_n);
        prop_assert_eq!(stats.dequeued, stats.inserted);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // Differential equivalence of grafting (DESIGN.md §13): on a random
    // workload seeded with duplicate predicates, running the *real
    // threaded server* with grafting on must return byte-for-byte the
    // same answer for every query as running it with grafting off — the
    // graft path changes who computes, never what is answered. Both runs
    // must also conserve queries
    // (submitted == completed + failed + timed_out + shed + rejected)
    // and the graft run must never duplicate a full compute.
    #[test]
    fn grafting_is_answer_equivalent_on_random_workloads(
        seed in 0u64..1000,
        threads in 1usize..5,
        queries in 8usize..24,
        dup_stride in 2usize..5,
    ) {
        use std::sync::Arc;
        use vmqs::prelude::{QueryServer, ServerConfig};

        let slide = SlideDataset::new(DatasetId(0), 800, 800);
        let mut specs: Vec<VmQuery> = Vec::with_capacity(queries);
        for i in 0..queries {
            let r = (seed ^ i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Every dup_stride-th query repeats an earlier predicate, so
            // copies race their producer and the graft path actually runs.
            if i % dup_stride == dup_stride - 1 {
                specs.push(specs[(r % i as u64) as usize]);
            } else {
                let op = if (r >> 7) & 1 == 0 { VmOp::Subsample } else { VmOp::Average };
                let side = 80 + ((r >> 16) % 3) as u32 * 40;
                let x = ((r >> 32) as u32) % (800 - side);
                let y = ((r >> 44) as u32) % (800 - side);
                specs.push(VmQuery::new(
                    slide,
                    Rect::new(x, y, side, side),
                    1 << ((r >> 24) % 2),
                    op,
                ));
            }
        }

        let run = |graft: bool| {
            let cfg = ServerConfig::small()
                .with_threads(threads)
                .with_start_paused(true)
                .with_graft(graft);
            let server = QueryServer::new(cfg, Arc::new(SyntheticSource::new()));
            let handles = server.submit_batch(specs.clone());
            server.resume_workers();
            let images: Vec<Arc<[u8]>> = handles
                .into_iter()
                .map(|h| h.wait().expect("clean source: every query completes").image)
                .collect();
            server.drain();
            let summary = server.summary();
            server.shutdown();
            (images, summary)
        };
        let (on, sum_on) = run(true);
        let (off, sum_off) = run(false);

        for (i, (a, b)) in on.iter().zip(off.iter()).enumerate() {
            prop_assert!(
                a[..] == b[..],
                "query {} answered differently with grafting on vs off", i
            );
        }
        for (name, s) in [("graft-on", &sum_on), ("graft-off", &sum_off)] {
            prop_assert_eq!(
                s.completed + s.failed + s.timed_out + s.shed + s.rejected,
                queries,
                "{}: every query must resolve exactly once", name
            );
            prop_assert_eq!(s.completed, queries, "{}: clean source completes all", name);
        }
        prop_assert_eq!(
            sum_on.duplicate_full_computes, 0,
            "grafting must never let a full compute race a visible equivalent"
        );
        prop_assert_eq!(sum_off.grafted, 0, "grafting off must never graft");
    }

    // Differential property for the tier-2 spill (DESIGN.md §14): under a
    // tier-1 budget tight enough to force demotions, a server with the
    // disk tier enabled must return byte-identical answers to one without
    // it, on random workloads with repeated predicates (so spilled entries
    // actually re-heat) across 1–4 worker threads — and terminal counts
    // must be conserved in both.
    #[test]
    fn spilling_is_answer_equivalent_on_random_workloads(
        seed in 0u64..1000,
        threads in 1usize..5,
        queries in 8usize..24,
        dup_stride in 2usize..5,
    ) {
        use std::sync::Arc;
        use vmqs::prelude::{QueryServer, ServerConfig};

        let slide = SlideDataset::new(DatasetId(0), 800, 800);
        let mut specs: Vec<VmQuery> = Vec::with_capacity(queries);
        for i in 0..queries {
            let r = (seed ^ i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Every dup_stride-th query repeats an earlier predicate, so a
            // spilled copy gets a returning customer and the restore path
            // actually runs.
            if i % dup_stride == dup_stride - 1 {
                specs.push(specs[(r % i as u64) as usize]);
            } else {
                let op = if (r >> 7) & 1 == 0 { VmOp::Subsample } else { VmOp::Average };
                let side = 80 + ((r >> 16) % 3) as u32 * 40;
                let x = ((r >> 32) as u32) % (800 - side);
                let y = ((r >> 44) as u32) % (800 - side);
                specs.push(VmQuery::new(
                    slide,
                    Rect::new(x, y, side, side),
                    1 << ((r >> 24) % 2),
                    op,
                ));
            }
        }

        // Unique spill dir per proptest case, no wall-clock/RNG (banned
        // by the workspace lints): process id + an atomic counter.
        let dir = {
            use std::sync::atomic::{AtomicU64, Ordering};
            static N: AtomicU64 = AtomicU64::new(0);
            let n = N.fetch_add(1, Ordering::Relaxed);
            std::env::temp_dir().join(format!("vmqs-prop-spill-{}-{n}", std::process::id()))
        };
        let run = |spill: bool| {
            // ~3 modest results of tier-1 budget: guaranteed demotion
            // pressure on every generated workload.
            let cfg = ServerConfig::small()
                .with_threads(threads)
                .with_start_paused(true)
                .with_cache_policy(vmqs_datastore::EvictionPolicy::CostBased)
                .with_ds_budget(120_000)
                .with_spill_dir(spill.then(|| dir.clone()))
                .with_tier2_budget(if spill { 64 << 20 } else { 0 });
            let server = QueryServer::new(cfg, Arc::new(SyntheticSource::new()));
            let handles = server.submit_batch(specs.clone());
            server.resume_workers();
            let images: Vec<Arc<[u8]>> = handles
                .into_iter()
                .map(|h| h.wait().expect("clean source: every query completes").image)
                .collect();
            server.drain();
            let summary = server.summary();
            server.check_invariants();
            server.shutdown();
            (images, summary)
        };
        let (on, sum_on) = run(true);
        let (off, sum_off) = run(false);
        let _ = std::fs::remove_dir_all(&dir);

        for (i, (a, b)) in on.iter().zip(off.iter()).enumerate() {
            prop_assert!(
                a[..] == b[..],
                "query {} answered differently with the spill tier on vs off", i
            );
        }
        for (name, s) in [("spill-on", &sum_on), ("spill-off", &sum_off)] {
            prop_assert_eq!(
                s.completed + s.failed + s.timed_out + s.shed + s.rejected,
                queries,
                "{}: every query must resolve exactly once", name
            );
            prop_assert_eq!(s.completed, queries, "{}: clean source completes all", name);
        }
        prop_assert_eq!(
            (sum_off.spilled, sum_off.restored),
            (0, 0),
            "spill off must never touch tier 2"
        );
    }
}

// ---------------------------------------------------------------------------
// Volume application properties (§6 extension).
// ---------------------------------------------------------------------------

use vmqs_volume::{Box3, VolOp, VolQuery, VolumeDataset};

fn arb_box3() -> impl Strategy<Value = Box3> {
    (
        0u32..100,
        0u32..100,
        0u32..100,
        1u32..60,
        1u32..60,
        1u32..60,
    )
        .prop_map(|(x, y, z, w, h, d)| Box3::new(x, y, z, w, h, d))
}

proptest! {
    #[test]
    fn box3_intersection_commutative_and_contained(a in arb_box3(), b in arb_box3()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        if let Some(i) = a.intersect(&b) {
            prop_assert!(a.contains(&i) && b.contains(&i));
            prop_assert!(i.volume() <= a.volume().min(b.volume()));
            prop_assert!(!i.is_empty());
        }
    }

    #[test]
    fn vol_overlap_in_unit_range_and_depth_isolated(
        x1 in 0u32..500, y1 in 0u32..500, z1 in 0u32..300,
        x2 in 0u32..500, y2 in 0u32..500, z2 in 0u32..300,
        l1 in 0usize..3, l2 in 0usize..3,
    ) {
        let lods = [1u32, 2, 4];
        let vol = VolumeDataset::new(DatasetId(0), 1024, 1024, 512);
        let a = VolQuery::new(vol, Rect::new(x1, y1, 256, 256), z1, z1 + 128, lods[l1], VolOp::Mip);
        let b = VolQuery::new(vol, Rect::new(x2, y2, 256, 256), z2, z2 + 128, lods[l2], VolOp::Mip);
        let ov = a.overlap(&b);
        prop_assert!((0.0..=1.0).contains(&ov));
        prop_assert!((a.overlap(&a) - 1.0).abs() < 1e-12);
        // Depth isolation: any depth-range difference kills reuse.
        if a.z0 != b.z0 || a.z1 != b.z1 {
            prop_assert_eq!(ov, 0.0);
        }
        // Non-invertibility on LOD.
        if a.lod > b.lod {
            prop_assert_eq!(ov, 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Volume kernels equal the ground-truth reference for arbitrary
    // LOD-aligned queries (exact for both MIP and average projection).
    #[test]
    fn volume_kernels_match_reference(
        x in 0u32..80, y in 0u32..80,
        side in 4u32..40,
        z0 in 0u32..60, depth in 1u32..40,
        lexp in 0u32..3,
        mip in prop::bool::ANY,
    ) {
        let lod = 1u32 << lexp;
        let vol = VolumeDataset::new(DatasetId(3), 120, 120, 100);
        let op = if mip { VolOp::Mip } else { VolOp::AvgProj };
        let q = VolQuery::new(
            vol,
            Rect::new(x, y, side.max(lod), side.max(lod)),
            z0,
            (z0 + depth).min(100),
            lod,
            op,
        );
        let src = SyntheticSource::new();
        let got = vmqs_volume::kernels::compute_from_bricks(&q, |idx| {
            std::sync::Arc::new(
                vmqs_storage::DataSource::read_page(&src, vol.id, idx, vmqs_volume::PAGE_SIZE)
                    .unwrap(),
            )
        });
        prop_assert_eq!(got, vmqs_volume::kernels::reference_render(&q));
    }

    // Random volume workloads through the generic simulator: completion,
    // sane metrics, determinism.
    #[test]
    fn volume_simulator_sane(seed in 0u64..500, threads in 1usize..5, strat in 0usize..6) {
        let mut wcfg = vmqs_volume::VolWorkloadConfig::standard(VolOp::Mip, seed);
        wcfg.queries_per_client = 3;
        wcfg.clients_per_dataset = vec![2, 1];
        let streams = vmqs_volume::generate_volume(&wcfg);
        let total: usize = streams.iter().map(|s| s.queries.len()).sum();
        let cfg = SimConfig::paper_baseline()
            .with_strategy(RankStrategy::paper_set()[strat])
            .with_threads(threads);
        let cost = vmqs_volume::VolCostModel::calibrated(&cfg.disk);
        let a = vmqs_volume::run_volume_sim(cfg, cost, streams.clone());
        prop_assert_eq!(a.records.len(), total);
        for r in &a.records {
            prop_assert!(r.start >= r.arrival && r.finish >= r.start);
            prop_assert!((0.0..=1.0).contains(&r.covered_fraction));
        }
        let b = vmqs_volume::run_volume_sim(cfg, cost, streams);
        prop_assert_eq!(a.makespan, b.makespan);
    }
}

// ---------------------------------------------------------------------------
// Index Manager: the spatially indexed store must be observationally
// equivalent to the linear-scan store.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn spatial_store_equivalent_to_linear(
        inserts in prop::collection::vec((0u64..900, 10u64..120, 0usize..2), 1..40),
        probes in prop::collection::vec((0u64..900, 10u64..120, 0usize..2), 1..8),
        cell in 16u32..200,
    ) {
        use vmqs::datastore::SpatialDataStore;
        use vmqs_core::spec::testutil::IntervalSpec;
        let scales = [1u64, 2];
        let mut indexed: SpatialDataStore<IntervalSpec> = SpatialDataStore::new(u64::MAX, cell);
        let mut linear: DataStore<IntervalSpec> = DataStore::new(u64::MAX);
        let mut ev = Vec::new();
        for (i, (start, len, sc)) in inserts.iter().enumerate() {
            let sp = IntervalSpec::new(*start, len * scales[*sc], scales[*sc]);
            indexed
                .insert(vmqs_core::QueryId(i as u64), sp.clone(), 1, Payload::Virtual, &mut ev)
                .unwrap();
            linear
                .insert(vmqs_core::QueryId(i as u64), sp, 1, Payload::Virtual, &mut ev)
                .unwrap();
        }
        for (start, len, sc) in probes {
            let probe = IntervalSpec::new(start, len * scales[sc], scales[sc]);
            let a = indexed.lookup(&probe);
            let b = linear.lookup(&probe);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert_eq!(x.blob, y.blob);
                prop_assert_eq!(x.overlap, y.overlap);
                prop_assert_eq!(x.reuse_bytes, y.reuse_bytes);
            }
        }
    }

    #[test]
    fn grid_index_query_equals_linear_intersection(
        rects in prop::collection::vec(
            (0u32..400, 0u32..400, 1u32..80, 1u32..80), 0..30),
        probe in (0u32..400, 0u32..400, 1u32..120, 1u32..120),
        cell in 8u32..128,
    ) {
        use vmqs_core::GridIndex;
        let ds = DatasetId(0);
        let mut g = GridIndex::new(cell);
        let rects: Vec<Rect> = rects
            .into_iter()
            .map(|(x, y, w, h)| Rect::new(x, y, w, h))
            .collect();
        for (i, r) in rects.iter().enumerate() {
            g.insert(i as u64, ds, *r);
        }
        let probe = Rect::new(probe.0, probe.1, probe.2, probe.3);
        let mut expect: Vec<u64> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&probe))
            .map(|(i, _)| i as u64)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(g.query(ds, &probe), expect);
    }
}

proptest! {
    /// The retry backoff schedule (DESIGN.md §8) under arbitrary
    /// policies: the base schedule is monotone nondecreasing and capped,
    /// and the jittered delay is deterministic per seed and confined to
    /// `[base, base × (1 + jitter)]`.
    #[test]
    fn retry_backoff_is_bounded_monotone_and_deterministic(
        max_retries in 0u32..12,
        base_us in 1u64..5_000,
        cap_mult in 1u32..64,
        jitter_pct in 0u32..101,
        seed in 0u64..u64::MAX,
    ) {
        use std::time::Duration;
        use vmqs_pagespace::RetryPolicy;
        let base = Duration::from_micros(base_us);
        let p = RetryPolicy {
            max_retries,
            base_delay: base,
            max_delay: base * cap_mult,
            jitter: jitter_pct as f64 / 100.0,
        };
        let mut prev = Duration::ZERO;
        let mut total = Duration::ZERO;
        for attempt in 1..=max_retries.max(1) {
            let b = p.base_backoff(attempt);
            prop_assert!(b >= prev, "base schedule must be monotone");
            prop_assert!(b <= p.max_delay, "base schedule must respect the cap");
            prev = b;
            let d = p.backoff_delay(attempt, seed);
            prop_assert_eq!(
                d,
                p.backoff_delay(attempt, seed),
                "delay must be deterministic per (seed, attempt)"
            );
            prop_assert!(d >= b, "jitter only stretches, never shrinks");
            // +1 ns absorbs mul_f64 rounding at the window's upper edge.
            prop_assert!(
                d <= b.mul_f64(1.0 + p.jitter) + Duration::from_nanos(1),
                "jitter must stay within its window"
            );
            if attempt <= max_retries {
                total += d;
            }
        }
        prop_assert!(
            total <= p.worst_case_backoff() + Duration::from_nanos(max_retries as u64),
            "exhausting all retries must cost at most the documented worst case"
        );
    }
}

// ---------------------------------------------------------------------------
// Overload management: token-bucket refill arithmetic and shed tie-breaking
// (the admission primitives behind DESIGN.md §10, modeled for atomicity by
// the `token_bucket_admission_cap` loom model in tests/loom.rs).
// ---------------------------------------------------------------------------

proptest! {
    /// Under any timestamp sequence — including adversarial backwards
    /// jumps — admissions in a monotone-time window never exceed
    /// `burst + rate * elapsed` (the arithmetic the rate limiter
    /// exists to enforce), tokens never go negative (more takes never
    /// succeed than were minted), and time never runs backwards
    /// *inside* the bucket (a past timestamp mints nothing).
    #[test]
    fn token_bucket_never_exceeds_refill_arithmetic(
        rate_centi in 10u64..6400,
        steps in prop::collection::vec((0u64..3, 0u64..5000, 1u64..4), 1..40),
    ) {
        let rate = rate_centi as f64 / 100.0;
        let burst = rate.max(1.0);
        let mut bucket = vmqs_core::TokenBucket::new(rate);
        let mut now = 10.0f64; // arbitrary epoch
        let mut admitted_total = 0u64;
        // The bucket's internal high-water mark starts at the first
        // probe's timestamp (it is full until then, so earlier time
        // mints nothing) and only ever advances; minting is bounded by
        // the span it sweeps. Track that span from the probes we issue.
        let mut first_probe: Option<f64> = None;
        let mut hwm = f64::NEG_INFINITY;
        for (dir, dt_milli, probes) in steps {
            let dt = dt_milli as f64 / 1000.0;
            // dir 0: forward jump, 1: backwards jump, 2: hold still.
            match dir {
                0 => now += dt,
                1 => now -= dt,
                _ => {}
            }
            for _ in 0..probes {
                first_probe.get_or_insert(now);
                hwm = hwm.max(now);
                if bucket.try_take(now) {
                    admitted_total += 1;
                }
            }
            // Refill cap: everything admitted fits in the initial burst
            // plus what the swept monotone span could mint (backwards
            // jumps must never mint).
            let Some(t0) = first_probe else { continue };
            let elapsed = hwm - t0;
            let cap = burst + rate * elapsed;
            // +1e-6 absorbs f64 rounding in the comparison only.
            prop_assert!(
                (admitted_total as f64) <= cap + 1e-6,
                "admitted {} > burst {} + rate {} * elapsed {}",
                admitted_total, burst, rate, elapsed
            );
        }
    }

    /// Feeding two buckets the same (rate, timestamp) sequence gives
    /// identical admit/reject decisions: the limiter is a pure function
    /// of its inputs, never of host state.
    #[test]
    fn token_bucket_is_deterministic(
        rate_centi in 10u64..6400,
        steps in prop::collection::vec(0u64..10_000, 1..60),
    ) {
        let rate = rate_centi as f64 / 100.0;
        let mut a = vmqs_core::TokenBucket::new(rate);
        let mut b = vmqs_core::TokenBucket::new(rate);
        for milli in steps {
            let now = milli as f64 / 1000.0;
            prop_assert_eq!(a.try_take(now), b.try_take(now));
        }
    }

    /// `time_to_token` agrees with `try_take`: zero means a take
    /// succeeds right now, and a positive estimate means a take at
    /// `now` fails but one at `now + estimate` (plus float slack)
    /// succeeds.
    #[test]
    fn token_bucket_time_to_token_is_honest(
        rate_centi in 10u64..6400,
        drains in 0u64..8,
        milli in 0u64..5000,
    ) {
        let rate = rate_centi as f64 / 100.0;
        let mut bucket = vmqs_core::TokenBucket::new(rate);
        let now = milli as f64 / 1000.0;
        for _ in 0..drains {
            let _ = bucket.try_take(now);
        }
        let wait = bucket.time_to_token(now);
        prop_assert!(wait >= 0.0, "negative retry hint {wait}");
        // TokenBucket is Copy: each probe below works on a fresh copy
        // so the probes cannot interfere with one another.
        if wait == 0.0 {
            let mut probe = bucket;
            prop_assert!(probe.try_take(now));
        } else {
            let mut probe = bucket;
            prop_assert!(!probe.try_take(now));
            let mut probe = bucket;
            prop_assert!(probe.try_take(now + wait + 1e-9));
        }
    }

    /// The shed victim is the unique max by (qinputsize, arrival, id)
    /// — and therefore invariant under any permutation of the
    /// candidate list, even with adversarial ties on size and arrival.
    /// (HashMap-order-dependent shedding is exactly the kind of
    /// nondeterminism `xtask lint` rule nondet-iter exists to keep off
    /// this surface.)
    #[test]
    fn shed_victim_tie_breaking_is_total_and_order_free(
        candidates in prop::collection::vec((0u64..32, 0u64..4, 0u64..4), 1..24),
        rotation in 0usize..24,
    ) {
        // Query ids are unique in the scheduler; fold the index in so
        // generated ids are too (ties remain on size and arrival).
        let cands: Vec<(QueryId, u64, u64)> = candidates
            .iter()
            .enumerate()
            .map(|(i, &(id, size, arrival))| (QueryId(id + 32 * i as u64), size, arrival))
            .collect();
        let victim = vmqs_core::shed_victim(cands.clone()).expect("non-empty");

        // The winner dominates every candidate in lexicographic
        // (size, arrival, id) order.
        let key = |c: &(QueryId, u64, u64)| (c.1, c.2, c.0);
        let vc = cands.iter().find(|c| c.0 == victim).expect("victim from set");
        for c in &cands {
            prop_assert!(key(c) <= key(vc), "{c:?} dominates chosen {vc:?}");
        }

        // Permutation invariance: rotate and reverse the list.
        let mut rotated = cands.clone();
        let by = rotation % rotated.len();
        rotated.rotate_left(by);
        prop_assert_eq!(vmqs_core::shed_victim(rotated), Some(victim));
        let mut reversed = cands.clone();
        reversed.reverse();
        prop_assert_eq!(vmqs_core::shed_victim(reversed), Some(victim));
    }
}
