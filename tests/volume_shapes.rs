//! Do the paper's findings carry over to the §6 volume application? These
//! integration tests check the transferable shapes on the volume
//! workloads: caching matters, reuse-aware batch scheduling wins, overlap
//! grows with cache memory (at the volume app's much smaller output
//! sizes), and the runs stay deterministic.

use vmqs::prelude::*;
use vmqs_sim::SimReport;
use vmqs_volume::{
    generate_volume, run_volume_sim, VolCostModel, VolOp, VolQuery, VolWorkloadConfig,
};

fn run(
    strategy: Strategy,
    op: VolOp,
    ds_mb_x10: u64, // tenths of a MB, volume outputs are only 64 KB
    mode: SubmissionMode,
    seed: u64,
) -> SimReport<VolQuery> {
    let streams = generate_volume(&VolWorkloadConfig::standard(op, seed));
    let streams = match mode {
        SubmissionMode::Interactive => streams,
        SubmissionMode::Batch => {
            let queries: Vec<VolQuery> = {
                let max = streams.iter().map(|s| s.queries.len()).max().unwrap_or(0);
                (0..max)
                    .flat_map(|i| {
                        streams
                            .iter()
                            .filter_map(move |s| s.queries.get(i).copied())
                    })
                    .collect()
            };
            vec![ClientStream {
                client: ClientId(0),
                queries,
            }]
        }
    };
    let cfg = SimConfig::paper_baseline()
        .with_strategy(strategy)
        .with_ds_budget(ds_mb_x10 * (1 << 20) / 10)
        .with_mode(mode);
    run_volume_sim(cfg, VolCostModel::calibrated(&cfg.disk), streams)
}

#[test]
fn caching_helps_volume_queries() {
    for op in [VolOp::Mip, VolOp::AvgProj] {
        let with = run(Strategy::Fifo, op, 640, SubmissionMode::Interactive, 42);
        let without = run(Strategy::Fifo, op, 0, SubmissionMode::Interactive, 42);
        assert!(
            with.makespan < 0.9 * without.makespan,
            "{}: cached {:.1}s vs uncached {:.1}s",
            op.name(),
            with.makespan,
            without.makespan
        );
        assert!(with.average_overlap() > 0.3);
        assert_eq!(without.average_overlap(), 0.0);
    }
}

#[test]
fn overlap_grows_with_ds_memory_at_volume_scale() {
    // Volume outputs are 64 KB, so the interesting DS range is ~0.5–16 MB.
    let tiny = run(
        Strategy::Cnbf,
        VolOp::Mip,
        5,
        SubmissionMode::Interactive,
        42,
    );
    let ample = run(
        Strategy::Cnbf,
        VolOp::Mip,
        160,
        SubmissionMode::Interactive,
        42,
    );
    assert!(
        ample.average_overlap() > tiny.average_overlap(),
        "ample {:.3} vs tiny {:.3}",
        ample.average_overlap(),
        tiny.average_overlap()
    );
}

#[test]
fn reuse_aware_strategies_beat_fifo_on_volume_batches() {
    let fifo = run(
        Strategy::Fifo,
        VolOp::AvgProj,
        20,
        SubmissionMode::Batch,
        42,
    );
    let cnbf = run(
        Strategy::Cnbf,
        VolOp::AvgProj,
        20,
        SubmissionMode::Batch,
        42,
    );
    let sjf = run(Strategy::Sjf, VolOp::AvgProj, 20, SubmissionMode::Batch, 42);
    // CNBF or SJF must beat FIFO on mean response in the contended batch.
    let fifo_resp = fifo.trimmed_mean_response();
    assert!(
        cnbf.trimmed_mean_response() < fifo_resp || sjf.trimmed_mean_response() < fifo_resp,
        "fifo {:.2}, cnbf {:.2}, sjf {:.2}",
        fifo_resp,
        cnbf.trimmed_mean_response(),
        sjf.trimmed_mean_response()
    );
}

#[test]
fn depth_range_isolation_limits_reuse() {
    // The volume app's defining semantics: identical footprints over
    // *different* depth ranges share nothing. Two explicit workloads over
    // the same footprints — one with a common depth slab, one with a
    // distinct slab per query — must differ exactly in reuse.
    use vmqs_volume::VolumeDataset;
    let vol = VolumeDataset::large(DatasetId(10));
    let footprints: Vec<Rect> = (0..8)
        .map(|i| Rect::new((i % 4) * 128, (i / 4) * 128, 512, 512))
        .collect();
    let same_depth: Vec<VolQuery> = footprints
        .iter()
        .map(|&fp| VolQuery::new(vol, fp, 0, 128, 2, VolOp::Mip))
        .collect();
    let distinct_depth: Vec<VolQuery> = footprints
        .iter()
        .enumerate()
        .map(|(i, &fp)| {
            let z0 = (i as u32) * 100;
            VolQuery::new(vol, fp, z0, z0 + 128, 2, VolOp::Mip)
        })
        .collect();
    let cfg = SimConfig::paper_baseline().with_mode(SubmissionMode::Batch);
    let cost = VolCostModel::calibrated(&cfg.disk);
    let run_batch = |queries: Vec<VolQuery>| {
        run_volume_sim(
            cfg,
            cost,
            vec![ClientStream {
                client: ClientId(0),
                queries,
            }],
        )
    };
    let shared = run_batch(same_depth);
    let isolated = run_batch(distinct_depth);
    assert!(
        shared.average_overlap() > 0.3,
        "overlapping footprints at one depth must reuse: {:.3}",
        shared.average_overlap()
    );
    assert_eq!(
        isolated.average_overlap(),
        0.0,
        "distinct depth ranges must never reuse"
    );
    assert!(shared.makespan < isolated.makespan);
}

#[test]
fn volume_runs_deterministic() {
    let a = run(
        Strategy::closest_first_default(),
        VolOp::Mip,
        40,
        SubmissionMode::Batch,
        7,
    );
    let b = run(
        Strategy::closest_first_default(),
        VolOp::Mip,
        40,
        SubmissionMode::Batch,
        7,
    );
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(b.records.iter()) {
        assert_eq!(x.finish, y.finish);
    }
}

#[test]
fn mixed_strategies_all_complete_volume_workload() {
    for strategy in Strategy::paper_set() {
        let r = run(strategy, VolOp::Mip, 40, SubmissionMode::Interactive, 3);
        assert_eq!(r.records.len(), 128, "strategy {strategy}");
        for rec in &r.records {
            assert!(rec.finish >= rec.start && rec.start >= rec.arrival);
            assert!((0.0..=1.0).contains(&rec.covered_fraction));
        }
    }
}
