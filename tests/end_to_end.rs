//! End-to-end integration tests spanning every crate: real threaded
//! execution against synthetic and file-backed storage, verified
//! pixel-for-pixel against the ground-truth reference renderer, under
//! every ranking strategy.

use std::sync::Arc;
use vmqs::prelude::*;
use vmqs_microscope::kernels::reference_render;
use vmqs_server::AnswerPath;
use vmqs_workload::{generate, run_server_batch, run_server_interactive, WorkloadConfig};

fn small_slide() -> SlideDataset {
    SlideDataset::new(DatasetId(0), 2000, 2000)
}

/// Subsample reuse is pixel-exact; averaging reuse re-quantizes (integer
/// division at each projection level), so averaged results may differ from
/// a direct render by a few LSB per channel.
fn assert_matches_reference(got: &[u8], q: &VmQuery, ctx: &str) {
    let want = reference_render(q).data;
    assert_eq!(got.len(), want.len(), "{ctx}: size mismatch");
    match q.op {
        VmOp::Subsample => assert_eq!(got, &want[..], "{ctx}"),
        VmOp::Average => {
            for (i, (&g, &w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (g as i32 - w as i32).abs() <= 4,
                    "{ctx}: byte {i}: {g} vs {w}"
                );
            }
        }
    }
}

#[test]
fn every_strategy_produces_correct_images() {
    let slide = small_slide();
    let queries: Vec<VmQuery> = vec![
        VmQuery::new(slide, Rect::new(0, 0, 512, 512), 1, VmOp::Subsample),
        VmQuery::new(slide, Rect::new(256, 256, 512, 512), 2, VmOp::Subsample),
        VmQuery::new(slide, Rect::new(0, 0, 512, 512), 4, VmOp::Subsample),
        VmQuery::new(slide, Rect::new(128, 0, 512, 512), 2, VmOp::Average),
        VmQuery::new(slide, Rect::new(0, 0, 1024, 1024), 8, VmOp::Average),
    ];
    for strategy in Strategy::paper_set() {
        let server = QueryServer::new(
            ServerConfig::small()
                .with_strategy(strategy)
                .with_threads(2),
            Arc::new(SyntheticSource::new()),
        );
        let handles: Vec<_> = queries.iter().map(|q| server.submit(*q)).collect();
        for (h, q) in handles.into_iter().zip(&queries) {
            let res = h.wait().unwrap();
            assert_matches_reference(&res.image, q, &format!("strategy {strategy} query {q:?}"));
        }
        server.shutdown();
    }
}

#[test]
fn reuse_paths_are_pixel_identical_to_recomputation() {
    // Chain: full compute -> exact hit -> projection at 2x -> projection
    // at 4x from either source; every answer must equal the reference.
    let slide = small_slide();
    let server = QueryServer::new(
        ServerConfig::small().with_threads(1),
        Arc::new(SyntheticSource::new()),
    );
    let base = VmQuery::new(slide, Rect::new(0, 0, 1024, 1024), 1, VmOp::Subsample);
    let chain = [
        base,
        base,
        VmQuery::new(slide, Rect::new(0, 0, 1024, 1024), 2, VmOp::Subsample),
        VmQuery::new(slide, Rect::new(512, 512, 1024, 1024), 4, VmOp::Subsample),
    ];
    let mut paths = Vec::new();
    for q in &chain {
        let res = server.submit(*q).wait().unwrap();
        assert_eq!(*res.image, reference_render(q).data, "query {q:?}");
        paths.push(res.record.path);
    }
    assert_eq!(paths[0], AnswerPath::FullCompute);
    assert_eq!(paths[1], AnswerPath::ExactHit);
    assert_eq!(paths[2], AnswerPath::PartialReuse);
    server.shutdown();
}

#[test]
fn file_backed_dataset_round_trips() {
    // Materialize a synthetic slide to real files, serve it through the
    // file source, and check results match the in-memory source.
    let slide = SlideDataset::new(DatasetId(3), 800, 600);
    let dir = std::env::temp_dir().join(format!("vmqs_e2e_{}", std::process::id()));
    let fs = FileSource::new(&dir);
    fs.materialize_synthetic(slide.id, slide.chunk_count(), vmqs_microscope::PAGE_SIZE)
        .unwrap();

    let server = QueryServer::new(ServerConfig::small(), Arc::new(fs));
    let q = VmQuery::new(slide, Rect::new(100, 100, 400, 400), 2, VmOp::Average);
    let res = server.submit(q).wait().unwrap();
    assert_eq!(*res.image, reference_render(&q).data);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_file_surfaces_as_query_error() {
    let slide = SlideDataset::new(DatasetId(9), 800, 600);
    let dir = std::env::temp_dir().join(format!("vmqs_missing_{}", std::process::id()));
    let server = QueryServer::new(ServerConfig::small(), Arc::new(FileSource::new(&dir)));
    let q = VmQuery::new(slide, Rect::new(0, 0, 100, 100), 1, VmOp::Subsample);
    let err = server.submit(q).wait().unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("No such file") || msg.contains("not found"),
        "{err}"
    );
    assert!(
        !err.is_timeout() && !err.is_retryable(),
        "a missing file is a permanent error, got {err}"
    );
    // The server must stay usable after a failed query.
    let slide_ok = SlideDataset::new(DatasetId(9), 800, 600);
    let _ = slide_ok;
    server.shutdown();
}

#[test]
fn interactive_workload_end_to_end_with_reuse() {
    let streams = generate(&WorkloadConfig::small(VmOp::Subsample, 21));
    let total: usize = streams.iter().map(|s| s.queries.len()).sum();
    let server = QueryServer::new(
        ServerConfig::small()
            .with_strategy(Strategy::Cnbf)
            .with_threads(4)
            .with_ds_budget(32 << 20),
        Arc::new(SyntheticSource::new()),
    );
    let records = run_server_interactive(&server, streams);
    assert_eq!(records.len(), total);
    // Hotspot-clustered browsing must produce some reuse.
    let reused = records.iter().filter(|r| r.covered_fraction > 0.0).count();
    assert!(reused > 0, "no reuse across {total} clustered queries");
    server.shutdown();
}

#[test]
fn batch_workload_all_strategies_complete() {
    let streams = generate(&WorkloadConfig::small(VmOp::Average, 33));
    let queries: Vec<VmQuery> = streams.iter().flat_map(|s| s.queries.clone()).collect();
    for strategy in Strategy::paper_set() {
        let server = QueryServer::new(
            ServerConfig::small()
                .with_strategy(strategy)
                .with_threads(2),
            Arc::new(SyntheticSource::new()),
        );
        let records = run_server_batch(&server, queries.clone());
        assert_eq!(records.len(), queries.len(), "strategy {strategy}");
        server.shutdown();
    }
}

#[test]
fn graph_stats_reflect_served_workload() {
    let server = QueryServer::new(
        ServerConfig::small().with_threads(2),
        Arc::new(SyntheticSource::new()),
    );
    let slide = small_slide();
    let q = VmQuery::new(slide, Rect::new(0, 0, 256, 256), 1, VmOp::Subsample);
    for _ in 0..5 {
        server.submit(q).wait().unwrap();
    }
    let gs = server.graph_stats();
    assert_eq!(gs.inserted, 5);
    assert_eq!(gs.dequeued, 5);
    assert!(gs.edges_created > 0, "identical queries must be linked");
    server.shutdown();
}

#[test]
fn throttled_source_slows_but_stays_correct() {
    let slide = small_slide();
    let source = vmqs_storage::ThrottledSource::new(
        SyntheticSource::new(),
        DiskModel::new(1e-4, 100.0 * 1024.0 * 1024.0),
        1.0,
    );
    let server = QueryServer::new(ServerConfig::small(), Arc::new(source));
    let q = VmQuery::new(slide, Rect::new(0, 0, 512, 512), 2, VmOp::Subsample);
    let res = server.submit(q).wait().unwrap();
    assert_eq!(*res.image, reference_render(&q).data);
    // 16 chunks * 0.1 ms seek minimum.
    assert!(res.record.exec_time.as_secs_f64() > 1e-3);
    server.shutdown();
}
