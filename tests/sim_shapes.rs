//! Paper-shape regression tests: the qualitative findings of the paper's
//! evaluation (§5) must hold in the simulated reproduction. These guard
//! the experiment harness against regressions that would silently change
//! the story the figures tell.
//!
//! Reduced workloads (fewer queries/seeds than the figure binaries) keep
//! the suite fast; the shapes are robust at this scale.

use vmqs::prelude::*;
use vmqs_sim::SimReport;
use vmqs_workload::{flatten_to_batch, generate};

fn paper_run(
    strategy: Strategy,
    op: VmOp,
    threads: usize,
    ds_mb: u64,
    mode: SubmissionMode,
    queries_per_client: usize,
) -> SimReport {
    let mut wcfg = WorkloadConfig::paper(op, 42);
    wcfg.queries_per_client = queries_per_client;
    let streams = generate(&wcfg);
    let streams = match mode {
        SubmissionMode::Interactive => streams,
        SubmissionMode::Batch => flatten_to_batch(&streams),
    };
    let cfg = SimConfig::paper_baseline()
        .with_strategy(strategy)
        .with_threads(threads)
        .with_ds_budget(ds_mb << 20)
        .with_mode(mode);
    run_sim(cfg, streams)
}

/// E1: caching intermediate results significantly improves performance
/// even for FIFO and SJF, which ignore cache state when scheduling.
#[test]
fn caching_improves_fifo_and_sjf() {
    for op in [VmOp::Subsample, VmOp::Average] {
        for strategy in [Strategy::Fifo, Strategy::Sjf] {
            let off = paper_run(strategy, op, 4, 0, SubmissionMode::Interactive, 8);
            let on = paper_run(strategy, op, 4, 128, SubmissionMode::Interactive, 8);
            let gain = (off.makespan - on.makespan) / off.makespan;
            assert!(
                gain > 0.15,
                "{strategy} {}: caching gain only {:.0}% (off {:.1}s on {:.1}s)",
                op.name(),
                100.0 * gain,
                off.makespan,
                on.makespan
            );
        }
    }
}

/// E1 corollary: the averaging implementation benefits more from caching
/// than the subsampling one (70% vs 35–40% in the paper) because reuse
/// saves CPU as well as I/O.
#[test]
fn averaging_gains_more_from_caching_than_subsampling() {
    let gain = |op| {
        let off = paper_run(Strategy::Fifo, op, 4, 0, SubmissionMode::Interactive, 8);
        let on = paper_run(Strategy::Fifo, op, 4, 128, SubmissionMode::Interactive, 8);
        (off.makespan - on.makespan) / off.makespan
    };
    assert!(gain(VmOp::Average) > gain(VmOp::Subsample));
}

/// Fig. 4: FIFO is discernibly worse than the reuse-aware strategies at
/// low concurrency.
#[test]
fn fifo_discernibly_worst_at_low_threads() {
    let fifo = paper_run(
        Strategy::Fifo,
        VmOp::Subsample,
        2,
        64,
        SubmissionMode::Interactive,
        8,
    );
    for strategy in [
        Strategy::Muf,
        Strategy::FarthestFirst,
        Strategy::closest_first_default(),
        Strategy::Cnbf,
        Strategy::Sjf,
    ] {
        let other = paper_run(
            strategy,
            VmOp::Subsample,
            2,
            64,
            SubmissionMode::Interactive,
            8,
        );
        assert!(
            other.trimmed_mean_response() < fifo.trimmed_mean_response(),
            "{strategy} ({:.2}s) should beat FIFO ({:.2}s)",
            other.trimmed_mean_response(),
            fifo.trimmed_mean_response()
        );
    }
}

/// Fig. 4: performance degrades past the optimal thread count as the I/O
/// subsystem saturates.
#[test]
fn response_time_degrades_past_optimal_threads() {
    let at = |threads| {
        paper_run(
            Strategy::Cnbf,
            VmOp::Subsample,
            threads,
            64,
            SubmissionMode::Interactive,
            16,
        )
        .trimmed_mean_response()
    };
    let best_low = at(2).min(at(4));
    let saturated = at(24);
    assert!(
        saturated > 1.2 * best_low,
        "24 threads ({saturated:.2}s) should be clearly worse than the 2–4 thread optimum ({best_low:.2}s)"
    );
}

/// Fig. 4: the averaging implementation scales better with threads than
/// the I/O-bound subsampling one.
#[test]
fn averaging_scales_better_than_subsampling() {
    let speedup = |op| {
        let t1 = paper_run(Strategy::Fifo, op, 1, 64, SubmissionMode::Interactive, 8).makespan;
        let t8 = paper_run(Strategy::Fifo, op, 8, 64, SubmissionMode::Interactive, 8).makespan;
        t1 / t8
    };
    assert!(speedup(VmOp::Average) > speedup(VmOp::Subsample));
}

/// Fig. 5: average overlap increases with Data Store memory.
#[test]
fn overlap_grows_with_ds_memory() {
    for strategy in [Strategy::Fifo, Strategy::Cnbf] {
        let small = paper_run(
            strategy,
            VmOp::Subsample,
            4,
            32,
            SubmissionMode::Interactive,
            16,
        );
        let large = paper_run(
            strategy,
            VmOp::Subsample,
            4,
            256,
            SubmissionMode::Interactive,
            16,
        );
        assert!(
            large.average_overlap() > small.average_overlap(),
            "{strategy}: overlap {:.3} @256MB should exceed {:.3} @32MB",
            large.average_overlap(),
            small.average_overlap()
        );
    }
}

/// Fig. 5: at small cache sizes, the locality strategies CF/CNBF achieve
/// higher overlap than FIFO and SJF.
#[test]
fn cf_cnbf_achieve_best_overlap_at_small_ds() {
    let ov =
        |s| paper_run(s, VmOp::Subsample, 4, 32, SubmissionMode::Interactive, 16).average_overlap();
    let cf = ov(Strategy::closest_first_default());
    let cnbf = ov(Strategy::Cnbf);
    let fifo = ov(Strategy::Fifo);
    let sjf = ov(Strategy::Sjf);
    assert!(
        cf > fifo && cf > sjf,
        "CF {cf:.3} vs FIFO {fifo:.3} / SJF {sjf:.3}"
    );
    assert!(
        cnbf > fifo && cnbf > sjf,
        "CNBF {cnbf:.3} vs FIFO {fifo:.3} / SJF {sjf:.3}"
    );
}

/// Fig. 6: response times fall as the Data Store grows.
#[test]
fn response_time_falls_with_ds_memory() {
    for strategy in [Strategy::Fifo, Strategy::Sjf, Strategy::Cnbf] {
        let small = paper_run(
            strategy,
            VmOp::Average,
            4,
            32,
            SubmissionMode::Interactive,
            16,
        );
        let large = paper_run(
            strategy,
            VmOp::Average,
            4,
            256,
            SubmissionMode::Interactive,
            16,
        );
        assert!(
            large.trimmed_mean_response() < small.trimmed_mean_response(),
            "{strategy}: {:.2}s @256MB should beat {:.2}s @32MB",
            large.trimmed_mean_response(),
            small.trimmed_mean_response()
        );
    }
}

/// Fig. 7: for batch workloads with scarce cache, the locality strategies
/// CF/CNBF beat FIFO and SJF on total execution time.
#[test]
fn cf_cnbf_win_batches_at_small_ds() {
    let time = |s| paper_run(s, VmOp::Subsample, 4, 32, SubmissionMode::Batch, 16).makespan;
    let cf = time(Strategy::closest_first_default());
    let cnbf = time(Strategy::Cnbf);
    let fifo = time(Strategy::Fifo);
    let sjf = time(Strategy::Sjf);
    assert!(
        cf < fifo && cnbf < fifo,
        "CF {cf:.1}/CNBF {cnbf:.1} vs FIFO {fifo:.1}"
    );
    assert!(
        cf < sjf && cnbf < sjf,
        "CF {cf:.1}/CNBF {cnbf:.1} vs SJF {sjf:.1}"
    );
}

/// §6 extension: the hybrid strategy is competitive with its parents on
/// batches (never catastrophically worse than either).
#[test]
fn hybrid_is_competitive() {
    let time = |s| paper_run(s, VmOp::Subsample, 4, 64, SubmissionMode::Batch, 16).makespan;
    let hybrid = time(Strategy::hybrid_default());
    let parent_best = time(Strategy::Cnbf).min(time(Strategy::Sjf));
    assert!(
        hybrid < 1.5 * parent_best,
        "hybrid {hybrid:.1}s vs best parent {parent_best:.1}s"
    );
}

/// The simulation is bit-for-bit deterministic across runs — the property
/// every experiment in EXPERIMENTS.md relies on.
#[test]
fn full_paper_run_is_deterministic() {
    let a = paper_run(
        Strategy::Cnbf,
        VmOp::Average,
        4,
        64,
        SubmissionMode::Interactive,
        8,
    );
    let b = paper_run(
        Strategy::Cnbf,
        VmOp::Average,
        4,
        64,
        SubmissionMode::Interactive,
        8,
    );
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(b.records.iter()) {
        assert_eq!(x.finish, y.finish);
    }
}
