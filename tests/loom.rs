//! Loom models for the concurrency-critical primitives behind
//! `vmqs_core::sync`.
//!
//! Compiled and run only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test --release --test loom
//! ```
//!
//! Each model exhaustively explores thread interleavings (including
//! coherence-admissible stale reads of relaxed atomics) within the
//! preemption bound and fails on any schedule that violates its
//! assertion. The orderings these models pin down are documented at the
//! primitive (`EntryState`, `Histogram::observe`, the Page Space claim
//! protocol); weakening any of them makes the matching model fail — see
//! `docs/loom-counterexamples.md` for the recorded counterexamples.
#![cfg(loom)]

use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;
use vmqs_core::{DatasetId, SharedTokenBucket};
use vmqs_datastore::{EntryState, Phase};
use vmqs_obs::{Counter, Histogram};
use vmqs_pagespace::{PageCacheCore, PageData, PageDisposition, PageKey};

fn key() -> PageKey {
    PageKey::new(DatasetId(1), 0)
}

/// Publish protocol: a reader that observes FULL (Acquire) must also
/// observe the payload bytes the producer wrote before the Release
/// publish. Weakening `EntryState::publish` to `Relaxed` lets the
/// reader see FULL with a stale (zero) payload.
#[test]
fn ds_entry_publish() {
    loom::model(|| {
        let st = Arc::new(EntryState::new());
        let payload = Arc::new(AtomicU64::new(0));

        let producer = {
            let (st, payload) = (st.clone(), payload.clone());
            thread::spawn(move || {
                payload.store(42, Ordering::Relaxed);
                assert!(st.publish());
            })
        };
        let reader = {
            let (st, payload) = (st.clone(), payload.clone());
            thread::spawn(move || {
                if st.is_visible() {
                    assert_eq!(
                        payload.load(Ordering::Relaxed),
                        42,
                        "observed FULL but not the committed payload"
                    );
                }
            })
        };
        producer.join().unwrap();
        reader.join().unwrap();
        assert!(st.is_visible());
    });
}

/// Store-buffering protocol between `pin` and `try_swap_out`: an entry
/// must never be reclaimed while a reader holds a pin, and a pinned
/// reader must see the committed payload. The ghost `in_use` counter
/// (SeqCst RMWs only, so it is never stale) records the true overlap;
/// weakening either SeqCst cross-check to `Relaxed` lets the evictor
/// reclaim under an active reader.
#[test]
fn ds_entry_no_read_after_swapout() {
    loom::model(|| {
        let st = Arc::new(EntryState::new());
        let payload = Arc::new(AtomicU64::new(0));
        let in_use = Arc::new(AtomicU64::new(0));

        let producer = {
            let (st, payload) = (st.clone(), payload.clone());
            thread::spawn(move || {
                payload.store(42, Ordering::Relaxed);
                assert!(st.publish());
            })
        };
        let evictor = {
            let (st, in_use) = (st.clone(), in_use.clone());
            thread::spawn(move || {
                if st.try_swap_out() {
                    // We own the payload now: no reader may be pinned.
                    assert_eq!(
                        in_use.fetch_add(0, Ordering::SeqCst),
                        0,
                        "entry reclaimed while a reader held a pin"
                    );
                }
            })
        };
        let reader = {
            let (st, payload, in_use) = (st.clone(), payload.clone(), in_use.clone());
            thread::spawn(move || {
                if st.pin() {
                    in_use.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(payload.load(Ordering::Relaxed), 42);
                    in_use.fetch_sub(1, Ordering::SeqCst);
                    st.unpin();
                }
            })
        };
        producer.join().unwrap();
        evictor.join().unwrap();
        reader.join().unwrap();
    });
}

/// Duplicate elimination: however three requesters for the same page
/// interleave, exactly one receives `MustFetch`; everyone else hits the
/// cache or waits on the in-flight claim.
#[test]
fn claim_dedup_single_fetch() {
    loom::model(|| {
        let core = Arc::new(Mutex::new(PageCacheCore::new(4096, 1024)));
        let fetches = Arc::new(AtomicUsize::new(0));

        let worker = |core: Arc<Mutex<PageCacheCore>>, fetches: Arc<AtomicUsize>| {
            move || {
                let disp = {
                    let mut g = core.lock();
                    g.plan_read(&[key()]).pages[0].1.clone()
                };
                if disp == PageDisposition::MustFetch {
                    fetches.fetch_add(1, Ordering::SeqCst);
                    core.lock().complete_fetch(key(), PageData::Virtual);
                }
            }
        };
        let t1 = thread::spawn(worker(core.clone(), fetches.clone()));
        let t2 = thread::spawn(worker(core.clone(), fetches.clone()));
        worker(core.clone(), fetches.clone())();
        t1.join().unwrap();
        t2.join().unwrap();

        assert_eq!(
            fetches.load(Ordering::SeqCst),
            1,
            "duplicate elimination must admit exactly one fetcher"
        );
        assert!(core.lock().is_resident(key()));
    });
}

/// Claim hand-off: the first fetcher fails, releases its claim
/// (`abort_fetch`) and must notify waiters before exiting; the waiter
/// then takes the claim over and completes the fetch. Dropping the
/// notify after the abort strands the waiter forever — the model
/// reports it as a deadlock (lost wakeup).
#[test]
fn claim_release_wakes_waiter() {
    loom::model(|| {
        let core = Arc::new(Mutex::new(PageCacheCore::new(4096, 1024)));
        let cv = Arc::new(Condvar::new());
        let fail_once = Arc::new(AtomicBool::new(true));

        let reader =
            |core: Arc<Mutex<PageCacheCore>>, cv: Arc<Condvar>, fail_once: Arc<AtomicBool>| {
                move || {
                    let mut guard = core.lock();
                    loop {
                        let disp = guard.plan_read(&[key()]).pages[0].1.clone();
                        match disp {
                            PageDisposition::Hit => break,
                            PageDisposition::InFlightElsewhere => cv.wait(&mut guard),
                            PageDisposition::MustFetch => {
                                // Simulated I/O happens outside the lock.
                                drop(guard);
                                let failed = fail_once.swap(false, Ordering::SeqCst);
                                guard = core.lock();
                                if failed {
                                    // Release the claim and give up; waiters
                                    // must be woken so one can take over.
                                    guard.abort_fetch(key());
                                    cv.notify_all();
                                    break;
                                }
                                guard.complete_fetch(key(), PageData::Virtual);
                                cv.notify_all();
                                break;
                            }
                        }
                    }
                }
            };
        let t1 = thread::spawn(reader(core.clone(), cv.clone(), fail_once.clone()));
        let t2 = thread::spawn(reader(core.clone(), cv.clone(), fail_once.clone()));
        t1.join().unwrap();
        t2.join().unwrap();

        let g = core.lock();
        // The claim was released exactly once and re-taken exactly once:
        // the survivor's fetch is resident and no stale claim remains.
        assert!(
            g.is_resident(key()),
            "second reader must take over the claim"
        );
        assert!(!g.is_in_flight(key()), "claim leaked after abort/complete");
    });
}

/// Snapshot consistency: every sample a snapshot counts is present in
/// its buckets (`sum(buckets) >= count`), the invariant `quantile`
/// needs to never report +Inf spuriously. Holds because `observe`
/// increments the bucket before the `Release` count increment and
/// `snapshot` reads the count (Acquire) before the buckets.
#[test]
fn histogram_snapshot() {
    loom::model(|| {
        let h = Arc::new(Histogram::new());

        let t1 = {
            let h = h.clone();
            thread::spawn(move || h.observe(0.5))
        };
        let t2 = {
            let h = h.clone();
            thread::spawn(move || h.observe(0.5))
        };

        // Concurrent snapshot: may see 0, 1 or 2 samples, but never a
        // count ahead of the buckets.
        let s = h.snapshot();
        let bucket_sum: u64 = s.buckets.iter().sum();
        assert!(
            bucket_sum >= s.count,
            "snapshot count {} ahead of bucket sum {}",
            s.count,
            bucket_sum
        );

        t1.join().unwrap();
        t2.join().unwrap();
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets.iter().sum::<u64>(), 2);
    });
}

/// Counter reads are coherent: per-thread reads of one counter never go
/// backwards, never exceed the true total, and joins make all
/// increments visible.
#[test]
fn counter_snapshot_bound() {
    loom::model(|| {
        let c = Arc::new(Counter::default());

        let t1 = {
            let c = c.clone();
            thread::spawn(move || c.inc())
        };
        let t2 = {
            let c = c.clone();
            thread::spawn(move || c.inc())
        };

        let a = c.get();
        let b = c.get();
        assert!(b >= a, "counter read went backwards: {a} then {b}");
        assert!(b <= 2, "counter exceeds true total");

        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(c.get(), 2, "join must make all increments visible");
    });
}

/// Admission cap: three concurrent clients racing a burst-2 token
/// bucket admit exactly two, in every interleaving. Holds because
/// refill-and-take is a single critical section in
/// `SharedTokenBucket::try_take`.
#[test]
fn token_bucket_admission_cap() {
    loom::model(|| {
        let bucket = Arc::new(SharedTokenBucket::new(2.0));
        let admitted = Arc::new(AtomicUsize::new(0));

        let client = |bucket: Arc<SharedTokenBucket>, admitted: Arc<AtomicUsize>| {
            move || {
                if bucket.try_take(0.0) {
                    admitted.fetch_add(1, Ordering::SeqCst);
                }
            }
        };
        let t1 = thread::spawn(client(bucket.clone(), admitted.clone()));
        let t2 = thread::spawn(client(bucket.clone(), admitted.clone()));
        client(bucket.clone(), admitted.clone())();
        t1.join().unwrap();
        t2.join().unwrap();

        assert_eq!(
            admitted.load(Ordering::SeqCst),
            2,
            "burst-2 bucket must admit exactly 2 of 3 racing clients"
        );
    });
}

/// Striped pins (DESIGN.md §12): readers pinning *different* stripes
/// are all visible to the evictor, because `try_swap_out` marks
/// SWAPPED_OUT first and then scans every stripe with the same SeqCst
/// store-buffering cross-check the single-counter protocol used. An
/// entry is never reclaimed while any stripe holds a pin, and a reader
/// whose `pin_at` returned true always sees the committed payload.
/// Scanning only stripe 0 — or weakening either SeqCst — reclaims
/// under the stripe-5 reader in some interleaving.
#[test]
fn ds_entry_striped_pins_block_swapout() {
    loom::model(|| {
        let st = Arc::new(EntryState::new());
        let payload = Arc::new(AtomicU64::new(0));
        let in_use = Arc::new(AtomicU64::new(0));
        // The entry is committed before the race: the model is about
        // pins vs eviction, not publish (covered by `ds_entry_publish`).
        payload.store(42, Ordering::Relaxed);
        assert!(st.publish());

        let reader = |stripe: usize| {
            let (st, payload, in_use) = (st.clone(), payload.clone(), in_use.clone());
            thread::spawn(move || {
                if st.pin_at(stripe) {
                    in_use.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(
                        payload.load(Ordering::Relaxed),
                        42,
                        "pinned reader must see the committed payload"
                    );
                    in_use.fetch_sub(1, Ordering::SeqCst);
                    st.unpin_at(stripe);
                }
            })
        };
        let t1 = reader(1);
        let t2 = reader(5);
        let evictor = {
            let (st, in_use) = (st.clone(), in_use.clone());
            thread::spawn(move || {
                if st.try_swap_out() {
                    assert_eq!(
                        in_use.fetch_add(0, Ordering::SeqCst),
                        0,
                        "entry reclaimed while a striped reader held a pin"
                    );
                }
            })
        };
        t1.join().unwrap();
        t2.join().unwrap();
        evictor.join().unwrap();
    });
}

/// Graft handshake (DESIGN.md §13), the lost-wakeup half: the
/// subscriber *increments the subscriber count, then checks the phase*;
/// the producer *publishes, then checks the subscriber count* — a
/// store-buffering pair with SeqCst on all four accesses. In every
/// interleaving at least one side observes the other: either the
/// subscriber sees FULL (and reads the committed payload immediately),
/// or the producer sees a nonzero subscriber count (and wakes the
/// waiter). Weakening the subscriber's phase cross-check to `Relaxed`
/// admits the schedule where the consumer commits to waiting while the
/// producer decides nobody is listening — a graft that sleeps forever.
#[test]
fn ds_entry_graft_no_lost_wakeup() {
    loom::model(|| {
        let st = Arc::new(EntryState::new());
        let payload = Arc::new(AtomicU64::new(0));
        // The producer opened the in-flight entry to grafts before the race.
        assert!(st.make_subscribable());

        let producer = {
            let (st, payload) = (st.clone(), payload.clone());
            thread::spawn(move || {
                payload.store(42, Ordering::Relaxed);
                assert!(st.publish());
                // The engine broadcasts the shard condvar only when a
                // subscriber is attached; returns whether it would wake.
                st.subscribers() > 0
            })
        };
        let consumer = {
            let (st, payload) = (st.clone(), payload.clone());
            thread::spawn(move || match st.subscribe() {
                // Saw the in-flight phase: commits to waiting for the
                // producer's wake. The subscription stays held.
                Phase::Subscribable => true,
                ph => {
                    // The publish already landed: the payload must be
                    // readable right now, no wait needed.
                    assert_eq!(ph, Phase::Full, "entry left the graft protocol");
                    assert_eq!(
                        payload.load(Ordering::Relaxed),
                        42,
                        "observed FULL but not the committed payload"
                    );
                    st.unsubscribe();
                    false
                }
            })
        };
        let producer_would_wake = producer.join().unwrap();
        let consumer_waits = consumer.join().unwrap();
        assert!(
            !consumer_waits || producer_would_wake,
            "lost wakeup: consumer committed to waiting but the producer saw zero subscribers"
        );
    });
}

/// Graft handshake (DESIGN.md §13), the lifetime half: a held
/// subscription blocks `try_swap_out` exactly like a read pin, so the
/// published payload cannot be reclaimed in the window between the
/// producer's publish and the subscriber's read. The ghost `in_use`
/// counter spans the subscriber's whole read section; dropping the
/// subscriber-count check from `try_swap_out` lets the evictor reclaim
/// the entry while the grafting consumer is still reading it.
#[test]
fn ds_entry_graft_no_read_after_swapout() {
    loom::model(|| {
        let st = Arc::new(EntryState::new());
        let payload = Arc::new(AtomicU64::new(0));
        let in_use = Arc::new(AtomicU64::new(0));
        // The consumer attached while the producer was still in flight —
        // the subscription is held across the whole race below.
        assert!(st.make_subscribable());
        assert_eq!(st.subscribe(), Phase::Subscribable);

        let producer = {
            let (st, payload) = (st.clone(), payload.clone());
            thread::spawn(move || {
                payload.store(42, Ordering::Relaxed);
                assert!(st.publish());
            })
        };
        let evictor = {
            let (st, in_use) = (st.clone(), in_use.clone());
            thread::spawn(move || {
                if st.try_swap_out() {
                    // We own the payload now: no subscriber may be reading.
                    assert_eq!(
                        in_use.fetch_add(0, Ordering::SeqCst),
                        0,
                        "entry reclaimed while a grafting consumer was reading"
                    );
                }
            })
        };
        // The subscribed consumer (this thread) reads as soon as the
        // publish lands; the subscription alone must hold the entry.
        in_use.fetch_add(1, Ordering::SeqCst);
        if st.is_visible() {
            assert_eq!(
                payload.load(Ordering::Relaxed),
                42,
                "grafting consumer read a stale payload"
            );
        }
        in_use.fetch_sub(1, Ordering::SeqCst);
        st.unsubscribe();

        producer.join().unwrap();
        evictor.join().unwrap();
    });
}

/// Spill protocol (DESIGN.md §14), the pin half: `try_spill` runs the
/// same mark-then-cross-check store-buffering protocol as
/// `try_swap_out` — RESTORABLE first, then every pin stripe and the
/// subscriber count, all SeqCst — so a successful spill proves no
/// reader holds the payload it is about to move to disk. The ghost
/// `in_use` counter records the true overlap; weakening either side's
/// SeqCst to `Relaxed` lets the spiller detach the payload under an
/// active reader (counterexample #9).
#[test]
fn ds_entry_pin_blocks_spill() {
    loom::model(|| {
        let st = Arc::new(EntryState::new());
        let payload = Arc::new(AtomicU64::new(0));
        let in_use = Arc::new(AtomicU64::new(0));
        // Committed before the race: the model is about pins vs spill.
        payload.store(42, Ordering::Relaxed);
        assert!(st.publish());

        let reader = {
            let (st, payload, in_use) = (st.clone(), payload.clone(), in_use.clone());
            thread::spawn(move || {
                if st.pin_at(3) {
                    in_use.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(
                        payload.load(Ordering::Relaxed),
                        42,
                        "pinned reader must see the in-memory payload"
                    );
                    in_use.fetch_sub(1, Ordering::SeqCst);
                    st.unpin_at(3);
                }
            })
        };
        let spiller = {
            let (st, in_use) = (st.clone(), in_use.clone());
            thread::spawn(move || {
                if st.try_spill() {
                    // We own the payload now and may move it to disk: no
                    // reader may be pinned.
                    assert_eq!(
                        in_use.fetch_add(0, Ordering::SeqCst),
                        0,
                        "entry spilled while a reader held a pin"
                    );
                }
            })
        };
        reader.join().unwrap();
        spiller.join().unwrap();
    });
}

/// Spill protocol (DESIGN.md §14), the lifetime half: once `try_spill`
/// succeeds the in-memory payload is detached, and *no* pin may succeed
/// until a `restore` republishes the bytes — a reader either pinned
/// before the spill (and the spill backed out) or observes RESTORABLE
/// in `pin_at` and backs off. The model detaches the payload after a
/// successful spill; any schedule in which a pin still reads it trips
/// the assertion (counterexample #10).
#[test]
fn ds_entry_no_read_after_spill_without_restore() {
    loom::model(|| {
        let st = Arc::new(EntryState::new());
        let payload = Arc::new(AtomicU64::new(0));
        payload.store(42, Ordering::Relaxed);
        assert!(st.publish());

        let spiller = {
            let (st, payload) = (st.clone(), payload.clone());
            thread::spawn(move || {
                if st.try_spill() {
                    // Exclusive ownership: move the bytes out (ghost
                    // detach — the store swaps the payload to Virtual).
                    payload.store(0, Ordering::Relaxed);
                }
            })
        };
        let reader = {
            let (st, payload) = (st.clone(), payload.clone());
            thread::spawn(move || {
                if st.pin() {
                    assert_eq!(
                        payload.load(Ordering::Relaxed),
                        42,
                        "read a detached payload: pin succeeded after spill without restore"
                    );
                    st.unpin();
                }
            })
        };
        spiller.join().unwrap();
        reader.join().unwrap();
    });
}

/// Restore protocol (DESIGN.md §14): RESTORABLE → FULL republishes with
/// a SeqCst CAS, so a flash crowd of restorers re-heating the same
/// entry resolves to exactly one winner, and a reader whose pin
/// observes FULL also observes the re-attached payload (the restorer
/// writes the bytes *before* the CAS). Weakening the CAS to `Relaxed`
/// lets a reader pin the entry before the re-attached payload is
/// visible (counterexample #11).
#[test]
fn ds_entry_restore_publishes_exactly_once() {
    loom::model(|| {
        let st = Arc::new(EntryState::new());
        let payload = Arc::new(AtomicU64::new(0));
        let winners = Arc::new(AtomicU64::new(0));
        // Spilled before the race: committed, demoted, payload detached.
        assert!(st.publish());
        assert!(st.try_spill());

        let restorer = || {
            let (st, payload, winners) = (st.clone(), payload.clone(), winners.clone());
            thread::spawn(move || {
                // Re-attach the bytes read back from tier 2, then CAS.
                payload.store(42, Ordering::Relaxed);
                if st.restore() {
                    winners.fetch_add(1, Ordering::SeqCst);
                }
            })
        };
        let r1 = restorer();
        let r2 = restorer();
        let reader = {
            let (st, payload) = (st.clone(), payload.clone());
            thread::spawn(move || {
                if st.pin() {
                    assert_eq!(
                        payload.load(Ordering::Relaxed),
                        42,
                        "pin observed FULL before the restored payload"
                    );
                    st.unpin();
                }
            })
        };
        r1.join().unwrap();
        r2.join().unwrap();
        reader.join().unwrap();
        assert_eq!(
            winners.load(Ordering::SeqCst),
            1,
            "exactly one restorer must win the republish"
        );
    });
}

/// The sharded engine's idle/wakeup protocol (DESIGN.md §12): the
/// submitter enqueues and increments `total_waiting` under the shard
/// lock, then reads `sleepers`; the worker increments `sleepers` under
/// the idle lock and re-checks `total_waiting` before waiting. The two
/// Dekker-style SeqCst pairs plus the idle-mutex bridge on every notify
/// guarantee the worker always receives the submitted query — dropping
/// the worker's re-check, the submitter's `sleepers` read, or the
/// bridge loses the wakeup, which the model reports as a deadlock.
#[test]
fn engine_idle_wakeup_no_lost_submit() {
    loom::model(|| {
        let shard = Arc::new(Mutex::new(Vec::<u64>::new()));
        let total_waiting = Arc::new(AtomicUsize::new(0));
        let sleepers = Arc::new(AtomicUsize::new(0));
        let idle = Arc::new(Mutex::new(()));
        let work_cv = Arc::new(Condvar::new());

        let submitter = {
            let (shard, total_waiting, sleepers, idle, work_cv) = (
                shard.clone(),
                total_waiting.clone(),
                sleepers.clone(),
                idle.clone(),
                work_cv.clone(),
            );
            thread::spawn(move || {
                // `Core::admit`: enqueue + counter under the shard lock...
                {
                    let mut s = shard.lock();
                    s.push(7);
                    total_waiting.fetch_add(1, Ordering::SeqCst);
                }
                // ...then `wake_one`, bridging through the idle mutex.
                if sleepers.load(Ordering::SeqCst) > 0 {
                    let _g = idle.lock();
                    work_cv.notify_one();
                }
            })
        };

        // `worker_loop` + `idle_sleep`, reduced to one shard.
        let got = loop {
            if total_waiting.load(Ordering::SeqCst) == 0 {
                let mut g = idle.lock();
                sleepers.fetch_add(1, Ordering::SeqCst);
                // The re-check under the idle lock is load-bearing: the
                // submitter's wake either sees our sleeper registration
                // or we see its counter increment.
                if total_waiting.load(Ordering::SeqCst) == 0 {
                    work_cv.wait(&mut g);
                }
                sleepers.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            let mut s = shard.lock();
            if let Some(v) = s.pop() {
                total_waiting.fetch_sub(1, Ordering::SeqCst);
                break v;
            }
        };
        assert_eq!(got, 7, "worker must receive the submitted query");
        submitter.join().unwrap();
    });
}

/// Worker-death back-out of a CLAIMED entry (DESIGN.md §15): a producer
/// that panics while holding a SUBSCRIBABLE reservation must (a) kill
/// the entry with `force_swap_out` *before* the graph transition that
/// ends the wait — so no subscriber, racing or late, can mistake the
/// corpse for in-flight or FULL — and (b) notify the shard condvar
/// after the producer leaves EXECUTING, so a subscriber blocked on that
/// state always re-checks its predicate. Dropping the notify strands
/// the subscriber forever (loom reports the lost wakeup as a deadlock);
/// dropping the `force_swap_out` leaves the aborted entry looking
/// SUBSCRIBABLE after the producer's terminal, which the model's
/// post-wake phase assertion catches (counterexample #12).
#[test]
fn worker_death_backout_wakes_subscriber() {
    loom::model(|| {
        let st = Arc::new(EntryState::new());
        // The producer opened its reservation to grafts before the race.
        assert!(st.make_subscribable());
        // The shard's view of the producer: EXECUTING until the back-out.
        let executing = Arc::new(Mutex::new(true));
        let done_cv = Arc::new(Condvar::new());

        let dying = {
            let (st, executing, done_cv) = (st.clone(), executing.clone(), done_cv.clone());
            thread::spawn(move || {
                // `DataStore::abort` (inner unwind guard): SWAPPED_OUT
                // before the entry is removed.
                st.force_swap_out();
                // `handle_worker_panic` under the shard lock: the query
                // leaves EXECUTING...
                *executing.lock() = false;
                // ...and `finish_one` notifies the shard's `done_cv`.
                done_cv.notify_all();
            })
        };

        // The grafting consumer (engine's graft wait loop): subscribe,
        // and while the producer is EXECUTING, wait for its terminal.
        match st.subscribe() {
            Phase::Subscribable => {
                let mut g = executing.lock();
                while *g {
                    done_cv.wait(&mut g);
                }
                drop(g);
                // The producer died: the entry must be visibly dead —
                // never FULL (nothing was committed) and never still
                // SUBSCRIBABLE (no one will ever commit it) — so the
                // consumer falls back to computing for itself.
                assert!(
                    !st.is_visible(),
                    "subscriber saw FULL on an aborted reservation"
                );
                assert_ne!(
                    st.phase(),
                    Phase::Subscribable,
                    "aborted reservation still looks in-flight"
                );
                st.unsubscribe();
            }
            ph => {
                // Subscribe raced the abort: the entry already left the
                // graft protocol and `subscribe` released the count.
                assert_ne!(ph, Phase::Full, "aborted entry can never be FULL");
            }
        }
        dying.join().unwrap();
    });
}

/// The engine's work-queue handshake (mutex + condvar, notify after
/// push): the consumer always receives the item. Removing the notify is
/// a lost wakeup, which the model reports as a deadlock.
#[test]
fn work_queue_no_lost_wakeup() {
    loom::model(|| {
        let q = Arc::new(Mutex::new(Vec::<u64>::new()));
        let cv = Arc::new(Condvar::new());

        let consumer = {
            let (q, cv) = (q.clone(), cv.clone());
            thread::spawn(move || {
                let mut g = q.lock();
                while g.is_empty() {
                    cv.wait(&mut g);
                }
                g.pop().unwrap()
            })
        };
        {
            let mut g = q.lock();
            g.push(7);
            cv.notify_one();
        }
        assert_eq!(consumer.join().unwrap(), 7);
    });
}
