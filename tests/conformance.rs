//! Scheduler-conformance golden tests (DESIGN.md §9).
//!
//! The discrete-event simulator and the real threaded server share the
//! scheduling graph, Data Store, and page-cache cores, and both emit the
//! same typed event schema. With a single worker (and the server's paused
//! start mirroring the simulator's batch-start gate) the two engines must
//! make *identical* scheduling decisions on the same seeded workload: the
//! same `Ranked` score sequence, bit-for-bit, and the same Data Store
//! reuse edges in the same order — for every paper strategy, plus the
//! ChunkBatch strategy with grafting enabled (whose `Grafted` edges are
//! also pinned; at one worker no producer can be EXECUTING at dequeue
//! time, so both engines must agree the edge set is empty). The six
//! paper strategies run grafting-off, so their goldens are untouched by
//! the graft layer.
//!
//! `CONFORMANCE_WORKERS=8` (used by the CI conformance job) reruns the
//! server side with that many workers; dispatch order is then racy, so
//! only the per-engine event-log invariants are asserted. On a golden
//! mismatch both traces are written to `target/conformance/` as JSON
//! before the panic, so CI can upload them as artifacts.

use std::collections::HashMap;
use std::sync::Arc;
use vmqs_core::{ClientId, DatasetId, OverloadConfig, QueryId, Rect, Strategy};
use vmqs_microscope::{SlideDataset, VmOp, VmQuery};
use vmqs_obs::timeline::{
    admission_sequence, grafted_edges, ranked_sequence, reuse_edges, timelines, Terminal,
};
use vmqs_obs::{events_to_json, EventKind, EventRecord};
use vmqs_server::{QueryServer, ServerConfig, ServerError};
use vmqs_sim::{run_sim, ClientStream, SimConfig, SubmissionMode};
use vmqs_storage::SyntheticSource;

const QUERIES: usize = 32;
/// Small enough that the workload's results force mid-run evictions, so
/// the conformance check covers swap-out bookkeeping too.
const DS_BUDGET: u64 = 512 << 10;
const PS_BUDGET: u64 = 4 << 20;
const INDEX_CELL: u32 = 512;

/// Deterministic seeded workload over two slides (the LCG scheme the
/// fault tests use): repeats force exact hits, 80px-aligned neighbours
/// force partial reuse, and both ops and several zooms appear.
fn workload() -> Vec<VmQuery> {
    let slides = [
        SlideDataset::new(DatasetId(0), 800, 800),
        SlideDataset::new(DatasetId(1), 600, 600),
    ];
    (0..QUERIES)
        .map(|i| {
            let r = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let slide = slides[(r >> 8) as usize % slides.len()];
            let op = if (r >> 5) & 1 == 0 {
                VmOp::Subsample
            } else {
                VmOp::Average
            };
            let zoom = match op {
                VmOp::Subsample => 1u32 << ((r >> 16) % 3),
                VmOp::Average => 2,
            };
            let side = 120 + ((r >> 24) % 2) as u32 * 40;
            let max = slide.width.min(slide.height) - side;
            let x = ((r >> 32) as u32 % max) / 80 * 80;
            let y = ((r >> 44) as u32 % max) / 80 * 80;
            VmQuery::new(slide, Rect::new(x, y, side, side), zoom, op)
        })
        .collect()
}

/// Runs the workload through the threaded server: all queries submitted
/// while the workers sleep, then the pool is resumed — so the whole batch
/// is ranked against the full graph, exactly like the simulator's gated
/// batch start.
fn run_server(strategy: Strategy, workers: usize, graft: bool) -> Vec<EventRecord> {
    let cfg = ServerConfig::small()
        .with_strategy(strategy)
        .with_threads(workers)
        .with_ds_budget(DS_BUDGET)
        .with_ps_budget(PS_BUDGET)
        .with_index_cell(INDEX_CELL)
        .with_observability(true)
        .with_start_paused(true)
        .with_graft(graft);
    let server = QueryServer::new(cfg, Arc::new(SyntheticSource::new()));
    let handles = server.submit_batch(workload());
    server.resume_workers();
    for h in handles {
        h.wait().expect("clean source: every query completes");
    }
    server.drain();
    let events = server.events();
    server.shutdown();
    events
}

/// Runs the same workload through the simulator as one batch.
fn run_simulator(strategy: Strategy, graft: bool) -> Vec<EventRecord> {
    let cfg = SimConfig::paper_baseline()
        .with_strategy(strategy)
        .with_threads(1)
        .with_ds_budget(DS_BUDGET)
        .with_ps_budget(PS_BUDGET)
        .with_index_cell(INDEX_CELL)
        .with_mode(SubmissionMode::Batch)
        .with_observe(true)
        .with_batch_gate(true)
        .with_graft(graft);
    let streams = vec![ClientStream {
        client: ClientId(0),
        queries: workload(),
    }];
    run_sim(cfg, streams).events
}

/// Event-log invariants that hold for any engine, any worker count:
/// every query Submitted exactly once, exactly one terminal event and one
/// `Ranked` per query, per-query timestamps nondecreasing in sequence
/// order, and every `LookupHit` overlap within `[0, 1]`.
fn assert_event_invariants(events: &[EventRecord], ctx: &str) {
    let mut submitted: HashMap<QueryId, u64> = HashMap::new();
    let mut terminals: HashMap<QueryId, u64> = HashMap::new();
    let mut ranked: HashMap<QueryId, u64> = HashMap::new();
    let mut last_time: HashMap<QueryId, f64> = HashMap::new();
    for e in events {
        let prev = last_time.insert(e.query, e.time).unwrap_or(0.0);
        assert!(
            e.time >= prev,
            "{ctx}: {} time went backwards ({prev} -> {})",
            e.query,
            e.time
        );
        match e.kind {
            EventKind::Submitted => *submitted.entry(e.query).or_default() += 1,
            EventKind::Ranked { .. } => *ranked.entry(e.query).or_default() += 1,
            EventKind::LookupHit { overlap, .. } => {
                assert!(
                    (0.0..=1.0).contains(&overlap),
                    "{ctx}: {} overlap {overlap} out of range",
                    e.query
                );
            }
            k if k.is_terminal() => *terminals.entry(e.query).or_default() += 1,
            _ => {}
        }
    }
    assert_eq!(submitted.len(), QUERIES, "{ctx}: every query submitted");
    for (q, n) in &submitted {
        assert_eq!(*n, 1, "{ctx}: {q} submitted more than once");
        assert_eq!(
            terminals.get(q),
            Some(&1),
            "{ctx}: {q} must have exactly one terminal event"
        );
        assert_eq!(
            ranked.get(q),
            Some(&1),
            "{ctx}: {q} must be ranked exactly once"
        );
    }
}

/// Writes both traces under `target/conformance/` (the CI job uploads
/// this directory on failure) and returns the directory path.
fn dump_traces(strategy: Strategy, sim: &[EventRecord], server: &[EventRecord]) -> String {
    let dir = "target/conformance";
    std::fs::create_dir_all(dir).expect("create trace dir");
    let name = strategy.name();
    std::fs::write(format!("{dir}/{name}_sim.json"), events_to_json(sim)).expect("write sim trace");
    std::fs::write(format!("{dir}/{name}_server.json"), events_to_json(server))
        .expect("write server trace");
    dir.to_string()
}

#[test]
fn golden_traces_match_across_engines_for_every_strategy() {
    let workers: usize = std::env::var("CONFORMANCE_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    // The six paper strategies run grafting-off (their goldens predate
    // the graft layer and must stay bit-for-bit); the seventh entry is
    // the data-driven ChunkBatch strategy with grafting on.
    let strategies: Vec<(Strategy, bool)> = Strategy::paper_set()
        .into_iter()
        .map(|s| (s, false))
        .chain([(Strategy::chunk_batch_default(), true)])
        .collect();
    for (strategy, graft) in strategies {
        let sim_events = run_simulator(strategy, graft);
        let server_events = run_server(strategy, workers, graft);
        assert_event_invariants(&sim_events, &format!("sim/{strategy}"));
        assert_event_invariants(&server_events, &format!("server/{strategy}x{workers}"));
        if workers != 1 {
            // Racy dispatch: decision sequences are not pinned, only the
            // per-engine invariants above.
            continue;
        }

        let sim_ranked = ranked_sequence(&sim_events);
        let server_ranked = ranked_sequence(&server_events);
        if sim_ranked != server_ranked {
            let dir = dump_traces(strategy, &sim_events, &server_events);
            panic!(
                "{strategy}: Ranked sequences diverged \
                 (sim {:?}... vs server {:?}...); traces in {dir}/",
                &sim_ranked[..sim_ranked.len().min(4)],
                &server_ranked[..server_ranked.len().min(4)],
            );
        }

        let sim_edges = reuse_edges(&sim_events);
        let server_edges = reuse_edges(&server_events);
        if sim_edges != server_edges {
            let dir = dump_traces(strategy, &sim_events, &server_events);
            panic!(
                "{strategy}: Data Store reuse edges diverged \
                 ({} sim vs {} server); traces in {dir}/",
                sim_edges.len(),
                server_edges.len(),
            );
        }
        // Grafted edges are part of the golden trace too. At one worker
        // nothing can be EXECUTING at dequeue time, so both engines must
        // agree the set is empty — a sim that "grafts" sequentially or a
        // server that leaks a subscription would diverge here.
        let sim_grafts = grafted_edges(&sim_events);
        let server_grafts = grafted_edges(&server_events);
        if sim_grafts != server_grafts {
            let dir = dump_traces(strategy, &sim_events, &server_events);
            panic!(
                "{strategy}: Grafted edges diverged \
                 ({sim_grafts:?} sim vs {server_grafts:?} server); traces in {dir}/"
            );
        }
        if graft {
            assert!(
                sim_grafts.is_empty(),
                "{strategy}: grafts are impossible at one worker"
            );
        }
        assert!(
            !sim_ranked.is_empty(),
            "{strategy}: conformance must compare a non-trivial sequence"
        );
    }
}

#[test]
fn conformance_workload_exercises_reuse_and_eviction() {
    // The golden comparison is only meaningful if the workload actually
    // drives the interesting paths: reuse edges AND evictions must occur.
    let events = run_simulator(Strategy::Cnbf, false);
    let edges = reuse_edges(&events);
    assert!(!edges.is_empty(), "workload must produce reuse edges");
    assert!(
        edges.iter().any(|&(_, _, exact)| exact),
        "workload must produce at least one exact hit"
    );
    let evictions = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Evicted { .. }))
        .count();
    assert!(
        evictions > 0,
        "DS budget must be tight enough to force evictions"
    );
    let tls = timelines(&events);
    assert_eq!(tls.len(), QUERIES);
    assert!(tls.iter().all(|t| t.latency().is_some()));
}

/// Overload configurations whose admission/degrade/shed decisions the two
/// engines must replay identically. Rate limiting is excluded: its token
/// bucket refills in wall-clock time on the server and virtual time in
/// the simulator, so only the pressure-driven mechanisms are golden.
fn overload_configs() -> Vec<(&'static str, OverloadConfig)> {
    vec![
        (
            "shed+degrade",
            OverloadConfig::default()
                .with_max_pending(8)
                .with_degrade_threshold(0.5)
                .with_shed_threshold(0.9),
        ),
        ("reject-only", OverloadConfig::default().with_max_pending(8)),
    ]
}

/// Server-side overload run: paused pool, one worker, the whole batch
/// submitted through the admission ladder, then resumed. Returns the
/// event log plus the handle outcomes `(completed, overloaded, shed)` —
/// every handle must resolve with a typed result, never hang.
fn run_server_overload(ov: OverloadConfig) -> (Vec<EventRecord>, (usize, usize, usize)) {
    let cfg = ServerConfig::small()
        .with_strategy(Strategy::Cnbf)
        .with_threads(1)
        .with_ds_budget(DS_BUDGET)
        .with_ps_budget(PS_BUDGET)
        .with_index_cell(INDEX_CELL)
        .with_observability(true)
        .with_start_paused(true)
        .with_overload(ov);
    let server = QueryServer::new(cfg, Arc::new(SyntheticSource::new()));
    let handles = server.submit_batch(workload());
    server.resume_workers();
    let (mut done, mut overloaded, mut shed) = (0, 0, 0);
    for h in handles {
        match h.wait() {
            Ok(_) => done += 1,
            Err(ServerError::Overloaded { .. }) => overloaded += 1,
            Err(ServerError::Shed { .. }) => shed += 1,
            Err(e) => panic!("unexpected error under overload: {e}"),
        }
    }
    server.drain();
    let events = server.events();
    server.shutdown();
    (events, (done, overloaded, shed))
}

/// Simulator-side overload run with the identical config, gated batch.
fn run_simulator_overload(ov: OverloadConfig) -> (Vec<EventRecord>, (usize, usize, usize)) {
    let cfg = SimConfig::paper_baseline()
        .with_strategy(Strategy::Cnbf)
        .with_threads(1)
        .with_ds_budget(DS_BUDGET)
        .with_ps_budget(PS_BUDGET)
        .with_index_cell(INDEX_CELL)
        .with_mode(SubmissionMode::Batch)
        .with_observe(true)
        .with_batch_gate(true)
        .with_overload(ov);
    let streams = vec![ClientStream {
        client: ClientId(0),
        queries: workload(),
    }];
    let report = run_sim(cfg, streams);
    let outcomes = (
        report.records.len(),
        report.rejected as usize,
        report.shed as usize,
    );
    (report.events, outcomes)
}

/// Event-log invariants under overload: every query Submitted exactly
/// once with exactly one terminal; rejected and shed queries are *never*
/// Ranked (they never reach a worker); completed queries are Ranked
/// exactly once.
fn assert_overload_invariants(events: &[EventRecord], ctx: &str) {
    let tls = timelines(events);
    assert_eq!(tls.len(), QUERIES, "{ctx}: every query appears");
    for t in &tls {
        assert!(t.submitted.is_some(), "{ctx}: {} submitted", t.query);
        let (terminal, _) = t
            .terminal
            .unwrap_or_else(|| panic!("{ctx}: {} must have a terminal event", t.query));
        match terminal {
            Terminal::Rejected | Terminal::Shed => {
                assert!(
                    t.ranked.is_none(),
                    "{ctx}: {} refused at admission must never be ranked",
                    t.query
                );
            }
            Terminal::Completed => {
                assert!(
                    t.ranked.is_some(),
                    "{ctx}: {} completed without being ranked",
                    t.query
                );
            }
            other => panic!("{ctx}: {} unexpected terminal {other:?}", t.query),
        }
    }
}

#[test]
fn overload_decisions_match_across_engines() {
    for (name, ov) in overload_configs() {
        let (sim_events, sim_outcomes) = run_simulator_overload(ov);
        let (server_events, server_outcomes) = run_server_overload(ov);
        assert_overload_invariants(&sim_events, &format!("sim/{name}"));
        assert_overload_invariants(&server_events, &format!("server/{name}"));

        // The golden comparison: identical admission / degradation / shed
        // decisions, and identical dispatch order for the survivors.
        let sim_adm = admission_sequence(&sim_events);
        let server_adm = admission_sequence(&server_events);
        if sim_adm != server_adm {
            let dir = dump_traces(Strategy::Cnbf, &sim_events, &server_events);
            panic!(
                "{name}: admission sequences diverged \
                 (sim {:?}... vs server {:?}...); traces in {dir}/",
                &sim_adm[..sim_adm.len().min(6)],
                &server_adm[..server_adm.len().min(6)],
            );
        }
        assert!(
            !sim_adm.is_empty(),
            "{name}: overload config must actually trigger decisions"
        );
        assert_eq!(
            ranked_sequence(&sim_events),
            ranked_sequence(&server_events),
            "{name}: surviving dispatch order must match"
        );
        // Handle-level conservation matches the event log on both sides.
        assert_eq!(sim_outcomes, server_outcomes, "{name}: outcome counts");
        let (done, overloaded, shed) = server_outcomes;
        assert_eq!(done + overloaded + shed, QUERIES, "{name}: conservation");
    }
}

#[test]
fn overload_conformance_workload_exercises_all_mechanisms() {
    // The golden comparison above is only meaningful if the configs drive
    // the interesting paths on this workload.
    let (_, (_, rejected, _)) = run_simulator_overload(overload_configs()[1].1);
    assert!(rejected > 0, "reject-only config must reject");
    let (events, (_, _, shed)) = run_simulator_overload(overload_configs()[0].1);
    assert!(shed > 0, "shed config must shed");
    let degraded = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Degraded))
        .count();
    assert!(degraded > 0, "degrade threshold must trigger on Averages");
}

#[test]
fn server_golden_trace_is_reproducible() {
    // The threaded engine at one worker must replay the same decision
    // sequence run-to-run — the property the cross-engine check rests on.
    let a = run_server(Strategy::Cnbf, 1, false);
    let b = run_server(Strategy::Cnbf, 1, false);
    assert_eq!(ranked_sequence(&a), ranked_sequence(&b));
    assert_eq!(reuse_edges(&a), reuse_edges(&b));
    // And with the graft layer armed under ChunkBatch: producer-affinity
    // dequeue must not perturb single-worker determinism.
    let a = run_server(Strategy::chunk_batch_default(), 1, true);
    let b = run_server(Strategy::chunk_batch_default(), 1, true);
    assert_eq!(ranked_sequence(&a), ranked_sequence(&b));
    assert_eq!(reuse_edges(&a), reuse_edges(&b));
    assert_eq!(grafted_edges(&a), grafted_edges(&b));
}

/// The Data Store eviction victim sequence as `(victim, tier, score)`,
/// with the score captured bit-for-bit.
fn eviction_sequence(events: &[EventRecord]) -> Vec<(QueryId, u8, u64)> {
    events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Evicted { tier, score } => Some((e.query, tier, score.to_bits())),
            _ => None,
        })
        .collect()
}

/// Simulator run under the cost-based cache hierarchy (DESIGN.md §14):
/// benefit-aware eviction plus a virtual tier-2 spill store. The victim
/// sequence is pinned *in the simulator only* — its benefit scores are
/// built from virtual I/O + CPU costs, so they replay bit-for-bit. The
/// threaded server seeds scores from measured wall time; its victim
/// *order* is therefore not golden (only its event invariants are).
fn run_simulator_costed(tier2_budget: u64) -> Vec<EventRecord> {
    let cfg = SimConfig::paper_baseline()
        .with_strategy(Strategy::Cnbf)
        .with_threads(1)
        .with_ds_budget(DS_BUDGET)
        .with_ps_budget(PS_BUDGET)
        .with_index_cell(INDEX_CELL)
        .with_mode(SubmissionMode::Batch)
        .with_observe(true)
        .with_batch_gate(true)
        .with_cache_policy(vmqs_datastore::EvictionPolicy::CostBased)
        .with_tier2_budget(tier2_budget);
    let streams = vec![ClientStream {
        client: ClientId(0),
        queries: workload(),
    }];
    run_sim(cfg, streams).events
}

#[test]
fn cost_based_victim_sequence_is_pinned_in_the_simulator() {
    // Tier 2 smaller than the in-memory tier: the spill store fills and
    // must itself evict, so the pinned sequence covers both tiers.
    let a = run_simulator_costed(128 << 10);
    let b = run_simulator_costed(128 << 10);
    assert_event_invariants(&a, "sim/cost-based");
    let evictions = eviction_sequence(&a);
    assert_eq!(
        evictions,
        eviction_sequence(&b),
        "cost-based victim sequence (including scores) must replay bit-for-bit"
    );
    assert!(
        !evictions.is_empty(),
        "DS budget must be tight enough to force cost-based evictions"
    );
    for (q, tier, bits) in &evictions {
        assert!(matches!(tier, 1 | 2), "{q}: eviction tier must be 1 or 2");
        let score = f64::from_bits(*bits);
        assert!(
            score.is_finite() && score >= 0.0,
            "{q}: benefit score {score} must be a finite non-negative rate"
        );
    }
    // The knapsack must actually change decisions: the same workload
    // under the legacy recency policy evicts in a different order.
    let legacy: Vec<QueryId> = eviction_sequence(&run_simulator(Strategy::Cnbf, false))
        .iter()
        .map(|&(q, _, _)| q)
        .collect();
    let costed: Vec<QueryId> = evictions.iter().map(|&(q, _, _)| q).collect();
    assert_ne!(
        costed, legacy,
        "cost-based policy must pick different victims than recency"
    );
}

#[test]
fn legacy_policy_emits_no_tier2_events() {
    // The six paper goldens above run under the legacy recency policy;
    // the tier-2 machinery must be completely inert there — no spills,
    // no restores, and every eviction a plain tier-1 drop.
    let events = run_simulator(Strategy::Cnbf, false);
    for e in &events {
        match e.kind {
            EventKind::Spilled { .. } | EventKind::Restored { .. } => {
                panic!("{}: legacy policy must never touch tier 2", e.query)
            }
            EventKind::Evicted { tier, .. } => {
                assert_eq!(tier, 1, "{}: legacy evictions are in-memory drops", e.query)
            }
            _ => {}
        }
    }
}
