//! Experiment harness: one-call runners for paper-scale simulated
//! experiments and laptop-scale threaded-engine runs, plus CSV output.

use crate::generator::{flatten_to_batch, generate, WorkloadConfig};
use vmqs_core::Strategy;
use vmqs_microscope::VmOp;
use vmqs_server::{QueryRecord, QueryServer, ServerConfig};
use vmqs_sim::{run_sim, SimConfig, SimReport, SubmissionMode};

/// One row of an experiment table (one configuration's aggregate results).
#[derive(Clone, Debug)]
pub struct ExpRow {
    /// Ranking strategy name.
    pub strategy: String,
    /// VM processing function.
    pub op: String,
    /// Query threads.
    pub threads: usize,
    /// Data Store budget in MB.
    pub ds_mb: u64,
    /// 95%-trimmed mean response time (virtual seconds).
    pub trimmed_response: f64,
    /// Mean response time (virtual seconds).
    pub mean_response: f64,
    /// Average achieved overlap in `[0, 1]`.
    pub avg_overlap: f64,
    /// Total time to finish the whole workload (virtual seconds).
    pub makespan: f64,
    /// Mean time queries spent blocked on executing dependencies.
    pub mean_blocked: f64,
    /// Exact cache hits.
    pub exact_hits: u64,
    /// Partial cache hits.
    pub partial_hits: u64,
}

impl ExpRow {
    /// CSV header matching [`ExpRow::to_csv`].
    pub fn csv_header() -> &'static str {
        "strategy,op,threads,ds_mb,trimmed_response_s,mean_response_s,avg_overlap,makespan_s,mean_blocked_s,exact_hits,partial_hits"
    }

    /// Serializes the row as CSV.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{:.3},{:.3},{:.4},{:.3},{:.3},{},{}",
            self.strategy,
            self.op,
            self.threads,
            self.ds_mb,
            self.trimmed_response,
            self.mean_response,
            self.avg_overlap,
            self.makespan,
            self.mean_blocked,
            self.exact_hits,
            self.partial_hits
        )
    }

    /// Builds a row from a finished simulation.
    pub fn from_report(
        report: &SimReport,
        strategy: Strategy,
        op: VmOp,
        threads: usize,
        ds_mb: u64,
    ) -> Self {
        let s = report.response_summary();
        ExpRow {
            strategy: strategy.name().to_string(),
            op: op.name().to_string(),
            threads,
            ds_mb,
            trimmed_response: report.trimmed_mean_response(),
            mean_response: s.mean,
            avg_overlap: report.average_overlap(),
            makespan: report.makespan,
            mean_blocked: report.mean_blocked(),
            exact_hits: report.ds_stats.exact_hits,
            partial_hits: report.ds_stats.partial_hits,
        }
    }
}

/// Runs one paper-scale simulated configuration: the §5 workload (16
/// clients × 16 queries, 8/6/2 dataset split) under `strategy`, `op`,
/// `threads`, and a Data Store budget of `ds_mb` megabytes.
pub fn run_paper_experiment(
    strategy: Strategy,
    op: VmOp,
    threads: usize,
    ds_mb: u64,
    ps_mb: u64,
    mode: SubmissionMode,
    seed: u64,
) -> (SimReport, ExpRow) {
    let wl_cfg = WorkloadConfig::paper(op, seed);
    let streams = generate(&wl_cfg);
    let streams = match mode {
        SubmissionMode::Interactive => streams,
        SubmissionMode::Batch => flatten_to_batch(&streams),
    };
    let cfg = SimConfig::paper_baseline()
        .with_strategy(strategy)
        .with_threads(threads)
        .with_ds_budget(ds_mb << 20)
        .with_ps_budget(ps_mb << 20)
        .with_mode(mode);
    let report = run_sim(cfg, streams);
    let row = ExpRow::from_report(&report, strategy, op, threads, ds_mb);
    (report, row)
}

/// Runs a workload on the *real threaded engine*, emulating interactive
/// clients with one OS thread each (each waits for its previous answer
/// before submitting the next query). Returns records in completion order.
pub fn run_server_interactive(
    server: &QueryServer,
    streams: Vec<vmqs_sim::ClientStream>,
) -> Vec<QueryRecord> {
    std::thread::scope(|scope| {
        for cs in &streams {
            scope.spawn(move || {
                for q in &cs.queries {
                    // A failed query (e.g. shutdown) ends this client.
                    if server.submit(*q).wait().is_err() {
                        break;
                    }
                }
            });
        }
    });
    server.records()
}

/// Runs a workload on the real threaded engine as one batch.
pub fn run_server_batch(
    server: &QueryServer,
    queries: Vec<vmqs_microscope::VmQuery>,
) -> Vec<QueryRecord> {
    run_server_batch_counting(server, queries).0
}

/// Per-query outcome counts of a batch run on the threaded engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Queries that delivered an answer.
    pub ok: usize,
    /// Queries that failed with an I/O or shutdown error.
    pub failed: usize,
    /// Queries cancelled at their deadline.
    pub timed_out: usize,
}

impl BatchOutcome {
    /// All queries accounted for.
    pub fn total(&self) -> usize {
        self.ok + self.failed + self.timed_out
    }
}

/// Runs a batch on the real threaded engine, counting per-query outcomes
/// instead of discarding failures — the harness for fault-injection and
/// timeout experiments.
pub fn run_server_batch_counting(
    server: &QueryServer,
    queries: Vec<vmqs_microscope::VmQuery>,
) -> (Vec<QueryRecord>, BatchOutcome) {
    let handles = server.submit_batch(queries);
    let mut out = BatchOutcome::default();
    for h in handles {
        match h.wait() {
            Ok(_) => out.ok += 1,
            Err(e) if e.is_timeout() => out.timed_out += 1,
            Err(_) => out.failed += 1,
        }
    }
    (server.records(), out)
}

/// Convenience constructor for a laptop-scale threaded server matched to
/// [`WorkloadConfig::small`].
pub fn small_server(strategy: Strategy, threads: usize) -> QueryServer {
    let cfg = ServerConfig::small()
        .with_strategy(strategy)
        .with_threads(threads)
        .with_ds_budget(8 << 20)
        .with_ps_budget(4 << 20);
    QueryServer::new(
        cfg,
        std::sync::Arc::new(vmqs_storage::SyntheticSource::new()),
    )
}

/// Writes rows to a CSV file (creating parent directories), returning the
/// path for convenience.
pub fn write_csv(
    path: &str,
    header: &str,
    rows: impl IntoIterator<Item = String>,
) -> std::io::Result<String> {
    use std::io::Write;
    if let Some(parent) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    Ok(path.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_experiment_runs_and_summarizes() {
        let (report, row) = run_paper_experiment(
            Strategy::Fifo,
            VmOp::Subsample,
            4,
            64,
            32,
            SubmissionMode::Interactive,
            42,
        );
        assert_eq!(report.records.len(), 256);
        assert_eq!(row.threads, 4);
        assert_eq!(row.ds_mb, 64);
        assert!(row.trimmed_response > 0.0);
        assert!(row.makespan > 0.0);
        assert!((0.0..=1.0).contains(&row.avg_overlap));
    }

    #[test]
    fn caching_helps_even_fifo() {
        // The paper's E1 observation in miniature: FIFO with a data store
        // beats FIFO without one.
        let (with, _) = run_paper_experiment(
            Strategy::Fifo,
            VmOp::Subsample,
            4,
            128,
            32,
            SubmissionMode::Interactive,
            42,
        );
        let (without, _) = run_paper_experiment(
            Strategy::Fifo,
            VmOp::Subsample,
            4,
            0,
            32,
            SubmissionMode::Interactive,
            42,
        );
        assert!(
            with.makespan < without.makespan,
            "caching on ({}) must beat caching off ({})",
            with.makespan,
            without.makespan
        );
        assert!(with.average_overlap() > 0.0);
        assert_eq!(without.average_overlap(), 0.0);
    }

    #[test]
    fn row_csv_roundtrip_format() {
        let (_, row) = run_paper_experiment(
            Strategy::Sjf,
            VmOp::Average,
            2,
            32,
            32,
            SubmissionMode::Batch,
            1,
        );
        let line = row.to_csv();
        assert_eq!(
            line.split(',').count(),
            ExpRow::csv_header().split(',').count()
        );
        assert!(line.starts_with("SJF,average,2,32,"));
    }

    #[test]
    fn write_csv_creates_file() {
        let path = std::env::temp_dir()
            .join(format!("vmqs_csv_{}", std::process::id()))
            .join("test.csv");
        let p = write_csv(
            path.to_str().unwrap(),
            "a,b",
            vec!["1,2".to_string(), "3,4".to_string()],
        )
        .unwrap();
        let content = std::fs::read_to_string(p).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn threaded_interactive_run_completes() {
        let cfg = WorkloadConfig::small(VmOp::Subsample, 9);
        let streams = generate(&cfg);
        let total: usize = streams.iter().map(|s| s.queries.len()).sum();
        let server = small_server(Strategy::Cnbf, 2);
        let records = run_server_interactive(&server, streams);
        assert_eq!(records.len(), total);
        server.shutdown();
    }

    #[test]
    fn threaded_batch_run_completes() {
        let cfg = WorkloadConfig::small(VmOp::Average, 10);
        let streams = generate(&cfg);
        let queries: Vec<_> = streams.iter().flat_map(|s| s.queries.clone()).collect();
        let server = small_server(Strategy::Sjf, 2);
        let (records, outcome) = run_server_batch_counting(&server, queries.clone());
        assert_eq!(records.len(), queries.len());
        assert_eq!(outcome.ok, queries.len());
        assert_eq!(outcome.total(), queries.len());
        server.shutdown();
    }

    #[test]
    fn counting_runner_separates_timeouts() {
        let cfg = WorkloadConfig::small(VmOp::Subsample, 11);
        let queries: Vec<_> = generate(&cfg)
            .iter()
            .flat_map(|s| s.queries.clone())
            .take(6)
            .collect();
        let server = QueryServer::new(
            ServerConfig::small().with_query_timeout(Some(std::time::Duration::ZERO)),
            std::sync::Arc::new(vmqs_storage::SyntheticSource::new()),
        );
        let (_, outcome) = run_server_batch_counting(&server, queries.clone());
        assert_eq!(
            outcome.timed_out,
            queries.len(),
            "zero deadline cancels all"
        );
        assert_eq!(outcome.ok + outcome.failed, 0);
        server.shutdown();
    }
}
