//! # vmqs-workload
//!
//! The client emulator and experiment harness (paper §5).
//!
//! * [`WorkloadConfig`] / [`generate`] — seeded synthetic browsing
//!   workloads reproducing the paper's setup (16 clients × 16 queries over
//!   three slides split 8/6/2, 1024×1024 RGB outputs, hotspot-clustered
//!   sessions so clients' queries overlap);
//! * [`run_paper_experiment`] — one-call paper-scale simulated runs used
//!   by every figure-reproduction binary;
//! * [`run_server_interactive`] / [`run_server_batch`] — the same
//!   workloads against the *real threaded engine* at laptop scale;
//! * [`ExpRow`] / [`write_csv`] — experiment table rows and CSV output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiment;
mod generator;

pub use experiment::{
    run_paper_experiment, run_server_batch, run_server_batch_counting, run_server_interactive,
    small_server, write_csv, BatchOutcome, ExpRow,
};
pub use generator::{
    chunk_skewed, flatten_to_batch, generate, zipfian, zipfian_catalog, WorkloadConfig,
    CHUNK_SKEW_TILES_PER_GROUP,
};
