//! The client emulator: seeded synthetic query workloads.
//!
//! The paper drives its evaluation with an emulated-client driver rather
//! than real user traces ("extensive real user traces are very difficult
//! to acquire", §5); queries model microscope users browsing slides —
//! panning around regions of interest and switching magnification. The
//! generator reproduces the paper's setup: 16 concurrent clients, 16
//! queries each, producing 1024×1024 RGB output images at various
//! magnification levels, with 8/6/2 clients assigned to three datasets.
//!
//! Sessions cluster on shared hotspots so that *different* clients'
//! queries overlap (the classroom scenario of §3: "an entire class can
//! access and individually manipulate the same slide at the same time,
//! searching for a particular feature").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vmqs_core::{ClientId, Rect};
use vmqs_microscope::{SlideDataset, VmOp, VmQuery};
use vmqs_sim::ClientStream;

/// Configuration of the emulated-client workload.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// The slides being browsed.
    pub datasets: Vec<SlideDataset>,
    /// Clients per dataset (must have the same length as `datasets`).
    pub clients_per_dataset: Vec<usize>,
    /// Queries per client.
    pub queries_per_client: usize,
    /// Output image side in pixels (the paper uses 1024).
    pub output_side: u32,
    /// Allowed magnification levels (powers of two keep projections exact).
    pub zoom_levels: Vec<u32>,
    /// Processing function for all queries.
    pub op: VmOp,
    /// Shared hotspots per dataset that sessions cluster around.
    pub hotspots_per_dataset: usize,
    /// Probability that a query continues the current browsing session
    /// (pan/zoom) rather than jumping to a new hotspot.
    pub session_continue: f64,
    /// RNG seed — every workload is fully reproducible.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's §5 setup: three 30000×30000 slides, 16 clients split
    /// 8/6/2, 16 queries each, 1024×1024 outputs.
    pub fn paper(op: VmOp, seed: u64) -> Self {
        WorkloadConfig {
            datasets: (0..3)
                .map(|i| SlideDataset::paper_scale(vmqs_core::DatasetId(i)))
                .collect(),
            clients_per_dataset: vec![8, 6, 2],
            queries_per_client: 16,
            output_side: 1024,
            zoom_levels: vec![1, 2, 4, 8],
            op,
            hotspots_per_dataset: 4,
            session_continue: 0.65,
            seed,
        }
    }

    /// A laptop-scale variant for the real threaded engine: small slides,
    /// small outputs, same structure.
    pub fn small(op: VmOp, seed: u64) -> Self {
        WorkloadConfig {
            datasets: (0..2)
                .map(|i| SlideDataset::new(vmqs_core::DatasetId(i), 2000, 2000))
                .collect(),
            clients_per_dataset: vec![3, 1],
            queries_per_client: 4,
            output_side: 64,
            zoom_levels: vec![1, 2, 4],
            op,
            hotspots_per_dataset: 2,
            session_continue: 0.65,
            seed,
        }
    }

    /// Total number of clients.
    pub fn total_clients(&self) -> usize {
        self.clients_per_dataset.iter().sum()
    }

    /// Total number of queries.
    pub fn total_queries(&self) -> usize {
        self.total_clients() * self.queries_per_client
    }
}

struct Session {
    hotspot: (u32, u32),
    center: (u32, u32),
    zoom_idx: usize,
}

/// Generates the per-client query streams for `cfg`.
///
/// Deterministic: the same config (including seed) always produces the
/// same workload, which keeps every experiment reproducible.
pub fn generate(cfg: &WorkloadConfig) -> Vec<ClientStream> {
    assert_eq!(
        cfg.datasets.len(),
        cfg.clients_per_dataset.len(),
        "clients_per_dataset must match datasets"
    );
    assert!(!cfg.zoom_levels.is_empty());
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Shared hotspots per dataset.
    let hotspots: Vec<Vec<(u32, u32)>> = cfg
        .datasets
        .iter()
        .map(|d| {
            (0..cfg.hotspots_per_dataset)
                .map(|_| (rng.gen_range(0..d.width), rng.gen_range(0..d.height)))
                .collect()
        })
        .collect();

    let mut streams = Vec::new();
    let mut client_id = 0u64;
    for (d_idx, (&n_clients, dataset)) in cfg
        .clients_per_dataset
        .iter()
        .zip(cfg.datasets.iter())
        .enumerate()
    {
        for _ in 0..n_clients {
            let mut session = new_session(&mut rng, cfg, &hotspots[d_idx]);
            let mut queries = Vec::with_capacity(cfg.queries_per_client);
            for _ in 0..cfg.queries_per_client {
                if !rng.gen_bool(cfg.session_continue) {
                    session = new_session(&mut rng, cfg, &hotspots[d_idx]);
                } else {
                    mutate_session(&mut rng, cfg, &mut session);
                }
                queries.push(query_for(cfg, dataset, &session));
            }
            streams.push(ClientStream {
                client: ClientId(client_id),
                queries,
            });
            client_id += 1;
        }
    }
    streams
}

fn new_session(rng: &mut StdRng, cfg: &WorkloadConfig, hotspots: &[(u32, u32)]) -> Session {
    let hotspot = hotspots[rng.gen_range(0..hotspots.len())];
    Session {
        hotspot,
        center: hotspot,
        zoom_idx: rng.gen_range(0..cfg.zoom_levels.len()),
    }
}

fn mutate_session(rng: &mut StdRng, cfg: &WorkloadConfig, s: &mut Session) {
    match rng.gen_range(0..4u32) {
        // Pan: shift by a quarter of the current window.
        0 | 1 => {
            let zoom = cfg.zoom_levels[s.zoom_idx];
            let step = (cfg.output_side * zoom / 4).max(1) as i64;
            let dx = rng.gen_range(-step..=step);
            let dy = rng.gen_range(-step..=step);
            s.center.0 = (s.center.0 as i64 + dx).max(0) as u32;
            s.center.1 = (s.center.1 as i64 + dy).max(0) as u32;
        }
        // Zoom in.
        2 => {
            s.zoom_idx = s.zoom_idx.saturating_sub(1);
        }
        // Zoom out (and re-center toward the hotspot, as users do).
        _ => {
            s.zoom_idx = (s.zoom_idx + 1).min(cfg.zoom_levels.len() - 1);
            s.center = s.hotspot;
        }
    }
}

fn query_for(cfg: &WorkloadConfig, dataset: &SlideDataset, s: &Session) -> VmQuery {
    let zoom = cfg.zoom_levels[s.zoom_idx];
    let side = cfg.output_side * zoom;
    // Clamp the window inside the slide (shifting rather than shrinking so
    // output size stays constant whenever the slide is large enough).
    let max_x = dataset.width.saturating_sub(side);
    let max_y = dataset.height.saturating_sub(side);
    let x = s.center.0.saturating_sub(side / 2).min(max_x);
    let y = s.center.1.saturating_sub(side / 2).min(max_y);
    let w = side.min(dataset.width);
    let h = side.min(dataset.height);
    VmQuery::new(*dataset, Rect::new(x, y, w, h), zoom, cfg.op)
}

/// Disjoint sub-tiles carved out of each chunk group by [`chunk_skewed`].
pub const CHUNK_SKEW_TILES_PER_GROUP: usize = 4;

/// A chunk-skewed workload for evaluating the ChunkBatch strategy: one
/// batch of `groups * 4` queries, four *disjoint* sub-tiles per storage
/// chunk (the 147×147-pixel unit that maps to exactly one disk page).
///
/// Tiles of the same group share all their disk pages but have zero
/// result overlap, so the Data Store offers no reuse and the only savings
/// available are Page Space hits — which require the scheduler to run a
/// group's tiles close together in time. The batch is interleaved
/// group-round-robin (tile 0 of every group, then tile 1, …): the worst
/// case for arrival-order scheduling, because by the time FIFO returns to
/// a group its page has been evicted from a small Page Space and must be
/// fetched cold again. A chunk-affinity ranking re-forms the groups and
/// pays one cold read per chunk instead of up to four.
pub fn chunk_skewed(groups: usize) -> Vec<ClientStream> {
    let slide = SlideDataset::paper_scale(vmqs_core::DatasetId(0));
    let per_row = (slide.width / vmqs_microscope::CHUNK_SIDE) as usize;
    assert!(groups <= per_row * per_row, "more groups than chunks");
    // Quadrants inside one chunk's interior: 72×72 tiles at offsets 1 and
    // 74 (74 + 72 = 146 < 147), so every tile intersects exactly its own
    // group's chunk and no two tiles overlap.
    const TILE: u32 = 72;
    const OFFS: [(u32, u32); CHUNK_SKEW_TILES_PER_GROUP] = [(1, 1), (74, 1), (1, 74), (74, 74)];
    let mut queries = Vec::with_capacity(groups * CHUNK_SKEW_TILES_PER_GROUP);
    for (tx, ty) in OFFS {
        for g in 0..groups {
            let cx = (g % per_row) as u32 * vmqs_microscope::CHUNK_SIDE;
            let cy = (g / per_row) as u32 * vmqs_microscope::CHUNK_SIDE;
            queries.push(VmQuery::new(
                slide,
                Rect::new(cx + tx, cy + ty, TILE, TILE),
                1,
                VmOp::Subsample,
            ));
        }
    }
    vec![ClientStream {
        client: ClientId(0),
        queries,
    }]
}

/// A zipfian cache-pressure workload (DESIGN.md §14): `queries` draws
/// over a catalog of `catalog` distinct high-magnification windows on one
/// paper-scale slide, with rank `r` drawn with probability proportional
/// to `1/r^s`. A handful of hot windows repeat many times while the long
/// tail forces continual eviction pressure — the regime where a
/// benefit-aware cache keeps the hot, expensive results and a recency
/// cache churns them. Windows are zoom-4 subsamples (1024² input pixels
/// per 256² output), so a re-heated result is far cheaper than its
/// recomputation.
pub fn zipfian(catalog: usize, queries: usize, s: f64, seed: u64) -> Vec<ClientStream> {
    assert!(s >= 0.0 && s.is_finite(), "zipf exponent must be finite");
    let tiles = zipfian_catalog(catalog);
    // Inverse-CDF sampling over the truncated zeta weights.
    let mut cum = Vec::with_capacity(catalog);
    let mut total = 0.0f64;
    for r in 1..=catalog {
        total += 1.0 / (r as f64).powf(s);
        cum.push(total);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let queries = (0..queries)
        .map(|_| {
            // Uniform in [0, total): the top 53 bits of a u64 draw give
            // an exact dyadic uniform (the rand stub samples no floats).
            use rand::RngCore;
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * total;
            tiles[cum.partition_point(|&c| c <= u).min(catalog - 1)]
        })
        .collect();
    vec![ClientStream {
        client: ClientId(0),
        queries,
    }]
}

/// The catalog [`zipfian`] draws from, in rank order: `catalog` disjoint
/// zoom-4 windows (1024² input pixels per 256² output) tiled row-major
/// across one paper-scale slide. Rank `i+1` lives at tile `i`, so the
/// only reuse available is exact repetition of a catalog entry.
pub fn zipfian_catalog(catalog: usize) -> Vec<VmQuery> {
    assert!(catalog > 0, "catalog must be non-empty");
    let slide = SlideDataset::paper_scale(vmqs_core::DatasetId(0));
    const OUT_SIDE: u32 = 256;
    const ZOOM: u32 = 4;
    let side = OUT_SIDE * ZOOM;
    let per_row = (slide.width / side) as usize;
    assert!(
        catalog <= per_row * per_row,
        "catalog larger than the {per_row}x{per_row} tile grid"
    );
    (0..catalog)
        .map(|i| {
            let x = (i % per_row) as u32 * side;
            let y = (i / per_row) as u32 * side;
            VmQuery::new(slide, Rect::new(x, y, side, side), ZOOM, VmOp::Subsample)
        })
        .collect()
}

/// Flattens per-client streams into one batch stream (for the paper's
/// Fig. 7: "a single batch of 256 queries"), interleaving clients
/// round-robin so the batch is not sorted by client.
pub fn flatten_to_batch(streams: &[ClientStream]) -> Vec<ClientStream> {
    let max_len = streams.iter().map(|s| s.queries.len()).max().unwrap_or(0);
    let mut queries = Vec::new();
    for i in 0..max_len {
        for s in streams {
            if let Some(q) = s.queries.get(i) {
                queries.push(*q);
            }
        }
    }
    vec![ClientStream {
        client: ClientId(0),
        queries,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmqs_core::QuerySpec;

    #[test]
    fn paper_workload_shape() {
        let cfg = WorkloadConfig::paper(VmOp::Subsample, 42);
        let streams = generate(&cfg);
        assert_eq!(streams.len(), 16);
        assert!(streams.iter().all(|s| s.queries.len() == 16));
        assert_eq!(cfg.total_queries(), 256);
        // 8/6/2 dataset split by construction order.
        let d0 = streams[..8]
            .iter()
            .flat_map(|s| &s.queries)
            .all(|q| q.slide.id.raw() == 0);
        let d2 = streams[14..]
            .iter()
            .flat_map(|s| &s.queries)
            .all(|q| q.slide.id.raw() == 2);
        assert!(d0 && d2);
    }

    #[test]
    fn outputs_are_constant_size() {
        let cfg = WorkloadConfig::paper(VmOp::Average, 7);
        for s in generate(&cfg) {
            for q in &s.queries {
                assert_eq!(q.output_dims(), (1024, 1024), "query {q:?}");
                assert_eq!(q.qoutsize(), 3 * 1024 * 1024);
            }
        }
    }

    #[test]
    fn windows_inside_slides_and_zoom_aligned() {
        let cfg = WorkloadConfig::paper(VmOp::Subsample, 99);
        for s in generate(&cfg) {
            for q in &s.queries {
                assert!(q.slide.bounds().contains(&q.region));
                assert_eq!(q.region.x % q.zoom, 0);
                assert_eq!(q.region.w % q.zoom, 0);
                assert!(cfg.zoom_levels.contains(&q.zoom));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = WorkloadConfig::paper(VmOp::Subsample, 5);
        let a = generate(&cfg);
        let b = generate(&cfg);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.queries, y.queries);
        }
        let other = generate(&WorkloadConfig::paper(VmOp::Subsample, 6));
        assert_ne!(
            a.iter().flat_map(|s| &s.queries).collect::<Vec<_>>(),
            other.iter().flat_map(|s| &s.queries).collect::<Vec<_>>()
        );
    }

    #[test]
    fn workload_has_interclient_overlap() {
        // The whole point of multi-query optimization: different clients'
        // queries must overlap sometimes.
        let cfg = WorkloadConfig::paper(VmOp::Subsample, 42);
        let streams = generate(&cfg);
        let mut cross_overlaps = 0usize;
        for (i, a) in streams.iter().enumerate() {
            for b in &streams[i + 1..] {
                for qa in &a.queries {
                    for qb in &b.queries {
                        if qa.overlap(qb) > 0.0 {
                            cross_overlaps += 1;
                        }
                    }
                }
            }
        }
        assert!(
            cross_overlaps > 50,
            "expected substantial cross-client overlap, got {cross_overlaps}"
        );
    }

    #[test]
    fn small_workload_fits_small_slides() {
        let cfg = WorkloadConfig::small(VmOp::Average, 1);
        let streams = generate(&cfg);
        assert_eq!(streams.len(), 4);
        for s in &streams {
            for q in &s.queries {
                assert!(q.region.x1() <= 2000 && q.region.y1() <= 2000);
            }
        }
    }

    #[test]
    fn chunk_skewed_groups_share_chunks_but_not_results() {
        let streams = chunk_skewed(8);
        assert_eq!(streams.len(), 1);
        let qs = &streams[0].queries;
        assert_eq!(qs.len(), 8 * CHUNK_SKEW_TILES_PER_GROUP);
        // Group-round-robin interleave: consecutive queries belong to
        // different groups (different chunks).
        assert_ne!(qs[0].chunk_keys(), qs[1].chunk_keys());
        // Tiles of one group (stride 8 apart) touch exactly the same
        // single chunk but have zero result overlap.
        for g in 0..8 {
            let group: Vec<_> = (0..CHUNK_SKEW_TILES_PER_GROUP)
                .map(|t| qs[t * 8 + g])
                .collect();
            let keys = group[0].chunk_keys();
            assert_eq!(keys.len(), 1, "a tile spans exactly one chunk");
            for (i, a) in group.iter().enumerate() {
                assert_eq!(a.chunk_keys(), keys);
                for b in &group[i + 1..] {
                    assert_eq!(a.overlap(b), 0.0, "tiles must be disjoint");
                }
            }
        }
        // Deterministic (no RNG involved).
        assert_eq!(chunk_skewed(8)[0].queries, streams[0].queries);
    }

    #[test]
    fn zipfian_is_skewed_deterministic_and_in_catalog() {
        let streams = zipfian(64, 512, 1.1, 9);
        assert_eq!(streams.len(), 1);
        let qs = &streams[0].queries;
        assert_eq!(qs.len(), 512);
        assert_eq!(zipfian(64, 512, 1.1, 9)[0].queries, *qs, "seeded replay");

        // Every draw is a catalog tile, and the catalog tiles are the
        // disjoint zoom-aligned grid the generator promises.
        let catalog: Vec<_> = zipfian(64, 0, 1.1, 9);
        assert!(catalog[0].queries.is_empty());
        let mut counts = std::collections::HashMap::new();
        for q in qs {
            assert_eq!(q.zoom, 4);
            assert_eq!(q.region.x % q.zoom, 0);
            assert!(q.slide.bounds().contains(&q.region));
            *counts.entry((q.region.x, q.region.y)).or_insert(0usize) += 1;
        }
        assert!(counts.len() <= 64, "draws stay inside the catalog");

        // Zipf skew: the hottest window must repeat far above the uniform
        // share, and the head must dominate the tail.
        let hottest = *counts.values().max().unwrap();
        assert!(
            hottest >= 3 * 512 / 64,
            "rank-1 must beat the uniform share: {hottest}"
        );
        let rank1 = counts.get(&(0, 0)).copied().unwrap_or(0);
        assert_eq!(rank1, hottest, "tile 0 carries rank 1");
    }

    #[test]
    fn flatten_to_batch_preserves_all_queries() {
        let cfg = WorkloadConfig::paper(VmOp::Subsample, 3);
        let streams = generate(&cfg);
        let batch = flatten_to_batch(&streams);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].queries.len(), 256);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_config_rejected() {
        let mut cfg = WorkloadConfig::paper(VmOp::Subsample, 1);
        cfg.clients_per_dataset.pop();
        generate(&cfg);
    }
}
