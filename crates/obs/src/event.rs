//! Typed scheduler events and the append-only event log.

use std::fmt::Write as _;
use std::time::Instant;
use vmqs_core::sync::atomic::{AtomicU64, Ordering};
use vmqs_core::sync::Mutex;
use vmqs_core::QueryId;

/// What happened to a query. One variant per schema point shared by the
/// threaded server and the simulator (DESIGN.md §9).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum EventKind {
    /// The query entered the scheduling graph.
    Submitted,
    /// The query was dequeued for execution; `score` is its frozen rank
    /// under `strategy` at dequeue time.
    Ranked {
        /// Ranking strategy in force at dequeue.
        strategy: &'static str,
        /// The rank value the dequeue decision was based on.
        score: f64,
    },
    /// A Data Store lookup matched a cached result.
    LookupHit {
        /// The query that produced the matched result (reuse edge source).
        source: QueryId,
        /// Overlap fraction between the two predicates, in `[0, 1]`.
        overlap: f64,
        /// True when the match satisfies the query exactly.
        exact: bool,
    },
    /// The query grafted onto an in-flight peer: instead of recomputing
    /// (or waiting for the result to reach CACHED), it subscribed to the
    /// producer's reserved Data Store entry while the producer was still
    /// EXECUTING and consumed the published bytes directly. A reuse edge
    /// like `LookupHit`, but sourced from the in-flight entry rather than
    /// a committed cache hit.
    Grafted {
        /// The executing query whose output was consumed (edge source).
        producer: QueryId,
    },
    /// The application spawned sub-queries for the uncovered remainder
    /// (threaded engine only; the simulator's cost model does not
    /// decompose remainders).
    SubquerySpawned {
        /// Number of sub-queries created.
        count: u64,
    },
    /// A page was obtained for this query.
    PageRead {
        /// True when the page was served from the Page Space (or an
        /// in-flight peer fetch) without new device I/O by this query.
        cached: bool,
        /// True when at least one transient fault was retried to get it.
        retried: bool,
    },
    /// The query's cached result was dropped from the Data Store for
    /// good (not spilled — a spill keeps the result reachable).
    Evicted {
        /// Tier the data was lost from: `1` = in-memory, `2` = the spill
        /// store.
        tier: u8,
        /// The victim's benefit-per-byte score at eviction time (`0`
        /// under the legacy recency policies before any costed commit).
        score: f64,
    },
    /// The query's cached result was demoted to the tier-2 spill store
    /// (still reachable: a later exact lookup restores it at disk cost).
    Spilled {
        /// Payload bytes moved to tier 2.
        bytes: u64,
    },
    /// The query's spilled result was re-heated from tier 2 into memory.
    Restored {
        /// Payload bytes moved back to tier 1.
        bytes: u64,
    },
    /// The query was downgraded to its cheaper plan at admission
    /// (Virtual Microscope: `Average` → `Subsample`) because pressure
    /// reached the degrade threshold.
    Degraded,
    /// Terminal: the query completed successfully.
    Completed,
    /// Terminal: the query failed with an I/O error.
    Failed,
    /// Terminal: the query was cancelled at its deadline.
    TimedOut,
    /// Terminal: admission refused the query (bounded queue full, or the
    /// client exceeded its token-bucket rate).
    Rejected {
        /// True when the per-client rate limiter rejected it; false when
        /// the admission queue was full.
        rate_limited: bool,
    },
    /// Terminal: the query was admitted but evicted from the waiting
    /// queue by the load shedder (largest `qinputsize` first).
    Shed,
    /// The worker computing this query died (panicked). Non-terminal:
    /// the query is either requeued for a sibling worker (followed by a
    /// fresh `Ranked` when re-dequeued) or quarantined (followed by
    /// `Quarantined` + `Failed`).
    WorkerPanicked,
    /// The query killed its last allowed worker (the per-query panic
    /// count reached the quarantine limit) and is failed typed-ly
    /// instead of being retried again. Non-terminal — the matching
    /// `Failed` event is the terminal one.
    Quarantined {
        /// Workers this query killed before being quarantined.
        attempts: u32,
    },
    /// A replacement worker thread was spawned for one that panicked
    /// (restart budget permitting). Attributed to the query whose
    /// compute killed the predecessor.
    WorkerRestarted,
    /// The query exceeded the hang timeout (wall clock on the server,
    /// virtual time in the sim) and was cancelled through the deadline
    /// machinery. Non-terminal — the matching `TimedOut` is terminal.
    Hung,
}

impl EventKind {
    /// Stable lower-snake label used in exports and assertions.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Submitted => "submitted",
            EventKind::Ranked { .. } => "ranked",
            EventKind::LookupHit { .. } => "lookup_hit",
            EventKind::Grafted { .. } => "grafted",
            EventKind::SubquerySpawned { .. } => "subquery_spawned",
            EventKind::PageRead { .. } => "page_read",
            EventKind::Evicted { .. } => "evicted",
            EventKind::Spilled { .. } => "spilled",
            EventKind::Restored { .. } => "restored",
            EventKind::Degraded => "degraded",
            EventKind::Completed => "completed",
            EventKind::Failed => "failed",
            EventKind::TimedOut => "timed_out",
            EventKind::Rejected { .. } => "rejected",
            EventKind::Shed => "shed",
            EventKind::WorkerPanicked => "worker_panicked",
            EventKind::Quarantined { .. } => "quarantined",
            EventKind::WorkerRestarted => "worker_restarted",
            EventKind::Hung => "hung",
        }
    }

    /// True for the terminal lifecycle events: a query ends in exactly
    /// one of Completed, Failed, TimedOut, Rejected, or Shed.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            EventKind::Completed
                | EventKind::Failed
                | EventKind::TimedOut
                | EventKind::Rejected { .. }
                | EventKind::Shed
        )
    }
}

/// One logged event: a global sequence number (total order across the
/// run), a timestamp in seconds (real time since the log's origin for the
/// server, virtual time for the simulator), the query, and the kind.
#[derive(Clone, Copy, Debug)]
pub struct EventRecord {
    /// Global emission order.
    pub seq: u64,
    /// Seconds since the engine's time origin (monotone per query).
    pub time: f64,
    /// The query this event belongs to.
    pub query: QueryId,
    /// What happened.
    pub kind: EventKind,
}

const SHARDS: usize = 8;

/// An append-only log of [`EventRecord`]s. Writers take a global atomic
/// sequence number and push into one of a small set of sharded vectors, so
/// concurrent query threads rarely contend on the same mutex; a disabled
/// log reduces `log()` to a single branch.
#[derive(Debug)]
pub struct EventLog {
    enabled: bool,
    origin: Instant,
    seq: AtomicU64,
    shards: Vec<Mutex<Vec<EventRecord>>>,
}

impl EventLog {
    /// Creates a log; `enabled = false` makes every `log` call a no-op.
    pub fn new(enabled: bool) -> Self {
        EventLog {
            enabled,
            origin: vmqs_core::clock::now(),
            seq: AtomicU64::new(0),
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Seconds elapsed since the log was created (the server's clock).
    pub fn now(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }

    /// Records an event stamped with the current real time.
    pub fn log(&self, query: QueryId, kind: EventKind) {
        if self.enabled {
            self.log_at(self.now(), query, kind);
        }
    }

    /// Records an event with an explicit timestamp (the simulator's
    /// virtual clock).
    pub fn log_at(&self, time: f64, query: QueryId, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.shards[seq as usize % SHARDS].lock().push(EventRecord {
            seq,
            time,
            query,
            kind,
        });
    }

    /// Stamps an event (sequence number + current time) *without*
    /// appending it, for callers that batch records into a local buffer
    /// and drain them off the hot path ([`EventBuffer`]). Returns `None`
    /// on a disabled log.
    ///
    /// The sequence number is taken at stamp time, so a buffered record
    /// occupies the same position in the global order as an immediate
    /// [`EventLog::log`] call would have — [`EventLog::snapshot`] sorts
    /// by `seq`, making the eventual drain invisible to trace consumers.
    pub fn make(&self, query: QueryId, kind: EventKind) -> Option<EventRecord> {
        if !self.enabled {
            return None;
        }
        Some(EventRecord {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            time: self.now(),
            query,
            kind,
        })
    }

    /// Appends a batch of already-stamped records (from [`EventLog::make`])
    /// under a single shard lock.
    ///
    /// Records land in the shard of the *first* record's sequence number
    /// rather than each in its own — shard choice only spreads lock
    /// contention and is invisible after the seq sort in `snapshot`.
    pub fn append_batch(&self, batch: &mut Vec<EventRecord>) {
        if batch.is_empty() {
            return;
        }
        let shard = batch[0].seq as usize % SHARDS;
        self.shards[shard].lock().extend(batch.drain(..));
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies all events out, ordered by global sequence number.
    pub fn snapshot(&self) -> Vec<EventRecord> {
        let mut all: Vec<EventRecord> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            all.extend(shard.lock().iter().copied());
        }
        all.sort_unstable_by_key(|e| e.seq);
        all
    }

    /// All events of one query, in sequence order.
    pub fn events_for(&self, query: QueryId) -> Vec<EventRecord> {
        let mut v: Vec<EventRecord> = self
            .snapshot()
            .into_iter()
            .filter(|e| e.query == query)
            .collect();
        v.sort_unstable_by_key(|e| e.seq);
        v
    }
}

/// A fixed-capacity per-worker staging buffer for event records.
///
/// Workers on the engine hot path stamp events with [`EventLog::make`]
/// (one relaxed `fetch_add`, no lock) and stage them here; the buffer is
/// drained into the shared log with [`EventBuffer::flush`] at
/// steal/idle boundaries, when it fills, and at worker exit. Because
/// every record carries its stamp-time sequence number, a drained trace
/// is byte-identical to one produced by unbuffered logging.
#[derive(Debug)]
pub struct EventBuffer {
    records: Vec<EventRecord>,
    capacity: usize,
}

impl EventBuffer {
    /// Default staging capacity: large enough that a typical query's 2–4
    /// events amortize the shard-lock acquisition ~100x, small enough to
    /// keep drained batches cheap to sort.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// Creates a buffer that self-flushes once `capacity` records are
    /// staged (`capacity = 0` is treated as 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventBuffer {
            records: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Stamps and stages one event; flushes to `log` when the buffer is
    /// full. A disabled log makes this a single branch.
    pub fn push(&mut self, log: &EventLog, query: QueryId, kind: EventKind) {
        if let Some(rec) = log.make(query, kind) {
            self.records.push(rec);
            if self.records.len() >= self.capacity {
                self.flush(log);
            }
        }
    }

    /// Drains all staged records into the log.
    pub fn flush(&mut self, log: &EventLog) {
        log.append_batch(&mut self.records);
    }

    /// Number of staged (not yet flushed) records.
    pub fn staged(&self) -> usize {
        self.records.len()
    }
}

impl Default for EventBuffer {
    fn default() -> Self {
        EventBuffer::new(Self::DEFAULT_CAPACITY)
    }
}

/// Serializes events as a JSON array of objects, one per event, with the
/// kind's payload fields inlined (`strategy`/`score`, `source`/`overlap`/
/// `exact`, `count`, `cached`/`retried`).
pub fn events_to_json(events: &[EventRecord]) -> String {
    let mut out = String::with_capacity(events.len() * 80 + 16);
    out.push_str("[\n");
    for (i, e) in events.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"seq\": {}, \"time_s\": {:.9}, \"query\": {}, \"event\": \"{}\"",
            e.seq,
            e.time,
            e.query.raw(),
            e.kind.label()
        );
        match e.kind {
            EventKind::Ranked { strategy, score } => {
                let _ = write!(out, ", \"strategy\": \"{strategy}\", \"score\": {score}");
            }
            EventKind::LookupHit {
                source,
                overlap,
                exact,
            } => {
                let _ = write!(
                    out,
                    ", \"source\": {}, \"overlap\": {overlap}, \"exact\": {exact}",
                    source.raw()
                );
            }
            EventKind::Grafted { producer } => {
                let _ = write!(out, ", \"producer\": {}", producer.raw());
            }
            EventKind::SubquerySpawned { count } => {
                let _ = write!(out, ", \"count\": {count}");
            }
            EventKind::PageRead { cached, retried } => {
                let _ = write!(out, ", \"cached\": {cached}, \"retried\": {retried}");
            }
            EventKind::Rejected { rate_limited } => {
                let _ = write!(out, ", \"rate_limited\": {rate_limited}");
            }
            EventKind::Evicted { tier, score } => {
                let _ = write!(out, ", \"tier\": {tier}, \"score\": {score}");
            }
            EventKind::Spilled { bytes } | EventKind::Restored { bytes } => {
                let _ = write!(out, ", \"bytes\": {bytes}");
            }
            EventKind::Quarantined { attempts } => {
                let _ = write!(out, ", \"attempts\": {attempts}");
            }
            _ => {}
        }
        out.push('}');
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let log = EventLog::new(false);
        log.log(QueryId(1), EventKind::Submitted);
        log.log_at(3.0, QueryId(1), EventKind::Completed);
        assert!(log.is_empty());
        assert!(!log.enabled());
    }

    #[test]
    fn snapshot_orders_by_sequence() {
        let log = EventLog::new(true);
        for i in 0..40u64 {
            log.log_at(i as f64, QueryId(i % 4), EventKind::Submitted);
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 40);
        for (i, e) in snap.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        assert_eq!(log.events_for(QueryId(2)).len(), 10);
    }

    #[test]
    fn concurrent_writers_keep_unique_seqs() {
        let log = std::sync::Arc::new(EventLog::new(true));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let log = std::sync::Arc::clone(&log);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        log.log(QueryId(t), EventKind::Completed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 400);
        let mut seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 400, "sequence numbers must be unique");
    }

    #[test]
    fn buffered_emission_matches_direct_logging() {
        // Two logs fed the same interleaving — one direct, one through a
        // worker buffer drained late — must snapshot identically (modulo
        // timestamps, which come from different real-clock reads).
        let direct = EventLog::new(true);
        let buffered = EventLog::new(true);
        let mut buf = EventBuffer::new(64);
        for i in 0..10u64 {
            direct.log(QueryId(i), EventKind::Submitted);
            buf.push(&buffered, QueryId(i), EventKind::Submitted);
            direct.log(QueryId(i), EventKind::Completed);
            buf.push(&buffered, QueryId(i), EventKind::Completed);
        }
        assert_eq!(buffered.len(), 0, "nothing visible before the flush");
        assert_eq!(buf.staged(), 20);
        buf.flush(&buffered);
        assert_eq!(buf.staged(), 0);
        let a = direct.snapshot();
        let b = buffered.snapshot();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seq, y.seq);
            assert_eq!(x.query, y.query);
            assert_eq!(x.kind, y.kind);
        }
    }

    #[test]
    fn buffer_self_flushes_at_capacity() {
        let log = EventLog::new(true);
        let mut buf = EventBuffer::new(4);
        for i in 0..9u64 {
            buf.push(&log, QueryId(i), EventKind::Submitted);
        }
        // Two capacity flushes happened; one record remains staged.
        assert_eq!(log.len(), 8);
        assert_eq!(buf.staged(), 1);
        buf.flush(&log);
        assert_eq!(log.len(), 9);
        let seqs: Vec<u64> = log.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..9).collect::<Vec<u64>>());
    }

    #[test]
    fn buffer_on_disabled_log_stages_nothing() {
        let log = EventLog::new(false);
        let mut buf = EventBuffer::default();
        buf.push(&log, QueryId(1), EventKind::Submitted);
        assert_eq!(buf.staged(), 0);
        buf.flush(&log);
        assert!(log.is_empty());
    }

    #[test]
    fn buffered_and_direct_writers_interleave_by_seq() {
        // A buffered worker and a direct submitter sharing one log: after
        // the drain, the global order is exactly stamp order.
        let log = EventLog::new(true);
        let mut buf = EventBuffer::new(64);
        log.log(QueryId(0), EventKind::Submitted); // seq 0
        buf.push(&log, QueryId(0), EventKind::Completed); // seq 1, staged
        log.log(QueryId(1), EventKind::Submitted); // seq 2
        buf.push(&log, QueryId(1), EventKind::Completed); // seq 3, staged
        buf.flush(&log);
        let kinds: Vec<&str> = log.snapshot().iter().map(|e| e.kind.label()).collect();
        assert_eq!(kinds, ["submitted", "completed", "submitted", "completed"]);
    }

    #[test]
    fn terminal_classification() {
        assert!(EventKind::Completed.is_terminal());
        assert!(EventKind::Failed.is_terminal());
        assert!(EventKind::TimedOut.is_terminal());
        assert!(EventKind::Rejected { rate_limited: true }.is_terminal());
        assert!(EventKind::Shed.is_terminal());
        assert!(!EventKind::Submitted.is_terminal());
        assert!(!EventKind::Evicted {
            tier: 1,
            score: 0.0
        }
        .is_terminal());
        assert!(!EventKind::Spilled { bytes: 1 }.is_terminal());
        assert!(!EventKind::Restored { bytes: 1 }.is_terminal());
        assert!(!EventKind::Degraded.is_terminal());
        // Failure-containment events are all non-terminal: the matching
        // Failed/TimedOut (or a successful retry's Completed) terminates.
        assert!(!EventKind::WorkerPanicked.is_terminal());
        assert!(!EventKind::Quarantined { attempts: 2 }.is_terminal());
        assert!(!EventKind::WorkerRestarted.is_terminal());
        assert!(!EventKind::Hung.is_terminal());
    }

    #[test]
    fn chaos_events_label_and_export() {
        let log = EventLog::new(true);
        log.log_at(0.0, QueryId(4), EventKind::WorkerPanicked);
        log.log_at(0.1, QueryId(4), EventKind::WorkerRestarted);
        log.log_at(0.2, QueryId(4), EventKind::Quarantined { attempts: 3 });
        log.log_at(0.3, QueryId(5), EventKind::Hung);
        assert_eq!(EventKind::WorkerPanicked.label(), "worker_panicked");
        assert_eq!(
            EventKind::Quarantined { attempts: 0 }.label(),
            "quarantined"
        );
        assert_eq!(EventKind::WorkerRestarted.label(), "worker_restarted");
        assert_eq!(EventKind::Hung.label(), "hung");
        let json = events_to_json(&log.snapshot());
        assert!(json.contains("\"event\": \"worker_panicked\""));
        assert!(json.contains("\"event\": \"worker_restarted\""));
        assert!(json.contains("\"event\": \"quarantined\""));
        assert!(json.contains("\"attempts\": 3"));
        assert!(json.contains("\"event\": \"hung\""));
    }

    #[test]
    fn tier_events_label_and_export() {
        let log = EventLog::new(true);
        log.log_at(0.0, QueryId(1), EventKind::Spilled { bytes: 512 });
        log.log_at(0.1, QueryId(1), EventKind::Restored { bytes: 512 });
        log.log_at(
            0.2,
            QueryId(1),
            EventKind::Evicted {
                tier: 2,
                score: 0.125,
            },
        );
        assert_eq!(EventKind::Spilled { bytes: 0 }.label(), "spilled");
        assert_eq!(EventKind::Restored { bytes: 0 }.label(), "restored");
        let json = events_to_json(&log.snapshot());
        assert!(json.contains("\"event\": \"spilled\""));
        assert!(json.contains("\"bytes\": 512"));
        assert!(json.contains("\"event\": \"evicted\""));
        assert!(json.contains("\"tier\": 2"));
        assert!(json.contains("\"score\": 0.125"));
    }

    #[test]
    fn overload_events_export_with_payloads() {
        let log = EventLog::new(true);
        log.log_at(0.0, QueryId(7), EventKind::Submitted);
        log.log_at(0.0, QueryId(7), EventKind::Degraded);
        log.log_at(0.1, QueryId(8), EventKind::Rejected { rate_limited: true });
        log.log_at(0.2, QueryId(7), EventKind::Shed);
        let json = events_to_json(&log.snapshot());
        assert!(json.contains("\"event\": \"degraded\""));
        assert!(json.contains("\"event\": \"rejected\""));
        assert!(json.contains("\"rate_limited\": true"));
        assert!(json.contains("\"event\": \"shed\""));
    }

    #[test]
    fn grafted_event_labels_and_exports() {
        let log = EventLog::new(true);
        log.log_at(
            0.0,
            QueryId(3),
            EventKind::Grafted {
                producer: QueryId(1),
            },
        );
        let kind = EventKind::Grafted {
            producer: QueryId(1),
        };
        assert_eq!(kind.label(), "grafted");
        assert!(!kind.is_terminal());
        let json = events_to_json(&log.snapshot());
        assert!(json.contains("\"event\": \"grafted\""));
        assert!(json.contains("\"producer\": 1"));
    }

    #[test]
    fn json_export_inlines_payload_fields() {
        let log = EventLog::new(true);
        log.log_at(0.0, QueryId(0), EventKind::Submitted);
        log.log_at(
            0.5,
            QueryId(0),
            EventKind::Ranked {
                strategy: "CNBF",
                score: 2.5,
            },
        );
        log.log_at(
            1.0,
            QueryId(0),
            EventKind::LookupHit {
                source: QueryId(9),
                overlap: 0.25,
                exact: false,
            },
        );
        log.log_at(1.5, QueryId(0), EventKind::Completed);
        let json = events_to_json(&log.snapshot());
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"event\": \"ranked\""));
        assert!(json.contains("\"strategy\": \"CNBF\""));
        assert!(json.contains("\"source\": 9"));
        assert!(json.contains("\"overlap\": 0.25"));
        // Structurally balanced: one object per event, no trailing comma.
        assert_eq!(json.matches('{').count(), 4);
        assert_eq!(json.matches('}').count(), 4);
        assert!(!json.contains(",\n]"));
    }
}
