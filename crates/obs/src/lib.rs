//! # vmqs-obs
//!
//! Observability layer shared by the threaded server and the
//! discrete-event simulator (DESIGN.md §9): a typed, append-only
//! [`EventLog`] of scheduler decisions, a [`MetricsRegistry`] of
//! counters/histograms/gauges exportable as JSON and Prometheus text,
//! and per-query lifecycle [`timeline`]s reconstructed from the log.
//!
//! Both engines emit the *same* event schema at the same semantic points
//! (submission, dequeue/rank, Data Store lookup, page reads, eviction,
//! termination), which is what makes the scheduler-conformance harness
//! possible: a seeded workload replayed through the simulator and a
//! single-worker server must produce identical `Ranked` score sequences
//! and identical Data Store reuse edges.
//!
//! ```
//! use vmqs_core::QueryId;
//! use vmqs_obs::{EventKind, Obs};
//!
//! let obs = Obs::new(true);
//! obs.log.log(QueryId(0), EventKind::Submitted);
//! obs.log.log(QueryId(0), EventKind::Completed);
//! let events = obs.log.snapshot();
//! assert_eq!(vmqs_obs::timeline::timelines(&events).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod metrics;
pub mod timeline;

pub use event::{events_to_json, EventBuffer, EventKind, EventLog, EventRecord};
pub use metrics::{
    Counter, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, PageMetrics,
    QueryMetrics,
};

/// The observability handle an engine threads through its components:
/// one event log plus one metrics registry.
#[derive(Debug)]
pub struct Obs {
    /// Typed scheduler event log. Recording is gated by the flag passed
    /// to [`Obs::new`]; a disabled log makes `log()` a no-op.
    pub log: EventLog,
    /// Always-on counters/histograms/gauges (cheap atomics).
    pub metrics: MetricsRegistry,
}

impl Obs {
    /// Creates a handle; `events_enabled` gates event recording (metrics
    /// are always on).
    pub fn new(events_enabled: bool) -> Self {
        Obs {
            log: EventLog::new(events_enabled),
            metrics: MetricsRegistry::new(),
        }
    }
}
