//! Per-query lifecycle timelines reconstructed from the event log, plus
//! the extraction helpers the conformance harness compares.

use crate::event::{EventKind, EventRecord};
use std::collections::BTreeMap;
use vmqs_core::QueryId;

/// How a query's lifecycle ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Terminal {
    /// Completed successfully.
    Completed,
    /// Failed with an I/O error.
    Failed,
    /// Cancelled at its deadline.
    TimedOut,
    /// Refused at admission (queue full or rate limited).
    Rejected,
    /// Admitted but evicted by the load shedder.
    Shed,
}

/// One query's reconstructed lifecycle.
#[derive(Clone, Copy, Debug)]
pub struct QueryTimeline {
    /// The query.
    pub query: QueryId,
    /// Submission time, if a `Submitted` event was logged.
    pub submitted: Option<f64>,
    /// Dequeue `(time, score)`, if a `Ranked` event was logged.
    pub ranked: Option<(f64, f64)>,
    /// Terminal event and its time, if one was logged.
    pub terminal: Option<(Terminal, f64)>,
    /// Data Store matches observed by this query's lookup.
    pub lookup_hits: u64,
    /// Pages obtained for this query.
    pub pages_read: u64,
    /// True when admission downgraded the query to its cheaper plan.
    pub degraded: bool,
    /// True when the query answered by grafting onto an in-flight peer.
    pub grafted: bool,
    /// Workers this query's compute killed (panics attributed to it).
    pub worker_panics: u64,
    /// True when the quarantine rule failed the query typed-ly.
    pub quarantined: bool,
}

impl QueryTimeline {
    /// Submission → terminal latency in seconds (any terminal kind).
    pub fn latency(&self) -> Option<f64> {
        match (self.submitted, self.terminal) {
            (Some(s), Some((_, t))) => Some(t - s),
            _ => None,
        }
    }
}

/// Reconstructs one timeline per query, ordered by query id. Later events
/// of a kind win for `ranked`/`terminal` (engines emit each at most once).
pub fn timelines(events: &[EventRecord]) -> Vec<QueryTimeline> {
    let mut map: BTreeMap<QueryId, QueryTimeline> = BTreeMap::new();
    for e in events {
        let t = map.entry(e.query).or_insert(QueryTimeline {
            query: e.query,
            submitted: None,
            ranked: None,
            terminal: None,
            lookup_hits: 0,
            pages_read: 0,
            degraded: false,
            grafted: false,
            worker_panics: 0,
            quarantined: false,
        });
        match e.kind {
            EventKind::Submitted => t.submitted = Some(e.time),
            EventKind::Ranked { score, .. } => t.ranked = Some((e.time, score)),
            EventKind::LookupHit { .. } => t.lookup_hits += 1,
            EventKind::PageRead { .. } => t.pages_read += 1,
            EventKind::Degraded => t.degraded = true,
            EventKind::Completed => t.terminal = Some((Terminal::Completed, e.time)),
            EventKind::Failed => t.terminal = Some((Terminal::Failed, e.time)),
            EventKind::TimedOut => t.terminal = Some((Terminal::TimedOut, e.time)),
            EventKind::Rejected { .. } => t.terminal = Some((Terminal::Rejected, e.time)),
            EventKind::Shed => t.terminal = Some((Terminal::Shed, e.time)),
            EventKind::Grafted { .. } => t.grafted = true,
            EventKind::WorkerPanicked => t.worker_panics += 1,
            EventKind::Quarantined { .. } => t.quarantined = true,
            EventKind::SubquerySpawned { .. }
            | EventKind::Evicted { .. }
            | EventKind::Spilled { .. }
            | EventKind::Restored { .. }
            | EventKind::WorkerRestarted
            | EventKind::Hung => {}
        }
    }
    map.into_values().collect()
}

/// Submission → completion latencies (seconds) of successfully completed
/// queries, in query-id order.
pub fn latencies(events: &[EventRecord]) -> Vec<f64> {
    timelines(events)
        .iter()
        .filter(|t| matches!(t.terminal, Some((Terminal::Completed, _))))
        .filter_map(|t| t.latency())
        .collect()
}

/// The `(query, score)` sequence of `Ranked` events in emission order —
/// the scheduler's dispatch decisions, which the conformance harness pins
/// across engines.
pub fn ranked_sequence(events: &[EventRecord]) -> Vec<(QueryId, f64)> {
    events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Ranked { score, .. } => Some((e.query, score)),
            _ => None,
        })
        .collect()
}

/// The overload policy's decision trace in emission order: one entry per
/// `Degraded`, `Rejected`, or `Shed` event, labeled with the stable event
/// label (`"degraded"` / `"rejected"` / `"shed"`). The conformance
/// harness pins this sequence across engines — identical admission,
/// degradation, and shed decisions at 1 worker.
pub fn admission_sequence(events: &[EventRecord]) -> Vec<(QueryId, &'static str)> {
    events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Degraded | EventKind::Rejected { .. } | EventKind::Shed => {
                Some((e.query, e.kind.label()))
            }
            _ => None,
        })
        .collect()
}

/// The Data Store reuse edges `(consumer, source, exact)` in emission
/// order, one per `LookupHit`.
pub fn reuse_edges(events: &[EventRecord]) -> Vec<(QueryId, QueryId, bool)> {
    events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::LookupHit { source, exact, .. } => Some((e.query, source, exact)),
            _ => None,
        })
        .collect()
}

/// The graft edges `(consumer, producer)` in emission order, one per
/// `Grafted` event — reuse edges sourced from in-flight entries rather
/// than committed cache hits. The conformance harness pins these across
/// engines alongside [`reuse_edges`].
pub fn grafted_edges(events: &[EventRecord]) -> Vec<(QueryId, QueryId)> {
    events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Grafted { producer } => Some((e.query, producer)),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventLog;

    fn sample_log() -> Vec<EventRecord> {
        let log = EventLog::new(true);
        log.log_at(0.0, QueryId(0), EventKind::Submitted);
        log.log_at(0.0, QueryId(1), EventKind::Submitted);
        log.log_at(
            0.1,
            QueryId(0),
            EventKind::Ranked {
                strategy: "FIFO",
                score: 5.0,
            },
        );
        log.log_at(0.9, QueryId(0), EventKind::Completed);
        log.log_at(
            1.0,
            QueryId(1),
            EventKind::Ranked {
                strategy: "FIFO",
                score: 4.0,
            },
        );
        log.log_at(
            1.1,
            QueryId(1),
            EventKind::LookupHit {
                source: QueryId(0),
                overlap: 0.5,
                exact: false,
            },
        );
        log.log_at(
            1.2,
            QueryId(1),
            EventKind::PageRead {
                cached: false,
                retried: false,
            },
        );
        log.log_at(2.0, QueryId(1), EventKind::Failed);
        log.snapshot()
    }

    #[test]
    fn timelines_reconstruct_lifecycles() {
        let ts = timelines(&sample_log());
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].query, QueryId(0));
        assert_eq!(ts[0].terminal, Some((Terminal::Completed, 0.9)));
        assert_eq!(ts[0].latency(), Some(0.9));
        assert_eq!(ts[1].terminal, Some((Terminal::Failed, 2.0)));
        assert_eq!(ts[1].lookup_hits, 1);
        assert_eq!(ts[1].pages_read, 1);
    }

    #[test]
    fn latencies_cover_only_completions() {
        let lat = latencies(&sample_log());
        assert_eq!(lat, vec![0.9]);
    }

    #[test]
    fn ranked_sequence_and_reuse_edges_extract_in_order() {
        let ev = sample_log();
        assert_eq!(
            ranked_sequence(&ev),
            vec![(QueryId(0), 5.0), (QueryId(1), 4.0)]
        );
        assert_eq!(reuse_edges(&ev), vec![(QueryId(1), QueryId(0), false)]);
    }

    #[test]
    fn grafted_edges_extract_in_order_and_mark_timelines() {
        let log = EventLog::new(true);
        log.log_at(0.0, QueryId(0), EventKind::Submitted);
        log.log_at(0.0, QueryId(1), EventKind::Submitted);
        log.log_at(
            0.5,
            QueryId(1),
            EventKind::Grafted {
                producer: QueryId(0),
            },
        );
        log.log_at(0.9, QueryId(0), EventKind::Completed);
        log.log_at(1.0, QueryId(1), EventKind::Completed);
        let ev = log.snapshot();
        assert_eq!(grafted_edges(&ev), vec![(QueryId(1), QueryId(0))]);
        // Grafts are not LookupHits: the classic reuse-edge extraction
        // stays untouched.
        assert!(reuse_edges(&ev).is_empty());
        let ts = timelines(&ev);
        assert!(!ts[0].grafted);
        assert!(ts[1].grafted);
    }

    #[test]
    fn admission_sequence_and_overload_terminals() {
        let log = EventLog::new(true);
        log.log_at(0.0, QueryId(0), EventKind::Submitted);
        log.log_at(0.0, QueryId(0), EventKind::Degraded);
        log.log_at(0.1, QueryId(1), EventKind::Submitted);
        log.log_at(
            0.1,
            QueryId(1),
            EventKind::Rejected {
                rate_limited: false,
            },
        );
        log.log_at(0.2, QueryId(0), EventKind::Shed);
        let ev = log.snapshot();
        assert_eq!(
            admission_sequence(&ev),
            vec![
                (QueryId(0), "degraded"),
                (QueryId(1), "rejected"),
                (QueryId(0), "shed"),
            ]
        );
        let ts = timelines(&ev);
        assert!(ts[0].degraded);
        assert_eq!(ts[0].terminal.map(|(k, _)| k), Some(Terminal::Shed));
        assert_eq!(ts[1].terminal.map(|(k, _)| k), Some(Terminal::Rejected));
        // Rejected/shed queries never complete: no latency contribution.
        assert!(latencies(&ev).is_empty());
    }
}
