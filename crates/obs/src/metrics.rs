//! Counters, histograms, gauges, and the registry with JSON/Prometheus
//! exposition.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use vmqs_core::sync::atomic::{AtomicU64, Ordering};
use vmqs_core::sync::{Arc, Mutex};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Exponential-ish bucket upper bounds (seconds) spanning 1 µs to 5 min —
/// wide enough for both the real engine and paper-scale virtual time.
const BOUNDS: [f64; 20] = [
    1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0, 300.0,
];

/// A fixed-bucket histogram with atomic buckets, count, and sum; safe to
/// observe from many threads and snapshot mid-run.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>, // one per bound + overflow
    count: AtomicU64,
    sum_bits: AtomicU64, // f64 sum, CAS-updated via to_bits
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram over the default second-scale buckets.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..=BOUNDS.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one sample (negative samples clamp to zero).
    pub fn observe(&self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        let idx = BOUNDS.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        // Release publishes the bucket increment above: a snapshot that
        // observes this sample in `count` (Acquire) also observes its
        // bucket, keeping `sum(buckets) >= count` — the invariant
        // `quantile` depends on. Checked by the `histogram_snapshot`
        // loom model; Relaxed here loses samples from buckets and
        // `quantile` spuriously reports +Inf.
        self.count.fetch_add(1, Ordering::Release);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Snapshot of buckets/count/sum. Concurrent `observe`s may or may
    /// not be included, but every sample included in `count` is present
    /// in `buckets` (so bucket sums are never behind the count).
    pub fn snapshot(&self) -> HistogramSnapshot {
        // Count FIRST (Acquire, pairing with observe's Release), then
        // buckets: samples appended between the two reads can only
        // surplus the buckets, never deficit them. Reading buckets
        // before count reintroduces the deficit race this ordering
        // exists to prevent.
        let count = self.count.load(Ordering::Acquire);
        HistogramSnapshot {
            bounds: BOUNDS.to_vec(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (exclusive of the `+Inf` overflow bucket).
    pub bounds: Vec<f64>,
    /// Per-bucket sample counts; `buckets.len() == bounds.len() + 1`, the
    /// last being the overflow bucket.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean sample, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-resolution quantile (`q` in `[0, 1]`): the upper bound of
    /// the bucket containing the `q`-th sample; `f64::INFINITY` for the
    /// overflow bucket, `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            }
        }
        f64::INFINITY
    }
}

/// Pre-resolved handles for the per-query lifecycle metrics both engines
/// maintain, so hot paths skip the registry's name map.
#[derive(Clone, Debug)]
pub struct QueryMetrics {
    /// `vmqs_queries_submitted_total`
    pub submitted: Arc<Counter>,
    /// `vmqs_queries_completed_total`
    pub completed: Arc<Counter>,
    /// `vmqs_queries_failed_total`
    pub failed: Arc<Counter>,
    /// `vmqs_queries_timed_out_total`
    pub timed_out: Arc<Counter>,
    /// `vmqs_queries_rejected_total` — refused at admission (queue full
    /// or rate limited).
    pub rejected: Arc<Counter>,
    /// `vmqs_queries_shed_total` — admitted but evicted by the load
    /// shedder.
    pub shed: Arc<Counter>,
    /// `vmqs_queries_degraded_total` — downgraded to the cheaper plan at
    /// admission.
    pub degraded: Arc<Counter>,
    /// `vmqs_ds_exact_hits_total`
    pub ds_exact_hits: Arc<Counter>,
    /// `vmqs_ds_partial_hits_total`
    pub ds_partial_hits: Arc<Counter>,
    /// `vmqs_ds_misses_total`
    pub ds_misses: Arc<Counter>,
    /// `vmqs_ds_evictions_total`
    pub ds_evictions: Arc<Counter>,
    /// `vmqs_ds_spills_total` — entries demoted to the tier-2 spill
    /// store instead of dropped (DESIGN.md §14).
    pub ds_spills: Arc<Counter>,
    /// `vmqs_ds_restores_total` — entries re-heated from tier 2.
    pub ds_restores: Arc<Counter>,
    /// `vmqs_worker_panics_total` — worker threads killed by a panicking
    /// compute (DESIGN.md §15).
    pub worker_panics: Arc<Counter>,
    /// `vmqs_worker_restarts_total` — replacement workers spawned under
    /// the restart budget.
    pub worker_restarts: Arc<Counter>,
    /// `vmqs_queries_quarantined_total` — poison queries failed typed-ly
    /// after reaching the quarantine limit.
    pub quarantined: Arc<Counter>,
    /// `vmqs_queries_hung_total` — queries cancelled by the hang
    /// watchdog.
    pub hung: Arc<Counter>,
    /// `vmqs_queue_wait_seconds`
    pub queue_wait: Arc<Histogram>,
    /// `vmqs_service_time_seconds`
    pub service_time: Arc<Histogram>,
}

impl QueryMetrics {
    /// Resolves (registering on first use) the standard query metrics.
    pub fn resolve(reg: &MetricsRegistry) -> Self {
        QueryMetrics {
            submitted: reg.counter("vmqs_queries_submitted_total"),
            completed: reg.counter("vmqs_queries_completed_total"),
            failed: reg.counter("vmqs_queries_failed_total"),
            timed_out: reg.counter("vmqs_queries_timed_out_total"),
            rejected: reg.counter("vmqs_queries_rejected_total"),
            shed: reg.counter("vmqs_queries_shed_total"),
            degraded: reg.counter("vmqs_queries_degraded_total"),
            ds_exact_hits: reg.counter("vmqs_ds_exact_hits_total"),
            ds_partial_hits: reg.counter("vmqs_ds_partial_hits_total"),
            ds_misses: reg.counter("vmqs_ds_misses_total"),
            ds_evictions: reg.counter("vmqs_ds_evictions_total"),
            ds_spills: reg.counter("vmqs_ds_spills_total"),
            ds_restores: reg.counter("vmqs_ds_restores_total"),
            worker_panics: reg.counter("vmqs_worker_panics_total"),
            worker_restarts: reg.counter("vmqs_worker_restarts_total"),
            quarantined: reg.counter("vmqs_queries_quarantined_total"),
            hung: reg.counter("vmqs_queries_hung_total"),
            queue_wait: reg.histogram("vmqs_queue_wait_seconds"),
            service_time: reg.histogram("vmqs_service_time_seconds"),
        }
    }
}

/// Pre-resolved handles for Page Space metrics.
#[derive(Clone, Debug)]
pub struct PageMetrics {
    /// `vmqs_ps_page_reads_total` — pages requested through read plans.
    pub page_reads: Arc<Counter>,
    /// `vmqs_ps_page_hits_total` — of those, served without new device I/O.
    pub page_hits: Arc<Counter>,
    /// `vmqs_ps_read_retries_total`
    pub read_retries: Arc<Counter>,
    /// `vmqs_ps_read_faults_total`
    pub read_faults: Arc<Counter>,
    /// `vmqs_ps_runs_issued_total`
    pub runs_issued: Arc<Counter>,
    /// `vmqs_ps_pages_fetched_total`
    pub pages_fetched: Arc<Counter>,
}

impl PageMetrics {
    /// Resolves (registering on first use) the standard Page Space metrics.
    pub fn resolve(reg: &MetricsRegistry) -> Self {
        PageMetrics {
            page_reads: reg.counter("vmqs_ps_page_reads_total"),
            page_hits: reg.counter("vmqs_ps_page_hits_total"),
            read_retries: reg.counter("vmqs_ps_read_retries_total"),
            read_faults: reg.counter("vmqs_ps_read_faults_total"),
            runs_issued: reg.counter("vmqs_ps_runs_issued_total"),
            pages_fetched: reg.counter("vmqs_ps_pages_fetched_total"),
        }
    }
}

/// A named registry of counters, histograms, and gauges. Handles are
/// `Arc`s resolved once (see [`QueryMetrics`]/[`PageMetrics`]); the name
/// maps are only locked at resolve and snapshot time.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    gauges: Mutex<BTreeMap<String, f64>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns (registering if new) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// Returns (registering if new) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Sets the gauge named `name` (registering if new).
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.gauges.lock().insert(name.to_string(), value);
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self.gauges.lock().clone(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`], exportable as JSON or
/// Prometheus text exposition.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// JSON object: counters and gauges flat, histograms with bucket
    /// arrays plus `count`/`sum`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{k}\": {v}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{k}\": {v}");
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{k}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                h.count,
                h.sum,
                h.mean(),
                finite_or_max(h.quantile(0.50)),
                finite_or_max(h.quantile(0.95)),
                finite_or_max(h.quantile(0.99)),
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Prometheus text exposition format (`# TYPE` lines, `_bucket{le=}`
    /// series with a `+Inf` bucket, `_sum`, `_count`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {k} counter\n{k} {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {k} gauge\n{k} {v}");
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {k} histogram");
            let mut cum = 0u64;
            for (i, &n) in h.buckets.iter().enumerate() {
                cum += n;
                match h.bounds.get(i) {
                    Some(b) => {
                        let _ = writeln!(out, "{k}_bucket{{le=\"{b}\"}} {cum}");
                    }
                    None => {
                        let _ = writeln!(out, "{k}_bucket{{le=\"+Inf\"}} {cum}");
                    }
                }
            }
            let _ = writeln!(out, "{k}_sum {}", h.sum);
            let _ = writeln!(out, "{k}_count {}", h.count);
        }
        out
    }
}

fn finite_or_max(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        f64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("vmqs_test_total");
        c.inc();
        c.add(4);
        // Resolving again returns the same underlying counter.
        assert_eq!(reg.counter("vmqs_test_total").get(), 5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.observe(0.002); // ≤ 2.5e-3 bucket
        }
        for _ in 0..10 {
            h.observe(2.0); // ≤ 2.5 bucket
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert!((s.sum - (90.0 * 0.002 + 20.0)).abs() < 1e-9);
        assert_eq!(s.quantile(0.5), 2.5e-3);
        assert_eq!(s.quantile(0.99), 2.5);
        // Overflow bucket lands on +Inf.
        h.observe(1e9);
        assert!(h.snapshot().quantile(1.0).is_infinite());
        // Negative and non-finite samples clamp instead of corrupting.
        h.observe(-3.0);
        h.observe(f64::NAN);
        assert_eq!(h.snapshot().count, 103);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("vmqs_queries_submitted_total").add(7);
        reg.set_gauge("vmqs_ds_hit_ratio", 0.5);
        reg.histogram("vmqs_queue_wait_seconds").observe(0.01);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE vmqs_queries_submitted_total counter"));
        assert!(text.contains("vmqs_queries_submitted_total 7"));
        assert!(text.contains("# TYPE vmqs_ds_hit_ratio gauge"));
        assert!(text.contains("vmqs_ds_hit_ratio 0.5"));
        assert!(text.contains("# TYPE vmqs_queue_wait_seconds histogram"));
        assert!(text.contains("vmqs_queue_wait_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("vmqs_queue_wait_seconds_count 1"));
        // Buckets are cumulative: the +Inf bucket equals the count.
        let inf_line = text
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .unwrap()
            .to_string();
        assert!(inf_line.ends_with(" 1"));
    }

    #[test]
    fn json_snapshot_parses_structurally() {
        let reg = MetricsRegistry::new();
        reg.counter("vmqs_a_total").inc();
        reg.set_gauge("vmqs_g", 1.25);
        reg.histogram("vmqs_h_seconds").observe(0.2);
        let json = reg.snapshot().to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"vmqs_a_total\": 1"));
        assert!(json.contains("\"vmqs_g\": 1.25"));
        assert!(json.contains("\"count\": 1"));
    }

    #[test]
    fn resolved_handle_structs_share_registry() {
        let reg = MetricsRegistry::new();
        let qm = QueryMetrics::resolve(&reg);
        qm.submitted.add(3);
        let pm = PageMetrics::resolve(&reg);
        pm.page_reads.add(2);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["vmqs_queries_submitted_total"], 3);
        assert_eq!(snap.counters["vmqs_ps_page_reads_total"], 2);
    }
}
