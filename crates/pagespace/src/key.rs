//! Page addressing and I/O run merging.
//!
//! All interaction with data sources happens in fixed-size pages (64 KB in
//! the paper's Virtual Microscope deployment). The Page Space Manager
//! reorders and merges the page requests of concurrent queries into
//! contiguous runs to minimize I/O overhead (paper §2, "Page Space
//! Manager").

use vmqs_core::DatasetId;

/// Identifies one fixed-size page of one dataset.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PageKey {
    /// Dataset the page belongs to.
    pub dataset: DatasetId,
    /// Zero-based page index within the dataset.
    pub index: u64,
}

impl PageKey {
    /// Creates a page key.
    pub fn new(dataset: DatasetId, index: u64) -> Self {
        PageKey { dataset, index }
    }
}

/// A maximal run of contiguous pages of one dataset — the unit handed to
/// the disk as a single I/O request after merging.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Run {
    /// Dataset the run reads from.
    pub dataset: DatasetId,
    /// First page index.
    pub start: u64,
    /// Number of contiguous pages.
    pub count: u64,
}

impl Run {
    /// Total bytes transferred by this run given the page size.
    pub fn bytes(&self, page_size: u64) -> u64 {
        self.count * page_size
    }

    /// Iterates the page keys covered by the run.
    pub fn pages(&self) -> impl Iterator<Item = PageKey> + '_ {
        let ds = self.dataset;
        (self.start..self.start + self.count).map(move |i| PageKey::new(ds, i))
    }
}

/// Sorts page requests and merges adjacent/duplicate pages into maximal
/// contiguous [`Run`]s per dataset. Duplicates are eliminated.
pub fn merge_into_runs(pages: &[PageKey]) -> Vec<Run> {
    if pages.is_empty() {
        return Vec::new();
    }
    let mut sorted = pages.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut runs: Vec<Run> = Vec::new();
    let mut cur = Run {
        dataset: sorted[0].dataset,
        start: sorted[0].index,
        count: 1,
    };
    for p in &sorted[1..] {
        if p.dataset == cur.dataset && p.index == cur.start + cur.count {
            cur.count += 1;
        } else {
            runs.push(cur);
            cur = Run {
                dataset: p.dataset,
                start: p.index,
                count: 1,
            };
        }
    }
    runs.push(cur);
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pk(d: u64, i: u64) -> PageKey {
        PageKey::new(DatasetId(d), i)
    }

    #[test]
    fn empty_input_no_runs() {
        assert!(merge_into_runs(&[]).is_empty());
    }

    #[test]
    fn contiguous_pages_merge_into_one_run() {
        let runs = merge_into_runs(&[pk(0, 3), pk(0, 1), pk(0, 2)]);
        assert_eq!(
            runs,
            vec![Run {
                dataset: DatasetId(0),
                start: 1,
                count: 3
            }]
        );
    }

    #[test]
    fn duplicates_are_eliminated() {
        let runs = merge_into_runs(&[pk(0, 5), pk(0, 5), pk(0, 6)]);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].count, 2);
    }

    #[test]
    fn gaps_split_runs() {
        let runs = merge_into_runs(&[pk(0, 1), pk(0, 2), pk(0, 9)]);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].count, 2);
        assert_eq!(runs[1].start, 9);
    }

    #[test]
    fn different_datasets_never_merge() {
        let runs = merge_into_runs(&[pk(0, 1), pk(1, 2)]);
        assert_eq!(runs.len(), 2);
    }

    #[test]
    fn run_pages_roundtrip() {
        let run = Run {
            dataset: DatasetId(2),
            start: 4,
            count: 3,
        };
        let pages: Vec<PageKey> = run.pages().collect();
        assert_eq!(pages, vec![pk(2, 4), pk(2, 5), pk(2, 6)]);
        assert_eq!(run.bytes(65536), 3 * 65536);
    }
}
