//! The engine-agnostic core of the Page Space Manager.
//!
//! [`PageCacheCore`] tracks page residency (with LRU eviction under a fixed
//! byte budget), in-flight fetches (so a page requested by several queries
//! at once is read from disk exactly once — "duplicate requests are
//! eliminated"), and plans the I/O for a set of requested pages as merged
//! contiguous runs.
//!
//! The threaded server wraps this core with a mutex + condition variable
//! and real reads; the discrete-event simulator drives it directly and
//! turns the returned runs into disk events. Both therefore share the exact
//! caching and merging behaviour.

use crate::key::{merge_into_runs, PageKey, Run};
use std::collections::HashMap;
use std::sync::Arc;

/// Resident page contents; the simulator stores no bytes.
#[derive(Clone, Debug)]
pub enum PageData {
    /// Actual page bytes.
    Bytes(Arc<Vec<u8>>),
    /// Size-only accounting (simulation).
    Virtual,
}

#[derive(Debug)]
struct Resident {
    data: PageData,
    last_access: u64,
}

/// How a requested page will be satisfied.
#[derive(Clone, Debug, PartialEq)]
pub enum PageDisposition {
    /// Already resident in the cache.
    Hit,
    /// Another request is already fetching it; the caller should wait for
    /// that fetch instead of issuing its own ("duplicate elimination").
    InFlightElsewhere,
    /// The caller must fetch it (it has been marked in-flight on the
    /// caller's behalf).
    MustFetch,
}

/// The I/O plan for one batch of page requests.
#[derive(Debug, Default)]
pub struct ReadPlan {
    /// Disposition of every requested page, in request order (deduplicated).
    pub pages: Vec<(PageKey, PageDisposition)>,
    /// The caller's misses merged into contiguous runs — the I/O requests
    /// to issue to the data source.
    pub fetch_runs: Vec<Run>,
}

impl ReadPlan {
    /// Pages the caller must wait on (being fetched by someone else).
    pub fn waits(&self) -> impl Iterator<Item = PageKey> + '_ {
        self.pages
            .iter()
            .filter(|(_, d)| *d == PageDisposition::InFlightElsewhere)
            .map(|(k, _)| *k)
    }

    /// Number of cache hits in the plan.
    pub fn hit_count(&self) -> usize {
        self.pages
            .iter()
            .filter(|(_, d)| *d == PageDisposition::Hit)
            .count()
    }

    /// Number of pages this caller must fetch.
    pub fn fetch_count(&self) -> usize {
        self.fetch_runs.iter().map(|r| r.count as usize).sum()
    }
}

/// Counters exposed for experiments and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PsStats {
    /// Pages found resident.
    pub hits: u64,
    /// Pages that had to be fetched.
    pub misses: u64,
    /// Duplicate fetches avoided (page already in flight for another
    /// request).
    pub dedup_waits: u64,
    /// Pages evicted.
    pub evictions: u64,
    /// Merged I/O requests issued (runs).
    pub runs_issued: u64,
    /// Total pages covered by issued runs.
    pub pages_fetched: u64,
    /// I/O faults observed on page reads (transient + permanent).
    pub read_faults: u64,
    /// Page-read retries performed after transient faults.
    pub read_retries: u64,
    /// Page reads that ultimately failed (permanent fault, retries
    /// exhausted, or deadline hit mid-read).
    pub failed_reads: u64,
}

/// Fixed-budget page cache with in-flight tracking and run merging.
#[derive(Debug)]
pub struct PageCacheCore {
    page_size: u64,
    capacity_pages: usize,
    resident: HashMap<PageKey, Resident>,
    in_flight: HashMap<PageKey, u32>,
    clock: u64,
    merging_enabled: bool,
    stats: PsStats,
}

impl PageCacheCore {
    /// Creates a cache holding at most `budget_bytes / page_size` pages
    /// (minimum 1, so progress is always possible).
    pub fn new(budget_bytes: u64, page_size: u64) -> Self {
        assert!(page_size > 0, "page size must be positive");
        PageCacheCore {
            page_size,
            capacity_pages: ((budget_bytes / page_size) as usize).max(1),
            resident: HashMap::new(),
            in_flight: HashMap::new(),
            clock: 0,
            merging_enabled: true,
            stats: PsStats::default(),
        }
    }

    /// Disables run merging (each missed page becomes its own single-page
    /// run). Exists for the PS-merging ablation experiment.
    pub fn set_merging(&mut self, enabled: bool) {
        self.merging_enabled = enabled;
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Maximum resident pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PsStats {
        self.stats
    }

    /// Records an I/O fault observed by the fetching front-end.
    pub fn note_read_fault(&mut self) {
        self.stats.read_faults += 1;
    }

    /// Records a retry of a transiently failed page read.
    pub fn note_read_retry(&mut self) {
        self.stats.read_retries += 1;
    }

    /// Records a page read that failed for good (surfaced to the query).
    pub fn note_failed_read(&mut self) {
        self.stats.failed_reads += 1;
    }

    /// True when the page is resident.
    pub fn is_resident(&self, page: PageKey) -> bool {
        self.resident.contains_key(&page)
    }

    /// True when the page is being fetched.
    pub fn is_in_flight(&self, page: PageKey) -> bool {
        self.in_flight.contains_key(&page)
    }

    /// Plans the read of `pages`: classifies each page as hit / wait /
    /// must-fetch, marks the must-fetch pages in-flight, and merges them
    /// into contiguous runs.
    pub fn plan_read(&mut self, pages: &[PageKey]) -> ReadPlan {
        let mut sorted = pages.to_vec();
        sorted.sort_unstable();
        sorted.dedup();

        let mut plan = ReadPlan::default();
        let mut to_fetch: Vec<PageKey> = Vec::new();
        for &p in &sorted {
            self.clock += 1;
            if let Some(r) = self.resident.get_mut(&p) {
                r.last_access = self.clock;
                self.stats.hits += 1;
                plan.pages.push((p, PageDisposition::Hit));
            } else if let Some(w) = self.in_flight.get_mut(&p) {
                *w += 1;
                self.stats.dedup_waits += 1;
                plan.pages.push((p, PageDisposition::InFlightElsewhere));
            } else {
                self.in_flight.insert(p, 0);
                self.stats.misses += 1;
                plan.pages.push((p, PageDisposition::MustFetch));
                to_fetch.push(p);
            }
        }
        plan.fetch_runs = if self.merging_enabled {
            merge_into_runs(&to_fetch)
        } else {
            to_fetch
                .iter()
                .map(|p| Run {
                    dataset: p.dataset,
                    start: p.index,
                    count: 1,
                })
                .collect()
        };
        self.stats.runs_issued += plan.fetch_runs.len() as u64;
        self.stats.pages_fetched += plan.fetch_count() as u64;
        plan
    }

    /// Records a completed fetch: the page becomes resident (possibly
    /// evicting LRU pages) and its in-flight mark is cleared. Returns the
    /// pages evicted to make room.
    pub fn complete_fetch(&mut self, page: PageKey, data: PageData) -> Vec<PageKey> {
        debug_assert!(
            self.in_flight.contains_key(&page),
            "complete_fetch for page that was never planned: {page:?}"
        );
        self.in_flight.remove(&page);
        let mut evicted = Vec::new();
        while self.resident.len() >= self.capacity_pages {
            // Evict the least recently used resident page.
            let victim = self
                .resident
                .iter()
                .min_by_key(|(_, r)| r.last_access)
                .map(|(&k, _)| k);
            match victim {
                Some(v) => {
                    self.resident.remove(&v);
                    self.stats.evictions += 1;
                    evicted.push(v);
                }
                None => break,
            }
        }
        self.clock += 1;
        self.resident.insert(
            page,
            Resident {
                data,
                last_access: self.clock,
            },
        );
        evicted
    }

    /// Abandons an in-flight fetch (e.g. the read failed); waiting requests
    /// must retry.
    pub fn abort_fetch(&mut self, page: PageKey) {
        self.in_flight.remove(&page);
    }

    /// Reads a resident page's data, refreshing LRU recency. `None` when
    /// not resident.
    pub fn get(&mut self, page: PageKey) -> Option<PageData> {
        self.clock += 1;
        let clock = self.clock;
        self.resident.get_mut(&page).map(|r| {
            r.last_access = clock;
            r.data.clone()
        })
    }

    /// Drops all residency and in-flight state (counters are kept).
    pub fn clear(&mut self) {
        self.resident.clear();
        self.in_flight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmqs_core::DatasetId;

    fn pk(i: u64) -> PageKey {
        PageKey::new(DatasetId(0), i)
    }

    fn cache(pages: u64) -> PageCacheCore {
        PageCacheCore::new(pages * 64, 64)
    }

    #[test]
    fn plan_marks_misses_in_flight_and_merges() {
        let mut ps = cache(10);
        let plan = ps.plan_read(&[pk(1), pk(2), pk(3), pk(7)]);
        assert_eq!(plan.fetch_runs.len(), 2);
        assert_eq!(plan.fetch_count(), 4);
        assert_eq!(plan.hit_count(), 0);
        assert!(ps.is_in_flight(pk(1)) && ps.is_in_flight(pk(7)));
    }

    #[test]
    fn second_request_waits_instead_of_duplicating_io() {
        let mut ps = cache(10);
        let _first = ps.plan_read(&[pk(1)]);
        let second = ps.plan_read(&[pk(1)]);
        assert_eq!(second.fetch_count(), 0);
        assert_eq!(second.waits().collect::<Vec<_>>(), vec![pk(1)]);
        assert_eq!(ps.stats().dedup_waits, 1);
    }

    #[test]
    fn completed_fetch_becomes_hit() {
        let mut ps = cache(10);
        ps.plan_read(&[pk(1)]);
        ps.complete_fetch(pk(1), PageData::Virtual);
        assert!(ps.is_resident(pk(1)));
        let plan = ps.plan_read(&[pk(1)]);
        assert_eq!(plan.hit_count(), 1);
        assert_eq!(plan.fetch_count(), 0);
        assert_eq!(ps.stats().hits, 1);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut ps = cache(2);
        for i in 0..2 {
            ps.plan_read(&[pk(i)]);
            ps.complete_fetch(pk(i), PageData::Virtual);
        }
        // Touch page 0 so page 1 is the LRU victim.
        assert!(ps.get(pk(0)).is_some());
        ps.plan_read(&[pk(5)]);
        let evicted = ps.complete_fetch(pk(5), PageData::Virtual);
        assert_eq!(evicted, vec![pk(1)]);
        assert!(ps.is_resident(pk(0)) && ps.is_resident(pk(5)));
        assert_eq!(ps.stats().evictions, 1);
    }

    #[test]
    fn merging_can_be_disabled() {
        let mut ps = cache(10);
        ps.set_merging(false);
        let plan = ps.plan_read(&[pk(1), pk(2), pk(3)]);
        assert_eq!(plan.fetch_runs.len(), 3);
        assert!(plan.fetch_runs.iter().all(|r| r.count == 1));
    }

    #[test]
    fn duplicate_pages_in_one_request_counted_once() {
        let mut ps = cache(10);
        let plan = ps.plan_read(&[pk(4), pk(4), pk(4)]);
        assert_eq!(plan.pages.len(), 1);
        assert_eq!(plan.fetch_count(), 1);
    }

    #[test]
    fn abort_fetch_allows_refetch() {
        let mut ps = cache(10);
        ps.plan_read(&[pk(1)]);
        ps.abort_fetch(pk(1));
        let plan = ps.plan_read(&[pk(1)]);
        assert_eq!(plan.fetch_count(), 1);
    }

    #[test]
    fn get_missing_page_is_none() {
        let mut ps = cache(2);
        assert!(ps.get(pk(9)).is_none());
    }

    #[test]
    fn capacity_minimum_one_page() {
        let ps = PageCacheCore::new(0, 64);
        assert_eq!(ps.capacity_pages(), 1);
    }

    #[test]
    fn clear_drops_state() {
        let mut ps = cache(4);
        ps.plan_read(&[pk(1)]);
        ps.complete_fetch(pk(1), PageData::Virtual);
        ps.clear();
        assert_eq!(ps.resident_pages(), 0);
        assert!(!ps.is_in_flight(pk(1)));
    }

    #[test]
    fn stats_track_runs_and_pages() {
        let mut ps = cache(16);
        ps.plan_read(&[pk(0), pk(1), pk(5)]);
        let s = ps.stats();
        assert_eq!(s.runs_issued, 2);
        assert_eq!(s.pages_fetched, 3);
        assert_eq!(s.misses, 3);
    }
}
