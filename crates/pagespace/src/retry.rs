//! Bounded retry with exponential backoff and deterministic jitter.
//!
//! Transient I/O faults (see `vmqs-storage`'s fault taxonomy) are retried
//! by the engines under this policy. The schedule is a pure function of
//! `(policy, seed, attempt)`:
//!
//! * the **base schedule** doubles from [`RetryPolicy::base_delay`] and is
//!   capped at [`RetryPolicy::max_delay`] — bounded and monotone
//!   nondecreasing;
//! * **jitter** adds up to `jitter × delay` on top, drawn deterministically
//!   from the seed, so concurrent retriers decorrelate without giving up
//!   replayability. The jittered delay always stays within
//!   `[delay, delay × (1 + jitter)]`.

use std::time::Duration;

/// Retry policy for transient page-read failures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt (0 = fail fast). A read is
    /// attempted at most `1 + max_retries` times.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Cap on the un-jittered backoff.
    pub max_delay: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is stretched by up to this
    /// fraction of itself.
    pub jitter: f64,
}

impl RetryPolicy {
    /// The engines' default: 4 retries, 500 µs base doubling to a 10 ms
    /// cap, 25% jitter. Worst-case added latency per page ≈ 27 ms —
    /// far below any sensible query timeout, so retries never mask
    /// deadline enforcement.
    pub fn default_io() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_micros(500),
            max_delay: Duration::from_millis(10),
            jitter: 0.25,
        }
    }

    /// No retries: every transient fault is surfaced immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter: 0.0,
        }
    }

    /// Builder-style retry-count override.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// The un-jittered backoff before retry `attempt` (1-based): monotone
    /// nondecreasing, `base · 2^(attempt−1)` capped at `max_delay`.
    pub fn base_backoff(&self, attempt: u32) -> Duration {
        debug_assert!(attempt >= 1, "attempt is 1-based");
        let shift = (attempt - 1).min(40);
        self.base_delay
            .saturating_mul(1u32 << shift.min(31))
            .min(self.max_delay)
    }

    /// The delay to sleep before retry `attempt` (1-based), with
    /// deterministic jitter from `seed`. Always within
    /// `[base_backoff, base_backoff × (1 + jitter)]`.
    pub fn backoff_delay(&self, attempt: u32, seed: u64) -> Duration {
        let base = self.base_backoff(attempt);
        if self.jitter <= 0.0 || base.is_zero() {
            return base;
        }
        // SplitMix64 of (seed, attempt) → uniform in [0, 1).
        let mut z = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(attempt as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let u = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
        base + base.mul_f64(self.jitter.min(1.0) * u)
    }

    /// Total un-jittered backoff paid by a read that exhausts all retries.
    pub fn worst_case_backoff(&self) -> Duration {
        (1..=self.max_retries)
            .map(|a| self.base_backoff(a))
            .sum::<Duration>()
            .mul_f64(1.0 + self.jitter.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_schedule_doubles_then_caps() {
        let p = RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(8),
            jitter: 0.0,
        };
        let ms: Vec<u128> = (1..=6).map(|a| p.base_backoff(a).as_millis()).collect();
        assert_eq!(ms, vec![1, 2, 4, 8, 8, 8]);
    }

    #[test]
    fn base_schedule_is_monotone_and_bounded() {
        let p = RetryPolicy::default_io();
        let mut prev = Duration::ZERO;
        for a in 1..=64 {
            let d = p.base_backoff(a);
            assert!(d >= prev, "attempt {a}: {d:?} < {prev:?}");
            assert!(d <= p.max_delay);
            prev = d;
        }
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default_io();
        for seed in [0u64, 1, 42, u64::MAX] {
            for a in 1..=8 {
                let d1 = p.backoff_delay(a, seed);
                let d2 = p.backoff_delay(a, seed);
                assert_eq!(d1, d2, "seed {seed} attempt {a} not deterministic");
                let base = p.base_backoff(a);
                assert!(d1 >= base);
                assert!(d1 <= base.mul_f64(1.0 + p.jitter) + Duration::from_nanos(1));
            }
        }
        // Different seeds must actually decorrelate somewhere.
        assert_ne!(p.backoff_delay(3, 1), p.backoff_delay(3, 2));
    }

    #[test]
    fn zero_policy_never_sleeps() {
        let p = RetryPolicy::none();
        assert_eq!(p.backoff_delay(1, 99), Duration::ZERO);
        assert_eq!(p.worst_case_backoff(), Duration::ZERO);
    }

    #[test]
    fn worst_case_bounds_the_sum() {
        let p = RetryPolicy::default_io();
        let total: Duration = (1..=p.max_retries).map(|a| p.backoff_delay(a, 7)).sum();
        assert!(total <= p.worst_case_backoff());
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow() {
        let p = RetryPolicy {
            max_retries: u32::MAX,
            base_delay: Duration::from_secs(1),
            max_delay: Duration::from_secs(30),
            jitter: 1.0,
        };
        assert_eq!(p.base_backoff(u32::MAX), Duration::from_secs(30));
        assert!(p.backoff_delay(u32::MAX, 0) <= Duration::from_secs(60));
    }
}
