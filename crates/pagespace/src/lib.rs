//! # vmqs-pagespace
//!
//! The Page Space Manager (PS) of the VMQS middleware (paper §2): a
//! fixed-size page cache standing between query execution and the data
//! sources. All input data is read in fixed-size pages (64 KB in the
//! paper's deployment); the PS caches retrieved pages, **merges and
//! reorders overlapping I/O requests** into contiguous runs, and
//! **eliminates duplicate requests** from concurrent queries so each page
//! is fetched at most once at a time.
//!
//! This crate holds the engine-agnostic core ([`PageCacheCore`]); the
//! threaded server adds blocking/wakeup around it, and the discrete-event
//! simulator turns the planned runs into disk events. Sharing the core
//! guarantees both engines exhibit identical caching behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod key;
mod retry;

pub use cache::{PageCacheCore, PageData, PageDisposition, PsStats, ReadPlan};
pub use key::{merge_into_runs, PageKey, Run};
pub use retry::RetryPolicy;
