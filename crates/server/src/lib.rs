//! # vmqs-server
//!
//! The real multithreaded query server engine (paper §2): a fixed-size
//! pool of query threads over the scheduling graph, the Data Store
//! Manager, and the Page Space Manager, executing actual Virtual
//! Microscope queries against actual page data.
//!
//! Use this engine to run the system for real — examples, correctness
//! tests, and laptop-scale workloads. The paper-scale *performance*
//! experiments (24 CPUs, 7.5 GB datasets, 2002 disks) are reproduced
//! deterministically by the sibling `vmqs-sim` crate, which drives the
//! same scheduling graph, data store, and page cache cores in virtual
//! time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod config;
mod engine;
mod error;
mod pages;
mod result;

pub use app::{AppExecutor, AppOutcome, VmExecutor};
pub use config::ServerConfig;
pub use engine::{QueryHandle, QueryServer};
pub use error::ServerError;
pub use pages::{PageSpaceSession, SharedPageSpace};
pub use result::{AnswerPath, QueryRecord, QueryResult, ServerSummary};
// The overload knobs live in vmqs-core (shared with the simulator);
// re-exported here so server users configure admission without a direct
// core dependency.
pub use vmqs_core::OverloadConfig;
