//! Thread-safe Page Space Manager front-end for the real execution engine.
//!
//! Wraps the engine-agnostic [`PageCacheCore`] with a mutex and condition
//! variable and performs actual reads through a [`DataSource`]. Concurrent
//! queries needing the same page block on the in-flight fetch instead of
//! issuing duplicates, and a batch prefetch path reads merged runs so the
//! I/O-request merging of the paper is exercised for real.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use vmqs_core::DatasetId;
use vmqs_pagespace::{PageCacheCore, PageData, PageDisposition, PageKey, PsStats};
use vmqs_storage::DataSource;

/// Shared Page Space Manager.
pub struct SharedPageSpace {
    core: Mutex<PageCacheCore>,
    resident_cv: Condvar,
    source: Arc<dyn DataSource>,
    page_size: usize,
}

impl SharedPageSpace {
    /// Creates a page space of `budget_bytes` over `source`.
    pub fn new(budget_bytes: u64, page_size: usize, source: Arc<dyn DataSource>) -> Self {
        SharedPageSpace {
            core: Mutex::new(PageCacheCore::new(budget_bytes, page_size as u64)),
            resident_cv: Condvar::new(),
            source,
            page_size,
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PsStats {
        self.core.lock().stats()
    }

    /// Enables/disables run merging (ablation knob).
    pub fn set_merging(&self, enabled: bool) {
        self.core.lock().set_merging(enabled);
    }

    /// Fetches a batch of chunks (pages) of one dataset, blocking until all
    /// are resident or fetched by this caller; duplicate in-flight pages
    /// are awaited rather than re-read. Reads happen outside the lock, run
    /// by run.
    pub fn fetch_pages(&self, dataset: DatasetId, indices: &[u64]) -> std::io::Result<()> {
        let keys: Vec<PageKey> = indices.iter().map(|&i| PageKey::new(dataset, i)).collect();
        let plan = self.core.lock().plan_read(&keys);

        // Read this caller's merged runs outside the lock.
        for run in &plan.fetch_runs {
            for page in run.pages() {
                match self
                    .source
                    .read_page(page.dataset, page.index, self.page_size)
                {
                    Ok(bytes) => {
                        let mut core = self.core.lock();
                        core.complete_fetch(page, PageData::Bytes(Arc::new(bytes)));
                        drop(core);
                        self.resident_cv.notify_all();
                    }
                    Err(e) => {
                        self.core.lock().abort_fetch(page);
                        self.resident_cv.notify_all();
                        return Err(e);
                    }
                }
            }
        }

        // Wait for pages being fetched by other callers.
        let waits: Vec<PageKey> = plan
            .pages
            .iter()
            .filter(|(_, d)| *d == PageDisposition::InFlightElsewhere)
            .map(|(k, _)| *k)
            .collect();
        for page in waits {
            let mut core = self.core.lock();
            loop {
                if core.is_resident(page) {
                    break;
                }
                if !core.is_in_flight(page) {
                    // The other fetch was aborted (or the page was fetched
                    // and already evicted); take over the fetch ourselves.
                    drop(core);
                    self.fetch_pages(dataset, &[page.index])?;
                    core = self.core.lock();
                    break;
                }
                self.resident_cv.wait(&mut core);
            }
        }
        Ok(())
    }

    /// Reads one page, fetching it if necessary. The common path after
    /// [`SharedPageSpace::fetch_pages`] prefetched a query's chunk set.
    pub fn read_page(&self, dataset: DatasetId, index: u64) -> std::io::Result<Arc<Vec<u8>>> {
        let key = PageKey::new(dataset, index);
        loop {
            if let Some(PageData::Bytes(b)) = self.core.lock().get(key) {
                return Ok(b);
            }
            self.fetch_pages(dataset, &[index])?;
            // Under extreme cache pressure the page may already have been
            // evicted again; retry (capacity is at least one page, and this
            // caller immediately re-reads, so progress is guaranteed in
            // practice; a pathological livelock would require another
            // thread evicting our page between the two locks every time).
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use vmqs_storage::SyntheticSource;

    /// Counts reads per page to verify duplicate elimination.
    struct CountingSource {
        inner: SyntheticSource,
        reads: AtomicU64,
    }

    impl DataSource for CountingSource {
        fn read_page(
            &self,
            dataset: DatasetId,
            index: u64,
            page_size: usize,
        ) -> std::io::Result<Vec<u8>> {
            self.reads.fetch_add(1, Ordering::Relaxed);
            // Slow the read down so concurrent requests really overlap.
            std::thread::sleep(std::time::Duration::from_millis(5));
            self.inner.read_page(dataset, index, page_size)
        }
    }

    #[test]
    fn read_page_returns_source_bytes() {
        let ps = SharedPageSpace::new(1 << 20, 256, Arc::new(SyntheticSource::new()));
        let a = ps.read_page(DatasetId(1), 3).unwrap();
        let b = SyntheticSource::new()
            .read_page(DatasetId(1), 3, 256)
            .unwrap();
        assert_eq!(*a, b);
    }

    #[test]
    fn repeated_reads_hit_cache() {
        let src = Arc::new(CountingSource {
            inner: SyntheticSource::new(),
            reads: AtomicU64::new(0),
        });
        let ps = SharedPageSpace::new(1 << 20, 256, src.clone());
        for _ in 0..5 {
            ps.read_page(DatasetId(0), 7).unwrap();
        }
        assert_eq!(src.reads.load(Ordering::Relaxed), 1);
        assert_eq!(ps.stats().misses, 1);
    }

    #[test]
    fn concurrent_readers_deduplicate_io() {
        let src = Arc::new(CountingSource {
            inner: SyntheticSource::new(),
            reads: AtomicU64::new(0),
        });
        let ps = Arc::new(SharedPageSpace::new(1 << 20, 256, src.clone()));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let ps = Arc::clone(&ps);
            handles.push(std::thread::spawn(move || {
                ps.read_page(DatasetId(0), 42).unwrap()
            }));
        }
        let results: Vec<Arc<Vec<u8>>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        // All eight threads were satisfied by a single disk read. (The
        // dedup_waits/hits split depends on how the threads interleave —
        // under heavy load they may serialize and hit via `get` — so the
        // read count is the only scheduling-independent invariant.)
        assert_eq!(src.reads.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn fetch_pages_merges_runs() {
        let ps = SharedPageSpace::new(1 << 20, 256, Arc::new(SyntheticSource::new()));
        ps.fetch_pages(DatasetId(0), &[0, 1, 2, 3, 10, 11]).unwrap();
        let s = ps.stats();
        assert_eq!(s.runs_issued, 2);
        assert_eq!(s.pages_fetched, 6);
    }

    #[test]
    fn eviction_pressure_still_serves_reads() {
        // Capacity of 2 pages; read 10 distinct pages repeatedly.
        let ps = SharedPageSpace::new(512, 256, Arc::new(SyntheticSource::new()));
        for round in 0..3 {
            for i in 0..10u64 {
                let got = ps.read_page(DatasetId(0), i).unwrap();
                let want = SyntheticSource::new()
                    .read_page(DatasetId(0), i, 256)
                    .unwrap();
                assert_eq!(*got, want, "round {round} page {i}");
            }
        }
        assert!(ps.stats().evictions > 0);
    }
}
