//! Thread-safe Page Space Manager front-end for the real execution engine.
//!
//! Wraps the engine-agnostic [`PageCacheCore`] with a mutex and condition
//! variable and performs actual reads through a [`DataSource`]. Concurrent
//! queries needing the same page block on the in-flight fetch instead of
//! issuing duplicates, and a batch prefetch path reads merged runs so the
//! I/O-request merging of the paper is exercised for real.
//!
//! ## Failure model
//!
//! Reads can fail: transient faults are retried under the configured
//! [`RetryPolicy`] (bounded exponential backoff, deterministic jitter),
//! permanent faults surface immediately, and every wait is bounded by the
//! caller's deadline when one is set (see [`PageSpaceSession`]). On any
//! failure the front-end releases **all** in-flight claims this caller
//! still holds — a failed fetch never strands peers waiting on pages the
//! failed query had claimed.
//!
//! ## Deadline semantics: queue wait consumes the budget
//!
//! A query's deadline is anchored at **submission**, not at dequeue
//! ([`crate::ServerConfig::query_timeout`]), so time spent in the
//! admission queue deliberately consumes the I/O budget a
//! [`PageSpaceSession`] enforces. This is the client-facing reading of a
//! timeout — "answer me within T" — and it is what makes the deadline an
//! overload backstop: under a long queue, stale queries cancel at dequeue
//! (before any page I/O) instead of occupying a worker to produce an
//! answer nobody is waiting for. The engine re-checks the deadline first
//! thing after dequeue, so a fully queue-spent budget costs zero reads.
//! Callers who want a pure execution budget should bound admission
//! instead (`max_pending`, DESIGN.md §10), which keeps queue waits — and
//! therefore the consumed budget — short. Covered by the engine test
//! `deadline_is_anchored_at_submit_so_queue_wait_counts`.

use crate::error::{deadline_error, is_deadline};
use std::time::{Duration, Instant};
use vmqs_core::clock;
use vmqs_core::sync::{Arc, Condvar, Mutex};
use vmqs_core::{DatasetId, QueryId};
use vmqs_obs::{EventKind, Obs, PageMetrics};
use vmqs_pagespace::{PageCacheCore, PageData, PageDisposition, PageKey, PsStats, RetryPolicy};
use vmqs_storage::{is_transient, DataSource};

/// Shared Page Space Manager.
pub struct SharedPageSpace {
    core: Mutex<PageCacheCore>,
    resident_cv: Condvar,
    source: Arc<dyn DataSource>,
    page_size: usize,
    retry: RetryPolicy,
    retry_seed: u64,
    /// Observability sink: `PageRead` events go to `obs.log`, I/O counters
    /// to the pre-resolved `pmet` handles. Both unset for standalone use.
    obs: Option<Arc<Obs>>,
    pmet: Option<PageMetrics>,
}

impl SharedPageSpace {
    /// Creates a page space of `budget_bytes` over `source` with the
    /// default I/O retry policy.
    pub fn new(budget_bytes: u64, page_size: usize, source: Arc<dyn DataSource>) -> Self {
        SharedPageSpace::with_retry(
            budget_bytes,
            page_size,
            source,
            RetryPolicy::default_io(),
            0,
        )
    }

    /// Creates a page space with an explicit retry policy and jitter seed.
    pub fn with_retry(
        budget_bytes: u64,
        page_size: usize,
        source: Arc<dyn DataSource>,
        retry: RetryPolicy,
        retry_seed: u64,
    ) -> Self {
        SharedPageSpace::with_retry_obs(budget_bytes, page_size, source, retry, retry_seed, None)
    }

    /// Like [`SharedPageSpace::with_retry`], additionally wiring an
    /// observability handle that receives `PageRead` events and I/O
    /// counters.
    pub fn with_retry_obs(
        budget_bytes: u64,
        page_size: usize,
        source: Arc<dyn DataSource>,
        retry: RetryPolicy,
        retry_seed: u64,
        obs: Option<Arc<Obs>>,
    ) -> Self {
        let pmet = obs.as_ref().map(|o| PageMetrics::resolve(&o.metrics));
        SharedPageSpace {
            core: Mutex::new(PageCacheCore::new(budget_bytes, page_size as u64)),
            resident_cv: Condvar::new(),
            source,
            page_size,
            retry,
            retry_seed,
            obs,
            pmet,
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PsStats {
        self.core.lock().stats()
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Enables/disables run merging (ablation knob).
    pub fn set_merging(&self, enabled: bool) {
        self.core.lock().set_merging(enabled);
    }

    /// Opens a deadline-scoped view for one query's reads. All fetches and
    /// waits through the session fail with a deadline error once
    /// `deadline` passes; `None` never times out.
    pub fn session(&self, deadline: Option<Instant>) -> PageSpaceSession<'_> {
        PageSpaceSession {
            ps: self,
            deadline,
            query: None,
        }
    }

    /// Like [`SharedPageSpace::session`], attributing the session's reads
    /// to `query` so `PageRead` events carry the owning query's id.
    pub fn session_for(&self, query: QueryId, deadline: Option<Instant>) -> PageSpaceSession<'_> {
        PageSpaceSession {
            ps: self,
            deadline,
            query: Some(query),
        }
    }

    /// Fetches a batch of chunks (pages) of one dataset, blocking until all
    /// are resident or fetched by this caller; duplicate in-flight pages
    /// are awaited rather than re-read. Reads happen outside the lock, run
    /// by run. Equivalent to a session with no deadline.
    pub fn fetch_pages(&self, dataset: DatasetId, indices: &[u64]) -> std::io::Result<()> {
        self.fetch_pages_until(dataset, indices, None, None)
    }

    /// Reads one page, fetching it if necessary. The common path after
    /// [`SharedPageSpace::fetch_pages`] prefetched a query's chunk set.
    pub fn read_page(&self, dataset: DatasetId, index: u64) -> std::io::Result<Arc<Vec<u8>>> {
        self.read_page_until(dataset, index, None, None)
    }

    /// Emits a `PageRead` event for `query` when the event log is on.
    fn note_page_read(&self, query: Option<QueryId>, cached: bool, retried: bool) {
        if let (Some(obs), Some(q)) = (&self.obs, query) {
            obs.log.log(q, EventKind::PageRead { cached, retried });
        }
    }

    /// One page read against the backing source, retrying transient
    /// faults under the policy; returns the bytes plus the number of
    /// retries that were needed. Fault/retry accounting lands in
    /// [`PsStats`]; no locks are held across reads or backoff sleeps.
    fn read_with_retry(
        &self,
        page: PageKey,
        deadline: Option<Instant>,
    ) -> std::io::Result<(Vec<u8>, u32)> {
        let mut attempt: u32 = 0;
        loop {
            if deadline.is_some_and(|d| clock::now() >= d) {
                self.core.lock().note_failed_read();
                return Err(deadline_error());
            }
            match self
                .source
                .read_page(page.dataset, page.index, self.page_size)
            {
                Ok(bytes) => return Ok((bytes, attempt)),
                Err(e) => {
                    self.core.lock().note_read_fault();
                    if let Some(pm) = &self.pmet {
                        pm.read_faults.inc();
                    }
                    if !is_transient(&e) || is_deadline(&e) || attempt >= self.retry.max_retries {
                        self.core.lock().note_failed_read();
                        return Err(e);
                    }
                    attempt += 1;
                    self.core.lock().note_read_retry();
                    if let Some(pm) = &self.pmet {
                        pm.read_retries.inc();
                    }
                    // Jitter stream decorrelates by page so concurrent
                    // retriers don't thundering-herd the device, while
                    // staying deterministic per (seed, page, attempt).
                    let seed = self
                        .retry_seed
                        .wrapping_add(page.index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        ^ page.dataset.raw();
                    let mut delay = self.retry.backoff_delay(attempt, seed);
                    if let Some(d) = deadline {
                        // Never sleep past the deadline; the loop head
                        // converts an expired deadline into a typed error.
                        delay = delay.min(d.saturating_duration_since(clock::now()));
                    }
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
            }
        }
    }

    /// Releases every in-flight claim in `claimed` that this caller has
    /// not completed, and wakes waiters so they can take over or fail.
    fn release_claims(&self, claimed: &[PageKey]) {
        if claimed.is_empty() {
            return;
        }
        let mut core = self.core.lock();
        for &p in claimed {
            core.abort_fetch(p);
        }
        drop(core);
        self.resident_cv.notify_all();
    }

    /// Deadline-aware batch fetch; see [`SharedPageSpace::fetch_pages`].
    fn fetch_pages_until(
        &self,
        dataset: DatasetId,
        indices: &[u64],
        deadline: Option<Instant>,
        query: Option<QueryId>,
    ) -> std::io::Result<()> {
        let keys: Vec<PageKey> = indices.iter().map(|&i| PageKey::new(dataset, i)).collect();
        let plan = self.core.lock().plan_read(&keys);

        if let Some(pm) = &self.pmet {
            pm.page_reads.add(plan.pages.len() as u64);
            let hits = plan
                .pages
                .iter()
                .filter(|(_, d)| *d != PageDisposition::MustFetch)
                .count();
            pm.page_hits.add(hits as u64);
            pm.runs_issued.add(plan.fetch_runs.len() as u64);
            let fetched: usize = plan.fetch_runs.iter().map(|r| r.pages().count()).sum();
            pm.pages_fetched.add(fetched as u64);
        }
        if self.obs.as_ref().is_some_and(|o| o.log.enabled()) {
            // Already-resident and peer-in-flight pages are satisfied from
            // the cache from this query's perspective; MustFetch pages get
            // their event after the read so `retried` is known.
            let cached = plan
                .pages
                .iter()
                .filter(|(_, d)| *d != PageDisposition::MustFetch)
                .count();
            for _ in 0..cached {
                self.note_page_read(query, true, false);
            }
        }

        // Every MustFetch page is now claimed (in-flight) by this caller;
        // on any failure all still-unfetched claims must be released.
        let mut outstanding: Vec<PageKey> = plan
            .pages
            .iter()
            .filter(|(_, d)| *d == PageDisposition::MustFetch)
            .map(|(k, _)| *k)
            .collect();

        // Read this caller's merged runs outside the lock.
        for run in &plan.fetch_runs {
            for page in run.pages() {
                match self.read_with_retry(page, deadline) {
                    Ok((bytes, attempts)) => {
                        self.note_page_read(query, false, attempts > 0);
                        outstanding.retain(|&p| p != page);
                        let mut core = self.core.lock();
                        core.complete_fetch(page, PageData::Bytes(Arc::new(bytes)));
                        drop(core);
                        self.resident_cv.notify_all();
                    }
                    Err(e) => {
                        self.release_claims(&outstanding);
                        return Err(e);
                    }
                }
            }
        }

        // Wait for pages being fetched by other callers.
        let waits: Vec<PageKey> = plan
            .pages
            .iter()
            .filter(|(_, d)| *d == PageDisposition::InFlightElsewhere)
            .map(|(k, _)| *k)
            .collect();
        for page in waits {
            let mut core = self.core.lock();
            loop {
                if core.is_resident(page) {
                    break;
                }
                if !core.is_in_flight(page) {
                    // The other fetch was aborted (or the page was fetched
                    // and already evicted); take over the fetch ourselves.
                    drop(core);
                    self.fetch_pages_until(dataset, &[page.index], deadline, query)?;
                    core = self.core.lock();
                    break;
                }
                match deadline {
                    None => self.resident_cv.wait(&mut core),
                    Some(d) => {
                        let now = clock::now();
                        if now >= d {
                            core.note_failed_read();
                            return Err(deadline_error());
                        }
                        self.resident_cv.wait_for(&mut core, d - now);
                    }
                }
            }
        }
        Ok(())
    }

    /// Deadline-aware single-page read; see [`SharedPageSpace::read_page`].
    fn read_page_until(
        &self,
        dataset: DatasetId,
        index: u64,
        deadline: Option<Instant>,
        query: Option<QueryId>,
    ) -> std::io::Result<Arc<Vec<u8>>> {
        let key = PageKey::new(dataset, index);
        loop {
            if let Some(PageData::Bytes(b)) = self.core.lock().get(key) {
                return Ok(b);
            }
            self.fetch_pages_until(dataset, &[index], deadline, query)?;
            // Under extreme cache pressure the page may already have been
            // evicted again; retry (capacity is at least one page, and this
            // caller immediately re-reads, so progress is guaranteed in
            // practice; a pathological livelock would require another
            // thread evicting our page between the two locks every time).
        }
    }
}

/// A deadline-scoped view of the Page Space for one query's execution.
/// Application executors read through this instead of the raw
/// [`SharedPageSpace`], so every I/O wait — source reads, backoff sleeps,
/// waits on peers' in-flight fetches — observes the query's deadline.
pub struct PageSpaceSession<'a> {
    ps: &'a SharedPageSpace,
    deadline: Option<Instant>,
    query: Option<QueryId>,
}

impl PageSpaceSession<'_> {
    /// The absolute deadline, when one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time left before the deadline (`None` = unbounded).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(clock::now()))
    }

    /// Fails with a deadline error once the deadline has passed; cheap
    /// enough for applications to call between compute stages.
    pub fn check_deadline(&self) -> std::io::Result<()> {
        match self.deadline {
            Some(d) if clock::now() >= d => Err(deadline_error()),
            _ => Ok(()),
        }
    }

    /// Batch fetch; see [`SharedPageSpace::fetch_pages`].
    pub fn fetch_pages(&self, dataset: DatasetId, indices: &[u64]) -> std::io::Result<()> {
        self.ps
            .fetch_pages_until(dataset, indices, self.deadline, self.query)
    }

    /// Single-page read; see [`SharedPageSpace::read_page`].
    pub fn read_page(&self, dataset: DatasetId, index: u64) -> std::io::Result<Arc<Vec<u8>>> {
        self.ps
            .read_page_until(dataset, index, self.deadline, self.query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use vmqs_storage::{FaultConfig, FaultInjectingSource, SyntheticSource};

    /// Counts reads per page to verify duplicate elimination.
    struct CountingSource {
        inner: SyntheticSource,
        reads: AtomicU64,
    }

    impl DataSource for CountingSource {
        fn read_page(
            &self,
            dataset: DatasetId,
            index: u64,
            page_size: usize,
        ) -> std::io::Result<Vec<u8>> {
            self.reads.fetch_add(1, Ordering::Relaxed);
            // Slow the read down so concurrent requests really overlap.
            std::thread::sleep(std::time::Duration::from_millis(5));
            self.inner.read_page(dataset, index, page_size)
        }
    }

    #[test]
    fn read_page_returns_source_bytes() {
        let ps = SharedPageSpace::new(1 << 20, 256, Arc::new(SyntheticSource::new()));
        let a = ps.read_page(DatasetId(1), 3).unwrap();
        let b = SyntheticSource::new()
            .read_page(DatasetId(1), 3, 256)
            .unwrap();
        assert_eq!(*a, b);
    }

    #[test]
    fn repeated_reads_hit_cache() {
        let src = Arc::new(CountingSource {
            inner: SyntheticSource::new(),
            reads: AtomicU64::new(0),
        });
        let ps = SharedPageSpace::new(1 << 20, 256, src.clone());
        for _ in 0..5 {
            ps.read_page(DatasetId(0), 7).unwrap();
        }
        assert_eq!(src.reads.load(Ordering::Relaxed), 1);
        assert_eq!(ps.stats().misses, 1);
    }

    #[test]
    fn concurrent_readers_deduplicate_io() {
        let src = Arc::new(CountingSource {
            inner: SyntheticSource::new(),
            reads: AtomicU64::new(0),
        });
        let ps = Arc::new(SharedPageSpace::new(1 << 20, 256, src.clone()));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let ps = Arc::clone(&ps);
            handles.push(std::thread::spawn(move || {
                ps.read_page(DatasetId(0), 42).unwrap()
            }));
        }
        let results: Vec<Arc<Vec<u8>>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        // All eight threads were satisfied by a single disk read. (The
        // dedup_waits/hits split depends on how the threads interleave —
        // under heavy load they may serialize and hit via `get` — so the
        // read count is the only scheduling-independent invariant.)
        assert_eq!(src.reads.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn fetch_pages_merges_runs() {
        let ps = SharedPageSpace::new(1 << 20, 256, Arc::new(SyntheticSource::new()));
        ps.fetch_pages(DatasetId(0), &[0, 1, 2, 3, 10, 11]).unwrap();
        let s = ps.stats();
        assert_eq!(s.runs_issued, 2);
        assert_eq!(s.pages_fetched, 6);
    }

    #[test]
    fn eviction_pressure_still_serves_reads() {
        // Capacity of 2 pages; read 10 distinct pages repeatedly.
        let ps = SharedPageSpace::new(512, 256, Arc::new(SyntheticSource::new()));
        for round in 0..3 {
            for i in 0..10u64 {
                let got = ps.read_page(DatasetId(0), i).unwrap();
                let want = SyntheticSource::new()
                    .read_page(DatasetId(0), i, 256)
                    .unwrap();
                assert_eq!(*got, want, "round {round} page {i}");
            }
        }
        assert!(ps.stats().evictions > 0);
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        // 60% transient rate with 8 retries: every page clears eventually,
        // and data is byte-identical to the clean source.
        let faulty =
            FaultInjectingSource::new(SyntheticSource::new(), FaultConfig::transient(0.6, 42));
        let policy = RetryPolicy {
            max_retries: 16,
            base_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(100),
            jitter: 0.25,
        };
        let ps = SharedPageSpace::with_retry(1 << 20, 256, Arc::new(faulty), policy, 1);
        for i in 0..20u64 {
            let got = ps.read_page(DatasetId(3), i).unwrap();
            let want = SyntheticSource::new()
                .read_page(DatasetId(3), i, 256)
                .unwrap();
            assert_eq!(*got, want, "page {i}");
        }
        let s = ps.stats();
        assert!(s.read_faults > 0, "60% rate must inject something");
        assert_eq!(s.read_retries, s.read_faults, "every fault was retried");
        assert_eq!(s.failed_reads, 0);
    }

    #[test]
    fn permanent_faults_fail_without_retry() {
        let faulty = FaultInjectingSource::new(
            SyntheticSource::new(),
            FaultConfig {
                permanent_rate: 1.0,
                ..FaultConfig::none()
            },
        );
        let ps = SharedPageSpace::new(1 << 20, 256, Arc::new(faulty));
        let e = ps.read_page(DatasetId(0), 0).unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
        let s = ps.stats();
        assert_eq!(s.read_retries, 0, "permanent faults must not be retried");
        assert_eq!(s.failed_reads, 1);
    }

    #[test]
    fn exhausted_retries_surface_the_transient_error() {
        let faulty =
            FaultInjectingSource::new(SyntheticSource::new(), FaultConfig::transient(1.0, 7));
        let policy = RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_micros(1),
            max_delay: Duration::from_micros(4),
            jitter: 0.0,
        };
        let ps = SharedPageSpace::with_retry(1 << 20, 256, Arc::new(faulty), policy, 0);
        let e = ps.read_page(DatasetId(0), 5).unwrap_err();
        assert!(is_transient(&e));
        let s = ps.stats();
        assert_eq!(s.read_retries, 3);
        assert_eq!(s.read_faults, 4, "initial attempt + 3 retries");
        assert_eq!(s.failed_reads, 1);
    }

    #[test]
    fn failed_fetch_releases_all_claims() {
        // Page 0 permanently poisoned (rate 1.0 poisons everything); a
        // batch fetch of pages 0..6 must fail AND leave no page in-flight,
        // so a later caller on a different source path can claim them.
        let faulty = FaultInjectingSource::new(
            SyntheticSource::new(),
            FaultConfig {
                permanent_rate: 1.0,
                ..FaultConfig::none()
            },
        );
        let ps = SharedPageSpace::new(1 << 20, 256, Arc::new(faulty));
        assert!(ps.fetch_pages(DatasetId(0), &[0, 1, 2, 3, 4, 5]).is_err());
        // All claims released: a retrying caller re-plans every page as
        // MustFetch (misses grow by 6), none as InFlightElsewhere.
        let before = ps.stats();
        assert!(ps.fetch_pages(DatasetId(0), &[0, 1, 2, 3, 4, 5]).is_err());
        let after = ps.stats();
        assert_eq!(after.misses - before.misses, 6);
        assert_eq!(after.dedup_waits, before.dedup_waits);
    }

    #[test]
    fn session_deadline_cancels_reads() {
        let ps = SharedPageSpace::new(1 << 20, 256, Arc::new(SyntheticSource::new()));
        let session = ps.session(Some(clock::now() - Duration::from_millis(1)));
        let e = session.read_page(DatasetId(0), 0).unwrap_err();
        assert!(crate::error::is_deadline(&e));
        assert!(session.check_deadline().is_err());
        assert_eq!(session.remaining(), Some(Duration::ZERO));
        // An unbounded session still works.
        let free = ps.session(None);
        assert!(free.check_deadline().is_ok());
        assert!(free.read_page(DatasetId(0), 0).is_ok());
    }

    #[test]
    fn deadline_bounds_retry_backoff() {
        // Permanent 100% transient faults + huge backoff: the deadline must
        // cut the retry loop short rather than sleeping the full schedule.
        let faulty =
            FaultInjectingSource::new(SyntheticSource::new(), FaultConfig::transient(1.0, 1));
        let policy = RetryPolicy {
            max_retries: 1000,
            base_delay: Duration::from_secs(1),
            max_delay: Duration::from_secs(1),
            jitter: 0.0,
        };
        let ps = SharedPageSpace::with_retry(1 << 20, 256, Arc::new(faulty), policy, 0);
        let session = ps.session(Some(clock::now() + Duration::from_millis(20)));
        let t0 = clock::now();
        let e = session.read_page(DatasetId(0), 0).unwrap_err();
        assert!(t0.elapsed() < Duration::from_millis(500));
        assert!(crate::error::is_deadline(&e));
    }
}
