//! Server configuration.

use std::path::PathBuf;
use std::time::Duration;
use vmqs_core::{OverloadConfig, Strategy};
use vmqs_datastore::EvictionPolicy;
use vmqs_pagespace::RetryPolicy;
use vmqs_storage::{ChaosConfig, FaultConfig};

/// Configuration of the multithreaded query server.
///
/// Mirrors the knobs varied in the paper's evaluation: the ranking
/// strategy, the size of the query thread pool ("the maximum number of
/// concurrent queries allowed in the system"), and the memory allotted to
/// the Data Store and Page Space managers.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Ranking strategy for the scheduling graph.
    pub strategy: Strategy,
    /// Query threads in the fixed-size pool (paper §2: "typically the
    /// number of processors available in the SMP").
    pub num_threads: usize,
    /// Data Store Manager budget in bytes (0 disables result caching).
    pub ds_budget: u64,
    /// Page Space Manager budget in bytes.
    pub ps_budget: u64,
    /// Whether a query may block waiting for an EXECUTING query whose
    /// result it can reuse (guarded by the deadlock-avoidance check). When
    /// false, overlapping in-flight work is simply recomputed.
    pub allow_blocking: bool,
    /// Data Store eviction policy (LRU in the paper's system).
    pub ds_policy: EvictionPolicy,
    /// Cell side (base-resolution pixels) of the Data Store's grid index.
    /// Pick roughly the footprint of a typical cached result.
    pub index_cell: u32,
    /// Retry policy for transient page-read faults (DESIGN.md §8).
    pub retry: RetryPolicy,
    /// Seed for the deterministic retry-backoff jitter.
    pub retry_seed: u64,
    /// Per-query deadline measured from submission; `None` disables
    /// timeouts. An expired query is cancelled cooperatively and resolves
    /// its handle with a timeout error.
    pub query_timeout: Option<Duration>,
    /// Record typed scheduler events in the observability log (DESIGN.md
    /// §9). Metrics counters are always on; this gates only the event log.
    pub observe: bool,
    /// Start the worker pool paused: workers sleep until
    /// [`crate::QueryServer::resume_workers`] is called, so a whole batch
    /// can be submitted before any dequeue happens — the deterministic
    /// setup the scheduler-conformance harness replays against the
    /// simulator.
    pub start_paused: bool,
    /// Overload management: bounded admission, per-client rate limiting,
    /// degradation, and shedding (DESIGN.md §10). Disabled by default.
    pub overload: OverloadConfig,
    /// Seed for each worker's steal-victim permutation (DESIGN.md §12).
    /// Fixed by default so steal order is reproducible run to run; it has
    /// no effect at 1 worker (a single shard never steals).
    pub steal_seed: u64,
    /// Grafting onto in-flight queries (DESIGN.md §13): producers reserve
    /// a subscribable Data Store entry before computing, and an admitted
    /// query that overlaps an EXECUTING one subscribes to that entry and
    /// consumes the published bytes instead of recomputing or waiting for
    /// the result to reach CACHED. Also switches dequeue to the
    /// producer-affinity order so a consumer never runs ahead of a
    /// same-predicate producer. Disabled by default.
    pub graft: bool,
    /// Directory for the tier-2 spill store (DESIGN.md §14). `None`
    /// disables spilling regardless of [`ServerConfig::tier2_budget`]:
    /// the threaded engine cannot demote entries without somewhere to
    /// persist them.
    pub spill_dir: Option<PathBuf>,
    /// Tier-2 spill budget in bytes (0 disables the spill tier). Eviction
    /// victims then demote to the RESTORABLE phase instead of dropping,
    /// until tier 2 itself overflows; the Data Store and Page Space share
    /// one tiered byte budget, with tier 2 charged entirely to the DS
    /// side (pages re-fetch at device cost anyway, results don't).
    pub tier2_budget: u64,
    /// Fault injection for tier-2 *reads* (restore path). Independent of
    /// the page-read injector so tests can poison spill frames without
    /// perturbing page I/O.
    pub spill_fault: FaultConfig,
    /// Seeded process-failure injection (DESIGN.md §15): poison queries
    /// whose compute panics the worker, panic-at-nth-compute, and spill
    /// kill-points. No-op by default.
    pub chaos: ChaosConfig,
    /// Hang watchdog: a query stuck in execution longer than this (wall
    /// clock on the server, virtual time in the sim) is cancelled through
    /// the deadline machinery and reported `Hung`. `None` disables.
    pub hang_timeout: Option<Duration>,
    /// How many replacement workers may be spawned for panicked ones over
    /// the server's lifetime. Once exhausted, further panics shrink the
    /// pool; if the whole pool dies, waiting queries fail typed-ly.
    pub restart_budget: usize,
    /// A query whose compute has panicked this many workers is
    /// quarantined: failed with a typed error instead of requeued again.
    /// Must be at least 1.
    pub quarantine_limit: u32,
}

impl ServerConfig {
    /// A small default suitable for tests and examples: 2 threads, 64 MB
    /// DS, 32 MB PS (the paper's §5 memory configuration), CNBF.
    pub fn small() -> Self {
        ServerConfig {
            strategy: Strategy::Cnbf,
            num_threads: 2,
            ds_budget: 64 << 20,
            ps_budget: 32 << 20,
            allow_blocking: true,
            ds_policy: EvictionPolicy::Lru,
            index_cell: 512,
            retry: RetryPolicy::default_io(),
            retry_seed: 0,
            query_timeout: None,
            observe: false,
            start_paused: false,
            overload: OverloadConfig::default(),
            steal_seed: 0x05ee_d0f5_7ea1,
            graft: false,
            spill_dir: None,
            tier2_budget: 0,
            spill_fault: FaultConfig::none(),
            chaos: ChaosConfig::none(),
            hang_timeout: None,
            restart_budget: 8,
            quarantine_limit: 3,
        }
    }

    /// Builder-style strategy override.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder-style thread-count override.
    pub fn with_threads(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one query thread required");
        self.num_threads = n;
        self
    }

    /// Builder-style Data Store budget override.
    pub fn with_ds_budget(mut self, bytes: u64) -> Self {
        self.ds_budget = bytes;
        self
    }

    /// Builder-style Page Space budget override.
    pub fn with_ps_budget(mut self, bytes: u64) -> Self {
        self.ps_budget = bytes;
        self
    }

    /// Builder-style blocking toggle.
    pub fn with_blocking(mut self, allow: bool) -> Self {
        self.allow_blocking = allow;
        self
    }

    /// Builder-style Data Store eviction-policy override.
    pub fn with_ds_policy(mut self, p: EvictionPolicy) -> Self {
        self.ds_policy = p;
        self
    }

    /// Builder-style grid-index cell-size override.
    pub fn with_index_cell(mut self, cell: u32) -> Self {
        assert!(cell > 0, "index cell must be positive");
        self.index_cell = cell;
        self
    }

    /// Builder-style retry-policy override.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder-style retry-jitter-seed override.
    pub fn with_retry_seed(mut self, seed: u64) -> Self {
        self.retry_seed = seed;
        self
    }

    /// Builder-style per-query timeout override (`None` disables).
    pub fn with_query_timeout(mut self, t: Option<Duration>) -> Self {
        self.query_timeout = t;
        self
    }

    /// Builder-style event-log toggle.
    pub fn with_observability(mut self, on: bool) -> Self {
        self.observe = on;
        self
    }

    /// Builder-style paused-start toggle.
    pub fn with_start_paused(mut self, paused: bool) -> Self {
        self.start_paused = paused;
        self
    }

    /// Builder-style overload-config override.
    pub fn with_overload(mut self, overload: OverloadConfig) -> Self {
        self.overload = overload;
        self
    }

    /// Builder-style steal-seed override.
    pub fn with_steal_seed(mut self, seed: u64) -> Self {
        self.steal_seed = seed;
        self
    }

    /// Builder-style grafting toggle.
    pub fn with_graft(mut self, on: bool) -> Self {
        self.graft = on;
        self
    }

    /// Builder-style cache-policy override — the `--cache-policy` flag's
    /// name for [`ServerConfig::with_ds_policy`].
    pub fn with_cache_policy(self, p: EvictionPolicy) -> Self {
        self.with_ds_policy(p)
    }

    /// Builder-style spill-directory override (`None` disables spilling).
    pub fn with_spill_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.spill_dir = dir;
        self
    }

    /// Builder-style tier-2 budget override (bytes; 0 disables).
    pub fn with_tier2_budget(mut self, bytes: u64) -> Self {
        self.tier2_budget = bytes;
        self
    }

    /// Builder-style tier-2 read-fault override.
    pub fn with_spill_faults(mut self, fault: FaultConfig) -> Self {
        self.spill_fault = fault;
        self
    }

    /// True when this configuration actually spills: a directory *and* a
    /// nonzero tier-2 budget are both required.
    pub fn spill_enabled(&self) -> bool {
        self.spill_dir.is_some() && self.tier2_budget > 0
    }

    /// Builder-style chaos-injection override (DESIGN.md §15).
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }

    /// Builder-style hang-watchdog limit override (`None` disables).
    pub fn with_hang_timeout(mut self, t: Option<Duration>) -> Self {
        self.hang_timeout = t;
        self
    }

    /// Builder-style worker-restart budget override.
    pub fn with_restart_budget(mut self, n: usize) -> Self {
        self.restart_budget = n;
        self
    }

    /// Builder-style quarantine limit override (panics per query before
    /// the query is failed typed-ly; must be at least 1).
    pub fn with_quarantine_limit(mut self, n: u32) -> Self {
        assert!(n >= 1, "quarantine limit must be at least 1");
        self.quarantine_limit = n;
        self
    }

    /// Builder-style admission bound (`0` = unbounded).
    pub fn with_max_pending(mut self, n: usize) -> Self {
        self.overload.max_pending = n;
        self
    }

    /// Builder-style per-client rate limit in queries/second (`0.0` = off).
    pub fn with_client_rate(mut self, qps: f64) -> Self {
        assert!(qps >= 0.0, "client rate must be non-negative");
        self.overload.client_rate = qps;
        self
    }

    /// Builder-style degrade threshold (pressure in `[0, 1]`; `> 1`
    /// disables).
    pub fn with_degrade_threshold(mut self, t: f64) -> Self {
        self.overload.degrade_threshold = t;
        self
    }

    /// Builder-style shed threshold (pressure in `[0, 1]`; `> 1`
    /// disables).
    pub fn with_shed_threshold(mut self, t: f64) -> Self {
        self.overload.shed_threshold = t;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let c = ServerConfig::small()
            .with_strategy(Strategy::Sjf)
            .with_threads(4)
            .with_ds_budget(1024)
            .with_ps_budget(2048)
            .with_blocking(false);
        assert_eq!(c.strategy, Strategy::Sjf);
        assert_eq!(c.num_threads, 4);
        assert_eq!(c.ds_budget, 1024);
        assert_eq!(c.ps_budget, 2048);
        assert!(!c.allow_blocking);
        let c2 = ServerConfig::small().with_ds_policy(EvictionPolicy::Mru);
        assert_eq!(c2.ds_policy, EvictionPolicy::Mru);
        let c3 = ServerConfig::small()
            .with_retry(RetryPolicy::none())
            .with_retry_seed(9)
            .with_query_timeout(Some(Duration::from_millis(250)));
        assert_eq!(c3.retry, RetryPolicy::none());
        assert_eq!(c3.retry_seed, 9);
        assert_eq!(c3.query_timeout, Some(Duration::from_millis(250)));
        let c4 = ServerConfig::small()
            .with_observability(true)
            .with_start_paused(true)
            .with_steal_seed(7);
        assert!(c4.observe && c4.start_paused);
        assert_eq!(c4.steal_seed, 7);
        assert!(!ServerConfig::small().observe);
        assert!(!ServerConfig::small().start_paused);
        assert!(!ServerConfig::small().graft, "grafting is opt-in");
        assert!(ServerConfig::small().with_graft(true).graft);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_threads_rejected() {
        ServerConfig::small().with_threads(0);
    }

    #[test]
    fn overload_builders_compose_and_default_off() {
        assert!(!ServerConfig::small().overload.enabled());
        let c = ServerConfig::small()
            .with_max_pending(16)
            .with_client_rate(2.5)
            .with_degrade_threshold(0.5)
            .with_shed_threshold(0.9);
        assert!(c.overload.enabled());
        assert_eq!(c.overload.max_pending, 16);
        assert_eq!(c.overload.client_rate, 2.5);
        assert_eq!(c.overload.degrade_threshold, 0.5);
        assert_eq!(c.overload.shed_threshold, 0.9);
        let via_struct = ServerConfig::small().with_overload(c.overload);
        assert_eq!(via_struct.overload, c.overload);
    }

    #[test]
    fn spill_builders_compose_and_default_off() {
        let base = ServerConfig::small();
        assert!(!base.spill_enabled(), "spilling is opt-in");
        assert!(base.spill_dir.is_none() && base.tier2_budget == 0);
        // Both knobs are required: a budget without a directory (or the
        // reverse) leaves spilling off.
        assert!(!ServerConfig::small()
            .with_tier2_budget(1 << 20)
            .spill_enabled());
        assert!(!ServerConfig::small()
            .with_spill_dir(Some(PathBuf::from("/tmp/x")))
            .spill_enabled());
        let c = ServerConfig::small()
            .with_cache_policy(EvictionPolicy::CostBased)
            .with_spill_dir(Some(PathBuf::from("/tmp/x")))
            .with_tier2_budget(1 << 20)
            .with_spill_faults(FaultConfig::none().with_permanent(0.1));
        assert!(c.spill_enabled());
        assert_eq!(c.ds_policy, EvictionPolicy::CostBased);
        assert_eq!(c.tier2_budget, 1 << 20);
        assert_eq!(c.spill_fault.permanent_rate, 0.1);
    }

    #[test]
    fn containment_builders_compose_and_default_sane() {
        let base = ServerConfig::small();
        assert!(base.chaos.is_noop(), "chaos is opt-in");
        assert!(base.hang_timeout.is_none(), "watchdog is opt-in");
        assert!(base.restart_budget > 0, "panics survive by default");
        assert!(base.quarantine_limit >= 1);
        let c = ServerConfig::small()
            .with_chaos(ChaosConfig::none().with_seed(7).with_poison_rate(0.1))
            .with_hang_timeout(Some(Duration::from_millis(500)))
            .with_restart_budget(2)
            .with_quarantine_limit(1);
        assert!(!c.chaos.is_noop());
        assert_eq!(c.chaos.seed, 7);
        assert_eq!(c.hang_timeout, Some(Duration::from_millis(500)));
        assert_eq!(c.restart_budget, 2);
        assert_eq!(c.quarantine_limit, 1);
    }

    #[test]
    #[should_panic(expected = "quarantine limit")]
    fn zero_quarantine_limit_rejected() {
        ServerConfig::small().with_quarantine_limit(0);
    }
}
