//! The multithreaded query server (paper §2, "Query Server").
//!
//! A fixed-size pool of query threads services a dynamic stream of
//! queries. Each thread repeatedly dequeues the highest-ranked WAITING
//! query from the scheduling graph and executes it:
//!
//! 1. **look up** the Data Store for exact or partial matches — an exact
//!    match answers immediately,
//! 2. otherwise optionally **block** on an EXECUTING query whose result
//!    it could reuse (guarded by a wait-for-graph cycle check — the
//!    paper's deadlock avoidance), re-probing the store after the wait,
//! 3. hand the query and its reuse sources to the application's
//!    [`AppExecutor`], which **projects** cached results (Eq. 3), creates
//!    **sub-queries** for the uncovered remainder, and computes them from
//!    raw pages through the Page Space Manager (merged, deduplicated I/O),
//! 4. **cache** the output in the Data Store and transition the query to
//!    CACHED, swapping out any evicted producers.
//!
//! ## Sharding and work stealing (DESIGN.md §12)
//!
//! The scheduling state is **sharded**: one [`Shard`] per worker thread,
//! each holding its own scheduling graph, ready queue, wait-for edges,
//! and reply channels behind its own mutex. A query is routed to its
//! *home shard* by [`vmqs_core::shard_of_spec`] — a deterministic hash of
//! its dataset and spatial neighborhood — so overlapping queries land on
//! the same shard and keep their reuse edges, while disjoint workloads
//! never contend on a scheduler lock. Each worker prefers its own shard
//! and **steals from the richest victim shard** (per a seeded,
//! per-worker victim permutation from [`vmqs_core::steal_order`]) when
//! its own ready queue is empty. At one worker there is exactly one
//! shard, no stealing, and the engine is observationally identical to
//! the pre-shard scheduler — the property the golden-trace conformance
//! suite pins down bit for bit.
//!
//! ## Locking
//!
//! * `shards[k].state: Mutex<ShardState>` — per-shard scheduling graph,
//!   wait-for edges, reply channels. Each shard's `done_cv` (query
//!   completion) is associated with its own mutex. A lock-free `depth`
//!   mirror of the shard's ready-queue length lets stealers pick victims
//!   without touching any lock.
//! * `store: RwLock<SpatialDataStore>` — the semantic cache, still
//!   global so reuse crosses shard boundaries. Lookups are read-side
//!   (`&self`, LRU stamps and counters are atomics); only insert/evict
//!   takes the write lock.
//! * `metrics: Mutex<Vec<QueryRecord>>` — completed-query records.
//! * `admission: Mutex<AdmissionState>` — the overload ladder's slow
//!   path only. At low pressure admission takes the **fast path**
//!   ([`vmqs_core::fast_path_admissible`]): a queue-depth atomic read
//!   decides admit/reject with no global lock, provably agreeing with
//!   the full ladder because the pressure amplification is bounded.
//! * Idle workers park on an eventcount-style `idle` mutex + `work_cv`;
//!   submitters only touch it when `sleepers > 0`.
//! * `compute_slots` + `compute_cv` — the compute gate: kernel
//!   executions (step 3's miss/partial path) take a permit, capped at
//!   the host's available parallelism. Exact hits bypass it, so when the
//!   pool is oversubscribed (more workers than cores) hits are served
//!   concurrently while computes pipeline through the cores instead of
//!   timeslicing against each other. With a permit per worker the gate
//!   is never contended, and at one worker it is inert.
//!
//! **Lock hierarchy rule:** `admission → shard` (submit slow path) and
//! one shard at a time everywhere else; no thread holds two shard locks
//! or a shard lock together with `store`/`metrics`. Payload bytes are
//! materialized into `Arc<[u8]>` outside all critical sections.
//!
//! Worker-side events are staged in per-worker [`EventBuffer`]s and
//! drained at steal/idle boundaries — sequence numbers are stamped at
//! emission, so the batched log is indistinguishable from direct
//! logging (the conformance traces rely on this).
//!
//! The engine is generic over the application ([`VmExecutor`] is the
//! default); everything scheduling-related is application-neutral.

use crate::app::{AppExecutor, VmExecutor};
use crate::config::ServerConfig;
use crate::error::{deadline_error, ServerError};
use crate::pages::SharedPageSpace;
use crate::result::{AnswerPath, QueryRecord, QueryResult, ServerSummary};
use crossbeam::channel::{bounded, Receiver, Sender};

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vmqs_core::clock;
use vmqs_core::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use vmqs_core::sync::{Arc, Condvar, Mutex, RwLock};
use vmqs_core::{
    fast_path_admissible, retry_after_estimate, shard_of_spec, shed_victim, steal_order, BlobId,
    ClientId, FastAdmit, IdGen, PressureSignals, QueryId, QuerySpec, QueryState, SchedulingGraph,
    SpatialSpec, TokenBucket,
};
use vmqs_datastore::{DsStats, EvictionRecord, Payload, Phase, SpatialDataStore};
use vmqs_microscope::PAGE_SIZE;
use vmqs_obs::{EventBuffer, EventKind, EventRecord, MetricsSnapshot, Obs, QueryMetrics};
use vmqs_pagespace::PsStats;
use vmqs_storage::{DataSource, SpillStore};

/// A query's reply channel.
type ReplyTx<S> = Sender<Result<QueryResult<S>, ServerError>>;

/// A shed victim staged for delivery outside all scheduler locks: the
/// query, its home shard, its (possibly already-taken) response channel,
/// and the pressure level that triggered the decision.
type ShedVictim<S> = (QueryId, usize, Option<ReplyTx<S>>, f64);

/// A client's handle to an in-flight query.
#[derive(Debug)]
pub struct QueryHandle<S = vmqs_microscope::VmQuery> {
    /// The assigned query id.
    pub id: QueryId,
    rx: Receiver<Result<QueryResult<S>, ServerError>>,
}

impl<S> QueryHandle<S> {
    /// Blocks until the query completes.
    pub fn wait(self) -> Result<QueryResult<S>, ServerError> {
        self.rx.recv().unwrap_or(Err(ServerError::Shutdown))
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<Result<QueryResult<S>, ServerError>> {
        self.rx.try_recv().ok()
    }
}

/// One shard's scheduler component: everything the dequeue/blocking/
/// completion transitions touch for queries homed here. Guarded by
/// [`Shard::state`].
struct ShardState<S: SpatialSpec> {
    graph: SchedulingGraph<S>,
    blob_of: HashMap<QueryId, BlobId>,
    /// Deadlock-avoidance wait-for edges: executing query → executing query
    /// it is blocked on. Reuse edges are intra-shard, so these never cross
    /// shards and the cycle check stays complete.
    waiting_on: HashMap<QueryId, QueryId>,
    pending: HashMap<QueryId, ReplyTx<S>>,
    submit_time: HashMap<QueryId, Instant>,
    blocked_fallbacks: u64,
    /// Queries downgraded to their cheaper plan at admission; consumed at
    /// dequeue to stamp `degraded` on the record.
    degraded: HashSet<QueryId>,
    /// Blobs evicted before their producer finished its own completion
    /// bookkeeping. A cost-based victim can be the *lowest-scoring* entry
    /// — including one committed moments ago by a producer still
    /// EXECUTING in the graph (recency policies never pick it: a fresh
    /// commit has the newest stamp). The evictor leaves a tombstone here
    /// instead of transitioning the producer; the producer consumes it
    /// under the same shard lock and swaps itself out.
    dead_blobs: HashSet<BlobId>,
}

/// One scheduling shard: a worker's home scheduling graph plus the
/// lock-free ready-queue depth mirror stealers scan.
struct Shard<S: SpatialSpec> {
    state: Mutex<ShardState<S>>,
    /// Mirror of `state.graph.waiting_len()`, maintained under the shard
    /// lock but read without it by stealers picking the richest victim.
    depth: AtomicUsize,
    /// Signaled when a query homed on this shard completes or is shed —
    /// wakes dependency blockers (associated with `state`).
    done_cv: Condvar,
}

impl<S: SpatialSpec> Shard<S> {
    fn new(strategy: vmqs_core::Strategy) -> Self {
        Shard {
            state: Mutex::new(ShardState {
                graph: SchedulingGraph::new(strategy),
                blob_of: HashMap::new(),
                waiting_on: HashMap::new(),
                pending: HashMap::new(),
                submit_time: HashMap::new(),
                blocked_fallbacks: 0,
                degraded: HashSet::new(),
                dead_blobs: HashSet::new(),
            }),
            depth: AtomicUsize::new(0),
            done_cv: Condvar::new(),
        }
    }
}

/// Slow-path admission state, taken only when
/// [`vmqs_core::fast_path_admissible`] escalates. Workers never touch it.
struct AdmissionState {
    /// Per-client admission token buckets (only populated when
    /// [`vmqs_core::OverloadConfig::client_rate`] is set).
    buckets: HashMap<ClientId, TokenBucket>,
}

struct Core<A: AppExecutor> {
    cfg: ServerConfig,
    app: A,
    /// One scheduling shard per worker thread (exactly one at
    /// `num_threads == 1`, where the engine degenerates to the pre-shard
    /// scheduler). Never hold two shard locks at once.
    shards: Vec<Shard<A::Spec>>,
    /// Overload ladder slow path (lock order: `admission` → shard).
    admission: Mutex<AdmissionState>,
    /// The semantic cache, under a reader-writer lock: lookups (the common
    /// case) share the read side; insert/evict takes the write side.
    /// Global, so result reuse crosses shard boundaries.
    store: RwLock<SpatialDataStore<A::Spec>>,
    /// The tier-2 spill store (DESIGN.md §14), present only when the
    /// config enables spilling. Frames are written and read back *inside*
    /// the store's write-lock critical sections, so a RESTORABLE entry
    /// observable by any thread always has an on-disk copy.
    spill: Option<SpillStore>,
    /// Completed-query records, off the hot path.
    metrics: Mutex<Vec<QueryRecord<A::Spec>>>,
    /// Eventcount-style idle list: workers park here when every shard is
    /// empty (or the pool is paused); `work_cv` is associated with it.
    /// Submitters take this lock only when `sleepers > 0`.
    idle: Mutex<()>,
    work_cv: Condvar,
    /// Workers currently parked (or about to park) on `idle`/`work_cv`.
    sleepers: AtomicUsize,
    /// WAITING queries across all shards — the admission fast path's
    /// queue-depth input and the workers' "any work at all?" gate.
    /// Maintained under the owning shard's lock.
    total_waiting: AtomicUsize,
    /// Admitted-but-unresolved queries across all shards (what `drain`
    /// waits on).
    outstanding: AtomicUsize,
    /// When set, workers sleep instead of dequeuing (see
    /// [`ServerConfig::start_paused`] and
    /// [`QueryServer::resume_workers`]).
    paused: AtomicBool,
    shutdown: AtomicBool,
    /// `drain` parks here; signaled when `outstanding` reaches zero.
    drain_mx: Mutex<()>,
    drain_cv: Condvar,
    /// Compute gate: permits for concurrent kernel executions, capped at
    /// the host's available parallelism. Exact cache hits never touch it,
    /// so on an oversubscribed pool (more workers than cores) hits keep
    /// flowing while computes pipeline through the cores instead of
    /// timeslicing against each other; with `num_threads <=` cores the
    /// gate has a permit per worker and is never contended.
    compute_slots: Mutex<usize>,
    compute_cv: Condvar,
    /// Bumped after every Data Store insert. A worker snapshots it before
    /// its first lookup; if it moved by the time the worker is about to
    /// compute (it may have waited on a dependency or at the compute
    /// gate), results it could not see were published meanwhile and it
    /// re-probes. Single-worker runs never observe a moved epoch: the
    /// only thread that could bump it is the one reading it.
    publish_epoch: AtomicU64,
    /// Data Store re-probes (epoch moved between first lookup and
    /// compute), and how many found an exact match published during the
    /// wait (compute turned into reuse).
    relookups: AtomicU64,
    relookup_hits: AtomicU64,
    /// Per-worker staging buffers for hot-path events, drained at
    /// steal/idle boundaries and by [`QueryServer::events`]. Each mutex
    /// is all but uncontended (its worker plus occasional snapshots).
    event_bufs: Vec<Mutex<EventBuffer>>,
    ps: SharedPageSpace,
    idgen: IdGen,
    /// Queries that failed with an I/O error (timeouts counted separately).
    failed: AtomicU64,
    /// Queries cancelled at their deadline.
    timed_out: AtomicU64,
    /// Queries refused at admission (queue full or rate limited).
    rejected: AtomicU64,
    /// Queries admitted but evicted by the load shedder.
    shed: AtomicU64,
    /// Queries downgraded to their cheaper plan at admission.
    degraded: AtomicU64,
    /// Full computes whose output already had a `cmp`-equivalent visible
    /// Data Store entry at publish time — redundant work the grafting +
    /// producer-affinity machinery exists to eliminate (ROADMAP item 1).
    duplicate_full_computes: AtomicU64,
    /// Global compute ordinal — the chaos injector's panic-at-nth
    /// coordinate (DESIGN.md §15). Counts every entry into the compute
    /// stage, across all workers.
    compute_seq: AtomicU64,
    /// Per-query panic attempts (the quarantine counter). Only touched
    /// after a panic has already happened, so never on the healthy path.
    quarantine: Mutex<HashMap<QueryId, u32>>,
    /// Replacement workers still allowed, counting down from
    /// [`ServerConfig::restart_budget`].
    restarts_left: AtomicUsize,
    /// Workers currently alive. When a panic retires the last one, the
    /// pool is dead: WAITING queries are failed typed-ly and later
    /// submissions are refused with [`ServerError::WorkerPanicked`].
    live_workers: AtomicUsize,
    /// Set when the whole pool has died (restart budget exhausted).
    pool_dead: AtomicBool,
    /// Handles of respawned replacement workers, joined at shutdown.
    respawned: Mutex<Vec<JoinHandle<()>>>,
    /// Worker threads killed by a panicking compute.
    worker_panics: AtomicU64,
    /// Replacement workers spawned under the restart budget.
    worker_restarts: AtomicU64,
    /// Queries failed typed-ly by the quarantine rule.
    quarantined: AtomicU64,
    /// Queries cancelled by the hang watchdog.
    hung: AtomicU64,
    /// Event log + metrics registry (DESIGN.md §9). Counters are always
    /// live; the event log records only when `cfg.observe` is set.
    obs: Arc<Obs>,
    /// Pre-resolved query-lifecycle metric handles (no registry lock on
    /// the hot path).
    qmet: QueryMetrics,
}

/// The public server: spawns the thread pool on construction; submit
/// queries from any thread. Generic over the application executor
/// (defaults to the Virtual Microscope).
pub struct QueryServer<A: AppExecutor = VmExecutor> {
    core: Arc<Core<A>>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryServer<VmExecutor> {
    /// Starts a Virtual Microscope server over `source`.
    pub fn new(cfg: ServerConfig, source: Arc<dyn DataSource>) -> Self {
        QueryServer::with_app(cfg, VmExecutor, source)
    }
}

impl<A: AppExecutor> QueryServer<A> {
    /// Starts a server for any application executor.
    pub fn with_app(cfg: ServerConfig, app: A, source: Arc<dyn DataSource>) -> Self {
        let num_threads = cfg.num_threads;
        let obs = Arc::new(Obs::new(cfg.observe));
        let qmet = QueryMetrics::resolve(&obs.metrics);
        // The tier-2 spill store (DESIGN.md §14): requires both a
        // directory and a nonzero budget. An unusable spill directory is
        // a construction-time configuration error, like a zero-size pool.
        let spill = cfg.spill_enabled().then(|| {
            // Construction-time config validation, not a worker path: an
            // unusable spill configuration fails server startup loudly
            // (like a zero-thread pool), never a query.
            // lint:allow(unwrap): spill_enabled() implies the dir is Some
            let dir = cfg.spill_dir.clone().expect("spill_enabled implies dir");
            // lint:allow(unwrap): startup-time directory creation
            SpillStore::new(dir)
                .expect("spill directory must be creatable")
                .with_faults(cfg.spill_fault)
                .with_chaos(cfg.chaos)
        });
        let tier2_budget = if spill.is_some() { cfg.tier2_budget } else { 0 };
        let mut store = SpatialDataStore::with_policy(cfg.ds_budget, cfg.index_cell, cfg.ds_policy)
            .with_tier2(tier2_budget);
        if let Some(spill) = &spill {
            // Crash-consistent recovery (DESIGN.md §15): validate every
            // frame a previous process left behind, adopt the intact ones
            // back into tier 2 as RESTORABLE entries, and delete the rest
            // — torn tmp files, corrupt frames, and frames whose
            // predicate no longer decodes. After this scan, every file in
            // the directory is byte-accounted by the Data Store.
            if let Ok(report) = spill.recover() {
                for f in report.restorable {
                    let adopted = app
                        .decode_spec(&f.meta)
                        .is_some_and(|spec| store.adopt_restorable(f.blob, spec, f.size));
                    if !adopted {
                        let _ = spill.remove(f.blob);
                    }
                }
            }
        }
        let core = Arc::new(Core {
            shards: (0..cfg.num_threads)
                .map(|_| Shard::new(cfg.strategy))
                .collect(),
            admission: Mutex::new(AdmissionState {
                buckets: HashMap::new(),
            }),
            store: RwLock::new(store),
            spill,
            metrics: Mutex::new(Vec::new()),
            idle: Mutex::new(()),
            work_cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            total_waiting: AtomicUsize::new(0),
            outstanding: AtomicUsize::new(0),
            paused: AtomicBool::new(cfg.start_paused),
            shutdown: AtomicBool::new(false),
            drain_mx: Mutex::new(()),
            drain_cv: Condvar::new(),
            compute_slots: Mutex::new(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(cfg.num_threads)
                    .min(cfg.num_threads)
                    .max(1),
            ),
            compute_cv: Condvar::new(),
            publish_epoch: AtomicU64::new(0),
            relookups: AtomicU64::new(0),
            relookup_hits: AtomicU64::new(0),
            event_bufs: (0..cfg.num_threads)
                .map(|_| Mutex::new(EventBuffer::default()))
                .collect(),
            ps: SharedPageSpace::with_retry_obs(
                cfg.ps_budget,
                PAGE_SIZE,
                source,
                cfg.retry,
                cfg.retry_seed,
                Some(Arc::clone(&obs)),
            ),
            idgen: IdGen::new(0),
            failed: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            duplicate_full_computes: AtomicU64::new(0),
            compute_seq: AtomicU64::new(0),
            quarantine: Mutex::new(HashMap::new()),
            restarts_left: AtomicUsize::new(cfg.restart_budget),
            live_workers: AtomicUsize::new(cfg.num_threads),
            pool_dead: AtomicBool::new(false),
            respawned: Mutex::new(Vec::new()),
            worker_panics: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            hung: AtomicU64::new(0),
            obs,
            qmet,
            app,
            cfg,
        });
        // Worker spawns can fail under OS thread exhaustion; the pool
        // degrades to however many threads the OS granted rather than
        // panicking (stealing keeps orphaned shards serviced). Zero
        // workers would strand every accepted query, so that case (and
        // only that case) is a hard startup failure.
        let workers: Vec<_> = (0..num_threads)
            .filter_map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("vmqs-query-{i}"))
                    .spawn(move || worker_entry(core, i))
                    .ok()
            })
            .collect();
        assert!(
            !workers.is_empty(),
            "could not spawn any query worker thread"
        );
        core.live_workers.store(workers.len(), Ordering::SeqCst);
        QueryServer { core, workers }
    }

    /// Submits a query on behalf of the default client (`ClientId(0)`);
    /// returns a handle to wait on.
    pub fn submit(&self, spec: A::Spec) -> QueryHandle<A::Spec> {
        self.submit_from(ClientId(0), spec)
    }

    /// Submits a query on behalf of `client`; returns a handle to wait
    /// on. The client id keys the per-client token-bucket rate limiter
    /// when [`vmqs_core::OverloadConfig::client_rate`] is set.
    ///
    /// With overload management enabled the admission ladder runs here,
    /// at submit time (DESIGN.md §10): rate limit → bounded queue →
    /// degrade → shed. A refused query still gets a handle — it resolves
    /// immediately with [`ServerError::Overloaded`] (rejection) or
    /// [`ServerError::Shed`] (shed later, possibly by another submission)
    /// — so callers never block on admission and never hang.
    pub fn submit_from(&self, client: ClientId, spec: A::Spec) -> QueryHandle<A::Spec> {
        let id = self.core.idgen.next_query();
        let (tx, rx) = bounded(1);
        let ov = self.core.cfg.overload;
        assert!(
            !self.core.shutdown.load(Ordering::SeqCst),
            "submit after shutdown"
        );
        if self.core.pool_dead.load(Ordering::SeqCst) {
            // The whole pool died (restart budget exhausted): refuse
            // typed-ly instead of queueing work no one will ever run.
            self.core.qmet.submitted.inc();
            self.core.obs.log.log(id, EventKind::Submitted);
            self.core.failed.fetch_add(1, Ordering::Relaxed);
            self.core.qmet.failed.inc();
            self.core.obs.log.log(id, EventKind::Failed);
            let _ = tx.send(Err(ServerError::WorkerPanicked));
            return QueryHandle { id, rx };
        }
        if !ov.enabled() {
            // Fast path: no pressure-signal gathering, identical to the
            // pre-overload submit. Touches only the home shard's lock.
            self.core.admit(id, spec, tx, false);
            self.core.obs.log.log(id, EventKind::Submitted);
            self.core.qmet.submitted.inc();
            self.core.wake_one();
            return QueryHandle { id, rx };
        }

        // Overload fast path (DESIGN.md §12): one atomic queue-depth
        // read decides admit/reject without the admission lock or any
        // pressure-signal gathering. Sound because the ladder's
        // amplification is bounded — `fast_path_admissible` only
        // returns a verdict the full ladder is guaranteed to agree
        // with, and escalates otherwise.
        let depth = self.core.total_waiting.load(Ordering::SeqCst);
        match fast_path_admissible(&ov, depth) {
            FastAdmit::Admit => {
                self.core.admit(id, spec, tx, false);
                self.core.qmet.submitted.inc();
                self.core.obs.log.log(id, EventKind::Submitted);
                // Queue-fraction-only pressure gauge: the secondary
                // signals are not gathered on this path, and the bound
                // that admitted us caps the difference.
                self.core.obs.metrics.set_gauge(
                    "vmqs_pressure",
                    PressureSignals {
                        queue_depth: depth + 1,
                        max_pending: ov.max_pending,
                        ds_occupancy: 0.0,
                        ps_miss_ratio: 0.0,
                        retry_ratio: 0.0,
                    }
                    .level(),
                );
                self.core.wake_one();
                return QueryHandle { id, rx };
            }
            FastAdmit::RejectFull => {
                // Histogram reads are atomic — still no lock taken.
                let mean_service = self.core.qmet.service_time.snapshot().mean();
                let retry_after = Duration::from_secs_f64(retry_after_estimate(
                    depth,
                    self.core.cfg.num_threads,
                    mean_service,
                ));
                self.core.qmet.submitted.inc();
                self.core.obs.log.log(id, EventKind::Submitted);
                self.core.obs.metrics.set_gauge(
                    "vmqs_pressure",
                    PressureSignals {
                        queue_depth: depth,
                        max_pending: ov.max_pending,
                        ds_occupancy: 0.0,
                        ps_miss_ratio: 0.0,
                        retry_ratio: 0.0,
                    }
                    .level(),
                );
                self.core.rejected.fetch_add(1, Ordering::Relaxed);
                self.core.qmet.rejected.inc();
                self.core.obs.log.log(
                    id,
                    EventKind::Rejected {
                        rate_limited: false,
                    },
                );
                let _ = tx.send(Err(ServerError::Overloaded { retry_after }));
                return QueryHandle { id, rx };
            }
            FastAdmit::Escalate => {}
        }

        // Slow path: the full ladder under the admission lock. Secondary
        // pressure inputs come from the store and page-space components,
        // gathered *before* the admission lock (lock hierarchy: the
        // store lock is never taken below `admission`).
        let (ds_occupancy, ps_miss_ratio, retry_ratio) = self.core.pressure_secondary();
        let now_s = self.core.obs.log.now();
        let signals = |depth: usize| PressureSignals {
            queue_depth: depth,
            max_pending: ov.max_pending,
            ds_occupancy,
            ps_miss_ratio,
            retry_ratio,
        };

        // The response sender travels *inside* the decision: an admitted
        // query's sender is parked in `pending` under its shard's lock, a
        // rejected query's sender rides out in `Rejected` so the refusal
        // can be delivered outside the lock. No slot, no take(), no
        // "taken once" invariant to uphold at runtime.
        enum Decision<S> {
            Admitted {
                degraded: bool,
            },
            Rejected {
                rate_limited: bool,
                retry_after: Duration,
                tx: ReplyTx<S>,
            },
        }
        let mut shed_out: Vec<ShedVictim<A::Spec>> = Vec::new();
        let mut observed_level;
        let decision = {
            let mut adm = self.core.admission.lock();
            let depth = self.core.total_waiting.load(Ordering::SeqCst);
            observed_level = signals(depth).level();
            let over_rate = ov.client_rate > 0.0 && {
                let bucket = adm
                    .buckets
                    .entry(client)
                    .or_insert_with(|| TokenBucket::new(ov.client_rate));
                !bucket.try_take(now_s)
            };
            if over_rate {
                let wait = adm.buckets[&client].time_to_token(now_s).max(1e-3);
                Decision::Rejected {
                    rate_limited: true,
                    retry_after: Duration::from_secs_f64(wait),
                    tx,
                }
            } else if ov.max_pending > 0 && depth >= ov.max_pending {
                // Histogram reads are atomic — no lock below `admission`
                // here.
                let mean_service = self.core.qmet.service_time.snapshot().mean();
                Decision::Rejected {
                    rate_limited: false,
                    retry_after: Duration::from_secs_f64(retry_after_estimate(
                        depth,
                        self.core.cfg.num_threads,
                        mean_service,
                    )),
                    tx,
                }
            } else {
                let mut level = signals(depth + 1).level();
                let mut spec = spec;
                let mut degraded = false;
                if level >= ov.degrade_threshold {
                    if let Some(cheaper) = self.core.app.degrade(&spec) {
                        spec = cheaper;
                        degraded = true;
                    }
                }
                self.core.admit(id, spec, tx, degraded);
                // Shed the largest-`qinputsize` WAITING queries (newest
                // first on ties — the IoAware/SJF rationale) until
                // pressure drops below the threshold. The victim may be
                // the query just admitted, and may live on any shard
                // (candidates are gathered one shard lock at a time).
                // Each victim takes the same WAITING → CACHED →
                // SWAPPED_OUT exit as a failed query, so the graph keeps
                // its invariants and peers see no residue.
                while level >= ov.shed_threshold
                    && self.core.total_waiting.load(Ordering::SeqCst) > 0
                {
                    let mut cands: Vec<(QueryId, u64, u64, usize)> = Vec::new();
                    for (si, sh) in self.core.shards.iter().enumerate() {
                        let s = sh.state.lock();
                        for q in s.graph.ids_in_state(QueryState::Waiting) {
                            cands.push((
                                q,
                                s.graph.qinputsize_of(q).unwrap_or(0),
                                s.graph.arrival_of(q).unwrap_or(0),
                                si,
                            ));
                        }
                    }
                    let victim = shed_victim(cands.iter().map(|&(q, sz, ar, _)| (q, sz, ar)));
                    let Some(vid) = victim else { break };
                    let Some(&(_, _, _, vk)) = cands.iter().find(|c| c.0 == vid) else {
                        break;
                    };
                    let mut s = self.core.shards[vk].state.lock();
                    if !s.graph.dequeue_specific(vid) {
                        // A worker raced us to this victim; re-evaluate.
                        continue;
                    }
                    s.graph.mark_cached(vid);
                    s.graph.swap_out(vid);
                    s.submit_time.remove(&vid);
                    s.degraded.remove(&vid);
                    let vtx = s.pending.remove(&vid);
                    self.core.shards[vk].depth.fetch_sub(1, Ordering::SeqCst);
                    self.core.total_waiting.fetch_sub(1, Ordering::SeqCst);
                    drop(s);
                    shed_out.push((vid, vk, vtx, level));
                    level = signals(self.core.total_waiting.load(Ordering::SeqCst)).level();
                }
                observed_level = level;
                drop(adm);
                Decision::Admitted { degraded }
            }
        };

        // Events, counters, and deliveries — all outside the admission
        // and shard locks, in the canonical order the simulator mirrors:
        // Submitted, [Degraded | Rejected], then Shed for each victim.
        self.core.qmet.submitted.inc();
        self.core.obs.log.log(id, EventKind::Submitted);
        self.core
            .obs
            .metrics
            .set_gauge("vmqs_pressure", observed_level);
        match decision {
            Decision::Admitted { degraded } => {
                if degraded {
                    self.core.degraded.fetch_add(1, Ordering::Relaxed);
                    self.core.qmet.degraded.inc();
                    self.core.obs.log.log(id, EventKind::Degraded);
                }
            }
            Decision::Rejected {
                rate_limited,
                retry_after,
                tx,
            } => {
                self.core.rejected.fetch_add(1, Ordering::Relaxed);
                self.core.qmet.rejected.inc();
                self.core
                    .obs
                    .log
                    .log(id, EventKind::Rejected { rate_limited });
                let _ = tx.send(Err(ServerError::Overloaded { retry_after }));
            }
        }
        for (vid, vk, vtx, level) in shed_out {
            self.core.shed.fetch_add(1, Ordering::Relaxed);
            self.core.qmet.shed.inc();
            self.core.obs.log.log(vid, EventKind::Shed);
            if let Some(vtx) = vtx {
                let _ = vtx.send(Err(ServerError::Shed { pressure: level }));
            }
            // Shedding retires outstanding queries: wake `drain` and any
            // dependency blockers on the victim's shard.
            self.core.finish_one(vk);
        }
        self.core.wake_one();
        QueryHandle { id, rx }
    }

    /// Submits a batch of queries at once (the paper's batch workload).
    pub fn submit_batch(
        &self,
        specs: impl IntoIterator<Item = A::Spec>,
    ) -> Vec<QueryHandle<A::Spec>> {
        let handles: Vec<_> = specs.into_iter().map(|s| self.submit(s)).collect();
        self.core.wake_all();
        handles
    }

    /// Blocks until every submitted query has completed. When this
    /// returns, every handle's result has already been delivered.
    pub fn drain(&self) {
        let mut g = self.core.drain_mx.lock();
        while self.core.outstanding.load(Ordering::SeqCst) > 0 {
            self.core.drain_cv.wait(&mut g);
        }
    }

    /// Stops the thread pool. Unfinished queries receive
    /// [`ServerError::Shutdown`].
    pub fn shutdown(mut self) {
        self.core.shutdown.store(true, Ordering::SeqCst);
        // Bridge each wakeup through its mutex so a worker between its
        // condition check and its wait cannot miss the flag.
        {
            let _g = self.core.idle.lock();
        }
        self.core.work_cv.notify_all();
        {
            let _g = self.core.compute_slots.lock();
        }
        self.core.compute_cv.notify_all();
        for sh in &self.core.shards {
            {
                let _g = sh.state.lock();
            }
            sh.done_cv.notify_all();
        }
        let mut join_panics = 0u64;
        for w in self.workers.drain(..) {
            if w.join().is_err() {
                join_panics += 1;
            }
        }
        // Replacement workers the supervision layer spawned. A panic
        // during this join can itself respawn one more, so drain until
        // the list stays empty.
        loop {
            let respawned: Vec<_> = self.core.respawned.lock().drain(..).collect();
            if respawned.is_empty() {
                break;
            }
            for w in respawned {
                if w.join().is_err() {
                    join_panics += 1;
                }
            }
        }
        // Exiting workers flush their own event buffers; sweep them all
        // anyway so a panicked worker's staged events are not lost.
        for i in 0..self.core.event_bufs.len() {
            self.core.buf_flush(i);
        }
        // Fail any queries still pending — even if a worker panicked, no
        // client is left hanging on its handle.
        for sh in &self.core.shards {
            let mut s = sh.state.lock();
            for (_, tx) in s.pending.drain() {
                let _ = tx.send(Err(ServerError::Shutdown));
            }
        }
        // A panic that escaped the supervision layer entirely (outside
        // `run_one`) is accounted, not asserted on: every client already
        // got a typed error above, and the summary reports the damage.
        self.core
            .worker_panics
            .fetch_add(join_panics, Ordering::Relaxed);
        for _ in 0..join_panics {
            self.core.qmet.worker_panics.inc();
        }
    }

    /// Execution records of all completed queries so far. This copies the
    /// records out (records are small `Copy` structs with no payloads) —
    /// use [`QueryServer::summary`] for cheap periodic metrics polling.
    pub fn records(&self) -> Vec<QueryRecord<A::Spec>> {
        self.core.metrics.lock().clone()
    }

    /// Aggregate metrics over completed queries, computed without copying
    /// the per-query records.
    pub fn summary(&self) -> ServerSummary {
        let (mut resp, mut out) = {
            let m = self.core.metrics.lock();
            let mut out = ServerSummary {
                completed: m.len(),
                ..ServerSummary::default()
            };
            let mut resp: Vec<Duration> = Vec::with_capacity(m.len());
            for r in m.iter() {
                match r.path {
                    AnswerPath::ExactHit => out.exact_hits += 1,
                    AnswerPath::PartialReuse => out.partial_reuse += 1,
                    AnswerPath::FullCompute => out.full_compute += 1,
                    AnswerPath::Grafted => out.grafted += 1,
                }
                out.reused_bytes += r.reused_bytes;
                resp.push(r.response_time());
            }
            (resp, out)
        };
        if !resp.is_empty() {
            resp.sort_unstable();
            let total: Duration = resp.iter().sum();
            out.mean_response = total / resp.len() as u32;
            out.p50_response = resp[(resp.len() - 1) / 2];
            out.p95_response = resp[((resp.len() - 1) as f64 * 0.95).round() as usize];
        }
        out.failed = self.core.failed.load(Ordering::Relaxed) as usize;
        out.timed_out = self.core.timed_out.load(Ordering::Relaxed) as usize;
        out.rejected = self.core.rejected.load(Ordering::Relaxed) as usize;
        out.shed = self.core.shed.load(Ordering::Relaxed) as usize;
        out.degraded = self.core.degraded.load(Ordering::Relaxed) as usize;
        out.duplicate_full_computes = self.core.duplicate_full_computes.load(Ordering::Relaxed);
        let ps = self.core.ps.stats();
        out.io_faults = ps.read_faults;
        out.io_retries = ps.read_retries;
        out.failed_reads = ps.failed_reads;
        let ds = self.core.store.read().stats();
        out.spilled = ds.spilled;
        out.restored = ds.restored;
        out.restore_failures = ds.restore_failures;
        out.worker_panics = self.core.worker_panics.load(Ordering::Relaxed);
        out.worker_restarts = self.core.worker_restarts.load(Ordering::Relaxed);
        out.quarantined = self.core.quarantined.load(Ordering::Relaxed) as usize;
        out.hung = self.core.hung.load(Ordering::Relaxed) as usize;
        out
    }

    /// Data Store counters.
    pub fn ds_stats(&self) -> DsStats {
        self.core.store.read().stats()
    }

    /// Page Space counters.
    pub fn ps_stats(&self) -> PsStats {
        self.core.ps.stats()
    }

    /// Scheduling-graph counters, summed across shards.
    pub fn graph_stats(&self) -> vmqs_core::GraphStats {
        let mut total = vmqs_core::GraphStats::default();
        for sh in &self.core.shards {
            let s = sh.state.lock().graph.stats();
            total.inserted += s.inserted;
            total.dequeued += s.dequeued;
            total.swapped_out += s.swapped_out;
            total.edges_created += s.edges_created;
            total.reranks += s.reranks;
            total.overlap_evals += s.overlap_evals;
        }
        total
    }

    /// Re-probe counters `(relookups, converted)`: Data Store re-probes
    /// after a wait — a dependency block or a contended compute gate —
    /// and how many of those found an exact match published during the
    /// wait. Each re-probe adds one extra Data Store lookup beyond the
    /// one-lookup-per-query baseline. Both are zero at one worker
    /// (nothing else is ever EXECUTING, and the gate is uncontended).
    pub fn relookup_stats(&self) -> (u64, u64) {
        (
            self.core.relookups.load(Ordering::Relaxed),
            self.core.relookup_hits.load(Ordering::Relaxed),
        )
    }

    /// Times a query gave up blocking because waiting would have formed a
    /// wait-for cycle (deadlock-avoidance fallbacks), summed across
    /// shards.
    pub fn blocked_fallbacks(&self) -> u64 {
        self.core
            .shards
            .iter()
            .map(|sh| sh.state.lock().blocked_fallbacks)
            .sum()
    }

    /// Releases a pool started with
    /// [`ServerConfig::with_start_paused`]: workers begin dequeuing.
    /// Idempotent; a no-op on a pool that was never paused.
    pub fn resume_workers(&self) {
        self.core.paused.store(false, Ordering::SeqCst);
        let _g = self.core.idle.lock();
        self.core.work_cv.notify_all();
    }

    /// Snapshot of the event log so far, in emission order. Empty unless
    /// the server was built with [`ServerConfig::with_observability`].
    /// Force-flushes every worker's staging buffer first, so the snapshot
    /// is complete up to this call.
    pub fn events(&self) -> Vec<EventRecord> {
        for i in 0..self.core.event_bufs.len() {
            self.core.buf_flush(i);
        }
        self.core.obs.log.snapshot()
    }

    /// Snapshot of the metrics registry, with the derived cache-efficiency
    /// gauges (`vmqs_ds_hit_ratio`, `vmqs_ps_merge_ratio`) refreshed from
    /// the live Data Store / Page Space counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        let ds = self.ds_stats();
        let lookups = ds.exact_hits + ds.partial_hits + ds.misses;
        let hit_ratio = if lookups == 0 {
            0.0
        } else {
            (ds.exact_hits + ds.partial_hits) as f64 / lookups as f64
        };
        self.core
            .obs
            .metrics
            .set_gauge("vmqs_ds_hit_ratio", hit_ratio);
        let ps = self.core.ps.stats();
        let merge_ratio = if ps.pages_fetched == 0 {
            0.0
        } else {
            1.0 - ps.runs_issued as f64 / ps.pages_fetched as f64
        };
        self.core
            .obs
            .metrics
            .set_gauge("vmqs_ps_merge_ratio", merge_ratio);
        let tier2 = self.core.store.read().tier2_used();
        self.core
            .obs
            .metrics
            .set_gauge("vmqs_ds_tier2_used_bytes", tier2 as f64);
        self.core.obs.metrics.snapshot()
    }

    /// Disables Page Space run merging (ablation knob).
    pub fn set_ps_merging(&self, enabled: bool) {
        self.core.ps.set_merging(enabled);
    }

    /// Validates the scheduling graph's internal invariants (state/index
    /// consistency, edge symmetry). Panics with the violation description
    /// — a test/debug aid for asserting that error paths leave no residue.
    pub fn check_invariants(&self) {
        let mut any_edges = false;
        for sh in &self.core.shards {
            let s = sh.state.lock();
            if let Err(e) = s.graph.validate() {
                panic!("scheduling-graph invariant violated: {e}");
            }
            any_edges |= !s.waiting_on.is_empty();
        }
        assert!(
            !any_edges || self.core.outstanding.load(Ordering::SeqCst) > 0,
            "wait-for edges with no outstanding queries"
        );
    }
}

impl<A: AppExecutor> Core<A> {
    /// Routes a spec to its home shard.
    fn home_shard(&self, spec: &A::Spec) -> usize {
        shard_of_spec(spec, self.shards.len())
    }

    /// Inserts an admitted query into its home shard and publishes the
    /// bookkeeping counters. The `total_waiting`/`depth` increments
    /// happen under the shard lock, so a dequeuer can never observe the
    /// query before the counters account for it.
    fn admit(&self, id: QueryId, spec: A::Spec, tx: ReplyTx<A::Spec>, degraded: bool) {
        let k = self.home_shard(&spec);
        let mut s = self.shards[k].state.lock();
        s.graph.insert(id, spec);
        s.pending.insert(id, tx);
        s.submit_time.insert(id, clock::now());
        if degraded {
            s.degraded.insert(id);
        }
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        self.total_waiting.fetch_add(1, Ordering::SeqCst);
        self.shards[k].depth.fetch_add(1, Ordering::SeqCst);
    }

    /// Submitter half of the eventcount idle protocol: the
    /// `total_waiting` increment (SeqCst, already published by `admit`)
    /// and the `sleepers` check form a Dekker pair with the worker's
    /// park sequence — at least one side always sees the other, and the
    /// `idle` lock bridges the check-to-wait window.
    fn wake_one(&self) {
        if self.pool_dead.load(Ordering::SeqCst) {
            // The pool died; whatever was just queued will never run.
            // Every admit path calls a wake, so sweeping here closes the
            // admit/pool-death race: either the submitter sees the flag
            // (and sweeps its own query), or the dying worker's sweep —
            // which runs after the flag store — sees the admitted query.
            fail_all_waiting(self);
            return;
        }
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _g = self.idle.lock();
            self.work_cv.notify_one();
        }
    }

    /// As [`Core::wake_one`], for batch submission and resume.
    fn wake_all(&self) {
        if self.pool_dead.load(Ordering::SeqCst) {
            fail_all_waiting(self);
            return;
        }
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _g = self.idle.lock();
            self.work_cv.notify_all();
        }
    }

    /// Worker half of the idle protocol: flush staged events (an idle
    /// boundary is a drain point), advertise as a sleeper, then re-check
    /// the wait condition under the `idle` lock before parking.
    fn idle_sleep(&self, me: usize) {
        self.buf_flush(me);
        let mut g = self.idle.lock();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        if !self.shutdown.load(Ordering::SeqCst)
            && (self.paused.load(Ordering::SeqCst)
                || self.total_waiting.load(Ordering::SeqCst) == 0)
        {
            self.work_cv.wait(&mut g);
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Stages a worker-side event in the worker's buffer. The sequence
    /// number is stamped now, so the eventual batched append lands in
    /// the log exactly where direct logging would have put it.
    fn buf_push(&self, me: usize, query: QueryId, kind: EventKind) {
        if !self.obs.log.enabled() {
            return;
        }
        self.event_bufs[me].lock().push(&self.obs.log, query, kind);
    }

    /// Drains a worker's staged events into the shared log.
    fn buf_flush(&self, me: usize) {
        if !self.obs.log.enabled() {
            return;
        }
        self.event_bufs[me].lock().flush(&self.obs.log);
    }

    /// Retires one outstanding query homed on shard `k`: wakes `drain`
    /// when the count hits zero and the shard's dependency blockers
    /// unconditionally. Callers must deliver the reply *before* this, so
    /// `drain` returning implies every handle is fulfilled.
    fn finish_one(&self, k: usize) {
        if self.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = self.drain_mx.lock();
            self.drain_cv.notify_all();
        }
        self.shards[k].done_cv.notify_all();
    }

    /// Takes a compute permit, waiting (deadline-aware) while all cores
    /// are busy with kernel executions. Returns whether a permit was
    /// actually taken: during shutdown the gate opens unconditionally so
    /// in-flight queries can finish, and those bypasses must not release
    /// a permit they never held. Callers hold no locks here.
    fn acquire_compute(&self, deadline: Option<Instant>) -> std::io::Result<bool> {
        let mut slots = self.compute_slots.lock();
        while *slots == 0 && !self.shutdown.load(Ordering::SeqCst) {
            match deadline {
                None => self.compute_cv.wait(&mut slots),
                Some(d) => {
                    if clock::now() >= d {
                        return Err(deadline_error());
                    }
                    self.compute_cv.wait_until(&mut slots, d);
                }
            }
        }
        if *slots > 0 {
            *slots -= 1;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Returns a compute permit and wakes one gate waiter.
    fn release_compute(&self) {
        let mut slots = self.compute_slots.lock();
        *slots += 1;
        drop(slots);
        self.compute_cv.notify_one();
    }

    /// The pressure monitor's secondary inputs: Data Store occupancy and
    /// Page Space miss/retry ratios, each in `[0, 1]`. Takes the store
    /// read lock only — callers must gather these *before* taking the
    /// admission lock (the store lock is never acquired below it).
    fn pressure_secondary(&self) -> (f64, f64, f64) {
        let (used, budget) = {
            let ds = self.store.read();
            (ds.used(), ds.budget())
        };
        let ds_occupancy = if budget == 0 {
            0.0
        } else {
            used as f64 / budget as f64
        };
        let ps = self.ps.stats();
        let lookups = ps.hits + ps.misses;
        let ps_miss_ratio = if lookups == 0 {
            0.0
        } else {
            ps.misses as f64 / lookups as f64
        };
        let reads = ps.pages_fetched + ps.read_retries;
        let retry_ratio = if reads == 0 {
            0.0
        } else {
            ps.read_retries as f64 / reads as f64
        };
        (ds_occupancy, ps_miss_ratio, retry_ratio)
    }
}

/// A dequeued query, detached from its shard's lock: everything `run_one`
/// needs to execute and complete it.
struct Job<S> {
    shard: usize,
    id: QueryId,
    spec: S,
    submitted: Instant,
    score: f64,
    was_degraded: bool,
}

fn worker_entry<A: AppExecutor>(core: Arc<Core<A>>, me: usize) {
    let order = steal_order(me, core.shards.len(), core.cfg.steal_seed);
    loop {
        if core.shutdown.load(Ordering::SeqCst) {
            core.buf_flush(me);
            return;
        }
        if core.paused.load(Ordering::SeqCst) || core.total_waiting.load(Ordering::SeqCst) == 0 {
            core.idle_sleep(me);
            continue;
        }
        // Own shard first; steal from the richest victim (by the
        // lock-free depth mirrors, ties broken by this worker's seeded
        // permutation) only when the home ready queue is empty.
        let job = match try_dequeue(&core, me) {
            Some(job) => Some(job),
            None => {
                // A steal boundary is an event-drain point.
                core.buf_flush(me);
                let mut best: Option<(usize, usize)> = None;
                for &v in &order {
                    let d = core.shards[v].depth.load(Ordering::SeqCst);
                    if d > 0 && best.is_none_or(|(bd, _)| d > bd) {
                        best = Some((d, v));
                    }
                }
                best.and_then(|(_, v)| try_dequeue(&core, v))
            }
        };
        // Raced another worker for the last entries; re-check from the
        // top (the counters may have gone to zero, in which case we
        // park instead of spinning).
        let Some(job) = job else { continue };
        // Supervision (DESIGN.md §15): a panicking compute kills this
        // worker, not the pool. The unwind is caught here — after the
        // inner guard in `execute_query` has already returned the compute
        // permit and aborted the reservation — the orphaned query is
        // requeued or quarantined, and a replacement worker is spawned
        // under the restart budget. Lock guards released on the unwind
        // path leave consistent state: the injected panic point fires
        // with no engine lock held.
        let (k, id, submitted, was_degraded) = (job.shard, job.id, job.submitted, job.was_degraded);
        if catch_unwind(AssertUnwindSafe(|| run_one(&core, me, job))).is_err() {
            // The restart-budget token is claimed (and the restart
            // counted) *before* the query's handle resolves, so a caller
            // whose wait() just returned observes restart accounting
            // consistent with the panics that caused it; only the thread
            // spawn itself happens after the back-out.
            let replacement = claim_restart(&core);
            handle_worker_panic(&core, me, k, id, submitted, was_degraded, replacement);
            respawn_or_retire(core, me, replacement);
            return;
        }
    }
}

/// Backs out a panicked worker's in-flight query. The panic unwound
/// through `run_one` with no locks held (guards release on unwind) and
/// the compute permit/reservation already returned by the inner guard in
/// `execute_query`; what remains is the scheduling residue: the query is
/// EXECUTING in its shard's graph with its reply channel still pending.
/// Below the quarantine limit it is requeued for a sibling shard's
/// worker (or the replacement); at the limit it is failed typed-ly — a
/// deterministic poison query must not crash-loop the pool.
fn handle_worker_panic<A: AppExecutor>(
    core: &Core<A>,
    me: usize,
    k: usize,
    id: QueryId,
    submitted: Instant,
    was_degraded: bool,
    replacement: bool,
) {
    core.worker_panics.fetch_add(1, Ordering::Relaxed);
    core.qmet.worker_panics.inc();
    core.buf_push(me, id, EventKind::WorkerPanicked);
    let attempts = {
        let mut q = core.quarantine.lock();
        let e = q.entry(id).or_insert(0);
        *e += 1;
        *e
    };
    let mut s = core.shards[k].state.lock();
    s.waiting_on.remove(&id);
    if attempts < core.cfg.quarantine_limit && s.graph.requeue(id) {
        // Orphaned work back into the dequeue index with its original
        // arrival order; the counter increments stay under the shard
        // lock (like `admit`) so a dequeuer never sees the query before
        // the counters account for it.
        s.submit_time.insert(id, submitted);
        if was_degraded {
            s.degraded.insert(id);
        }
        core.shards[k].depth.fetch_add(1, Ordering::SeqCst);
        core.total_waiting.fetch_add(1, Ordering::SeqCst);
        drop(s);
        if replacement {
            count_restart(core, me, id);
        }
        core.buf_flush(me);
        core.wake_one();
        return;
    }
    // Quarantine (or, defensively, a panic that left the query past
    // EXECUTING): the same terminal back-out a failed query takes, with
    // a typed error.
    let quarantined = attempts >= core.cfg.quarantine_limit;
    if s.graph.state_of(id) == Some(QueryState::Executing) {
        s.graph.mark_cached(id);
    }
    if s.graph.state_of(id) == Some(QueryState::Cached) && !s.blob_of.contains_key(&id) {
        s.graph.swap_out(id);
    }
    s.submit_time.remove(&id);
    s.degraded.remove(&id);
    let tx = s.pending.remove(&id);
    drop(s);
    core.quarantine.lock().remove(&id);
    core.failed.fetch_add(1, Ordering::Relaxed);
    core.qmet.failed.inc();
    let err = if quarantined {
        core.quarantined.fetch_add(1, Ordering::Relaxed);
        core.qmet.quarantined.inc();
        core.buf_push(me, id, EventKind::Quarantined { attempts });
        ServerError::Quarantined { attempts }
    } else {
        ServerError::WorkerPanicked
    };
    core.buf_push(me, id, EventKind::Failed);
    if replacement {
        count_restart(core, me, id);
    }
    core.buf_flush(me);
    if let Some(tx) = tx {
        let _ = tx.send(Err(err));
    }
    core.finish_one(k);
}

/// Claims one restart-budget token for a replacement worker, without
/// spawning it yet. Called before the panicked query's back-out so the
/// restart is accounted (counter + event, via [`count_restart`]) before
/// the query's handle resolves — a caller observing the typed failure
/// sees restart counts consistent with the panics that caused them.
fn claim_restart<A: AppExecutor>(core: &Core<A>) -> bool {
    if core.shutdown.load(Ordering::SeqCst) {
        return false;
    }
    let mut left = core.restarts_left.load(Ordering::SeqCst);
    while left > 0 {
        match core.restarts_left.compare_exchange(
            left,
            left - 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => return true,
            Err(v) => left = v,
        }
    }
    false
}

/// Restart accounting for a claimed budget token: counter, metric, and
/// the `WorkerRestarted` event, pushed into the worker's buffer so it
/// flushes in order behind the panic/quarantine events.
fn count_restart<A: AppExecutor>(core: &Core<A>, me: usize, killer: QueryId) {
    core.worker_restarts.fetch_add(1, Ordering::Relaxed);
    core.qmet.worker_restarts.inc();
    core.buf_push(me, killer, EventKind::WorkerRestarted);
}

/// A panicked worker's last act: spawn the replacement whose budget
/// token [`claim_restart`] already claimed (and whose restart
/// [`count_restart`] already accounted), or retire for good. When the
/// last live worker retires, the pool is dead — WAITING queries are
/// failed typed-ly (no one will ever run them) and later submissions
/// are refused up front. Runs after the back-out so a retiring worker's
/// pool-death sweep catches the query the back-out just requeued.
fn respawn_or_retire<A: AppExecutor>(core: Arc<Core<A>>, me: usize, replacement: bool) {
    if replacement {
        let c2 = Arc::clone(&core);
        // On Err the OS refused the thread: retire instead. The budget
        // token is forfeit and the restart stays counted — a one-off
        // overcount in a corner where the process is already failing to
        // spawn threads.
        if let Ok(h) = std::thread::Builder::new()
            .name(format!("vmqs-query-{me}"))
            .spawn(move || worker_entry(c2, me))
        {
            core.respawned.lock().push(h);
            return;
        }
    }
    // Retiring for good. If this was the last live worker, the pool is
    // dead: nothing WAITING will ever run.
    if core.live_workers.fetch_sub(1, Ordering::SeqCst) == 1
        && !core.shutdown.load(Ordering::SeqCst)
    {
        core.pool_dead.store(true, Ordering::SeqCst);
        fail_all_waiting(&core);
    }
}

/// Fails every WAITING query with [`ServerError::WorkerPanicked`] — the
/// pool-death path: the last worker retired with the restart budget
/// exhausted, so queued work would wedge forever. Each victim takes the
/// shed/failure exit (WAITING → CACHED → SWAPPED_OUT), so the graph
/// keeps its invariants and `drain` completes.
fn fail_all_waiting<A: AppExecutor>(core: &Core<A>) {
    for (k, sh) in core.shards.iter().enumerate() {
        loop {
            let (vid, tx) = {
                let mut s = sh.state.lock();
                let Some(vid) = s.graph.ids_in_state(QueryState::Waiting).into_iter().next() else {
                    break;
                };
                if !s.graph.dequeue_specific(vid) {
                    break;
                }
                s.graph.mark_cached(vid);
                s.graph.swap_out(vid);
                s.submit_time.remove(&vid);
                s.degraded.remove(&vid);
                let tx = s.pending.remove(&vid);
                core.shards[k].depth.fetch_sub(1, Ordering::SeqCst);
                core.total_waiting.fetch_sub(1, Ordering::SeqCst);
                (vid, tx)
            };
            core.failed.fetch_add(1, Ordering::Relaxed);
            core.qmet.failed.inc();
            core.obs.log.log(vid, EventKind::Failed);
            if let Some(tx) = tx {
                let _ = tx.send(Err(ServerError::WorkerPanicked));
            }
            core.finish_one(k);
        }
    }
}

/// Dequeues the highest-ranked WAITING query from shard `k`, if any.
/// Peeks the lock-free depth mirror first so scanning an empty shard
/// costs no lock at all.
fn try_dequeue<A: AppExecutor>(core: &Core<A>, k: usize) -> Option<Job<A::Spec>> {
    if core.shards[k].depth.load(Ordering::SeqCst) == 0 {
        return None;
    }
    let mut s = core.shards[k].state.lock();
    // With grafting on, prefer a WAITING producer over a consumer it
    // fully covers (ROADMAP item 1): dequeuing the consumer first would
    // either duplicate the full compute or leave the consumer blocked on
    // a producer that has not even started.
    let id = if core.cfg.graft {
        s.graph.dequeue_preferring_producer()?
    } else {
        s.graph.dequeue()?
    };
    core.shards[k].depth.fetch_sub(1, Ordering::SeqCst);
    core.total_waiting.fetch_sub(1, Ordering::SeqCst);
    // The rank the scheduler chose the query by, frozen at dequeue.
    let score = s.graph.rank_of(id).map_or(0.0, |r| r.value());
    let spec = match s.graph.spec_of(id) {
        Some(spec) => *spec,
        None => {
            // A dequeued node always has a spec; if the graph is
            // inconsistent, fail this query rather than the pool.
            s.graph.mark_cached(id);
            s.graph.swap_out(id);
            s.submit_time.remove(&id);
            s.degraded.remove(&id);
            let tx = s.pending.remove(&id);
            drop(s);
            core.failed.fetch_add(1, Ordering::Relaxed);
            core.qmet.failed.inc();
            core.obs.log.log(id, EventKind::Failed);
            if let Some(tx) = tx {
                let _ = tx.send(Err(ServerError::Io {
                    kind: std::io::ErrorKind::Other,
                    transient: false,
                    message: "internal: dequeued query has no spec".into(),
                }));
            }
            core.finish_one(k);
            return None;
        }
    };
    let submitted = s.submit_time.remove(&id).unwrap_or_else(clock::now);
    let was_degraded = s.degraded.remove(&id);
    Some(Job {
        shard: k,
        id,
        spec,
        submitted,
        score,
        was_degraded,
    })
}

fn run_one<A: AppExecutor>(core: &Core<A>, me: usize, job: Job<A::Spec>) {
    let Job {
        shard: k,
        id,
        spec,
        submitted,
        score,
        was_degraded,
    } = job;
    core.buf_push(
        me,
        id,
        EventKind::Ranked {
            strategy: core.cfg.strategy.name(),
            score,
        },
    );
    // The deadline covers the whole client-visible response time:
    // it starts at submission, so queue wait counts against it.
    let query_deadline = core.cfg.query_timeout.map(|t| submitted + t);
    let started = clock::now();
    // The hang watchdog (DESIGN.md §15) rides the existing deadline
    // machinery: the effective deadline is the earlier of the per-query
    // deadline (anchored at submission) and the hang limit (anchored at
    // execution start), so a stuck query is cancelled at every blocking
    // point the deadline already covers — and classified `Hung` below
    // when the hang bound was the binding one.
    let deadline = match core.cfg.hang_timeout {
        Some(h) => {
            let hang_at = started + h;
            Some(query_deadline.map_or(hang_at, |d| d.min(hang_at)))
        }
        None => query_deadline,
    };
    core.qmet
        .queue_wait
        .observe((started - submitted).as_secs_f64());
    let exec = execute_query(core, me, k, id, spec, deadline);
    let finished = clock::now();

    // Publish the result. Each state component is locked on its own,
    // in sequence; the result bytes were materialized as `Arc<[u8]>`
    // outside any lock, so critical sections stay pointer-sized.
    let msg = match exec {
        Ok(out) => {
            let size = core.app.output_len(&spec) as u64;
            let n = core.shards.len();
            let mut evicted: Vec<EvictionRecord<A::Spec>> = Vec::new();
            // Measured recomputation cost: the wall seconds this worker
            // spent producing the result (I/O + kernel + blocked time).
            // Seeds the entry's benefit score under the cost-based
            // policy; the legacy policies carry it but never read it.
            let cost = (finished - started).as_secs_f64();
            let (cached, spills) = {
                let mut ds = core.store.write();
                // A full compute landing next to an already-visible
                // equivalent result is work a perfect co-scheduler would
                // have avoided (ROADMAP item 1); count it before
                // publishing our own copy. The reserved entry (if any)
                // is still invisible, so it never matches itself.
                if out.path == AnswerPath::FullCompute && ds.has_equivalent(&spec) {
                    core.duplicate_full_computes.fetch_add(1, Ordering::Relaxed);
                }
                let cached = match out.reserved {
                    // Commit the pre-reserved SUBSCRIBABLE entry in
                    // place: subscribers that grafted onto it mid-flight
                    // read exactly these bytes. Space was accounted at
                    // reservation, so no eviction happens here.
                    Some(blob) => {
                        ds.commit_costed(blob, Payload::Bytes(Arc::clone(&out.image)), cost);
                        Ok(blob)
                    }
                    None => ds.insert_costed(
                        id,
                        spec,
                        size,
                        cost,
                        Payload::Bytes(Arc::clone(&out.image)),
                        &mut evicted,
                    ),
                };
                // Persist any demotions inside this same critical
                // section: no thread may observe a RESTORABLE entry
                // whose frame is not on disk yet.
                let spills = drain_spills(core, &mut ds, &mut evicted);
                (cached, spills)
            };
            // Publish-epoch bump *before* `done_cv` wakes dependency
            // blockers (in `finish_one`), so a woken waiter always sees
            // a moved epoch and re-probes.
            core.publish_epoch.fetch_add(1, Ordering::SeqCst);
            // Only now hand the compute permit back: a peer queued at
            // the gate for this very spec wakes into a store that
            // already holds the answer.
            if out.held_permit {
                core.release_compute();
            }
            {
                let mut s = core.shards[k].state.lock();
                s.graph.mark_cached(id);
                // Evicted producers homed on this shard transition under
                // the lock we already hold; foreign ones are routed to
                // their home shards below (one shard lock at a time).
                for r in &evicted {
                    if shard_of_spec(&r.spec, n) == k {
                        route_one(&mut s, r);
                    }
                }
                match cached {
                    Ok(blob) => {
                        if s.dead_blobs.remove(&blob) {
                            // A peer's knapsack already evicted this
                            // result in the window between our commit
                            // and this lock: honor its tombstone.
                            s.graph.swap_out(id);
                        } else {
                            s.blob_of.insert(id, blob);
                        }
                    }
                    Err(_) => {
                        // Result cannot be cached (budget too small):
                        // treat it as immediately swapped out.
                        s.graph.swap_out(id);
                    }
                }
            }
            for r in &evicted {
                let home = shard_of_spec(&r.spec, n);
                if home != k {
                    let mut s = core.shards[home].state.lock();
                    route_one(&mut s, r);
                }
            }
            for r in evicted {
                core.buf_push(
                    me,
                    r.producer,
                    EventKind::Evicted {
                        tier: r.tier,
                        score: r.score,
                    },
                );
                core.qmet.ds_evictions.inc();
            }
            emit_spills(core, me, spills);
            match out.path {
                AnswerPath::ExactHit => core.qmet.ds_exact_hits.inc(),
                AnswerPath::PartialReuse => core.qmet.ds_partial_hits.inc(),
                AnswerPath::FullCompute => core.qmet.ds_misses.inc(),
                // Grafts are accounted per-record (ServerSummary); the
                // store's hit/miss counters never saw a lookup for them.
                AnswerPath::Grafted => {}
            }
            core.qmet.completed.inc();
            core.qmet
                .service_time
                .observe((finished - started).as_secs_f64());
            core.buf_push(me, id, EventKind::Completed);
            let (w, h) = core.app.output_dims(&spec);
            let record = QueryRecord {
                id,
                spec,
                wait_time: started - submitted,
                exec_time: finished - started,
                blocked_time: out.blocked,
                path: out.path,
                reused_bytes: out.reused_bytes,
                covered_fraction: out.covered_fraction,
                pages_requested: out.pages_requested,
                degraded: was_degraded,
            };
            core.metrics.lock().push(record);
            Ok(QueryResult {
                id,
                image: out.image,
                width: w,
                height: h,
                record,
            })
        }
        Err(e) => {
            // Evict the failed query from the graph entirely — CACHED
            // then SWAPPED_OUT, the same terminal path a successful
            // uncacheable query takes — and clear any wait-for edge it
            // still owns, so peers see no residue: no DS entry, no
            // blob mapping, no dangling edges.
            let mut err = ServerError::from_io(&e, core.cfg.query_timeout);
            // A deadline cancellation whose binding bound was the hang
            // limit is a watchdog cancellation, not a client timeout —
            // rewrite it, but keep the timeout classification so the
            // conservation accounting folds it into `timed_out`.
            if matches!(err, ServerError::Timeout { .. }) {
                if let Some(h) = core.cfg.hang_timeout {
                    if query_deadline.is_none_or(|d| started + h < d) {
                        err = ServerError::Hung { limit: h };
                        core.hung.fetch_add(1, Ordering::Relaxed);
                        core.qmet.hung.inc();
                        core.buf_push(me, id, EventKind::Hung);
                    }
                }
            }
            if err.is_timeout() {
                core.timed_out.fetch_add(1, Ordering::Relaxed);
                core.qmet.timed_out.inc();
                core.buf_push(me, id, EventKind::TimedOut);
            } else {
                core.failed.fetch_add(1, Ordering::Relaxed);
                core.qmet.failed.inc();
                core.buf_push(me, id, EventKind::Failed);
            }
            let mut s = core.shards[k].state.lock();
            s.graph.mark_cached(id);
            s.graph.swap_out(id);
            s.waiting_on.remove(&id);
            debug_assert!(!s.blob_of.contains_key(&id));
            drop(s);
            Err(err)
        }
    };
    // A query that reached a terminal on its own clears any panic
    // attempts it accrued on earlier requeues. Gated on the panic
    // counter so chaos-free runs never touch the quarantine lock.
    if core.worker_panics.load(Ordering::Relaxed) > 0 {
        core.quarantine.lock().remove(&id);
    }
    // Deliver the answer *before* retiring the query, so that `drain`
    // returning implies every handle is already fulfilled.
    let tx = core.shards[k].state.lock().pending.remove(&id);
    if let Some(tx) = tx {
        let _ = tx.send(msg);
    }
    core.finish_one(k);
}

struct ExecOutcome {
    image: Arc<[u8]>,
    path: AnswerPath,
    reused_bytes: u64,
    covered_fraction: f64,
    pages_requested: u64,
    blocked: Duration,
    /// True when the query computed and still holds its compute-gate
    /// permit: the caller releases it only *after* the result is
    /// inserted and the publish epoch bumped, so a peer waking at the
    /// gate always finds the freshly published result on its re-probe.
    held_permit: bool,
    /// The SUBSCRIBABLE Data Store reservation this query opened before
    /// computing (grafting enabled, DESIGN.md §13). `run_one` publishes
    /// the result by *committing* this blob — in place, so subscribers
    /// that discovered the entry mid-flight read the bytes they were
    /// promised — instead of inserting a fresh entry. `None` when
    /// grafting is off, the reservation failed (budget), or the query
    /// never reached the compute path.
    reserved: Option<BlobId>,
}

/// True when making `waiter` wait on `target` would close a cycle in the
/// wait-for graph (must be called with the scheduler lock held).
fn would_deadlock(
    waiting_on: &HashMap<QueryId, QueryId>,
    waiter: QueryId,
    target: QueryId,
) -> bool {
    let mut cur = target;
    let mut hops = 0;
    while let Some(&next) = waiting_on.get(&cur) {
        if next == waiter {
            return true;
        }
        cur = next;
        hops += 1;
        if hops > waiting_on.len() {
            // Defensive: a longer chain than entries means a cycle exists
            // somewhere already.
            return true;
        }
    }
    false
}

fn execute_query<A: AppExecutor>(
    core: &Core<A>,
    me: usize,
    k: usize,
    id: QueryId,
    spec: A::Spec,
    deadline: Option<Instant>,
) -> std::io::Result<ExecOutcome> {
    let mut blocked = Duration::ZERO;

    // A query that spent its whole budget queued is cancelled before any
    // work happens on its behalf.
    if deadline.is_some_and(|d| clock::now() >= d) {
        return Err(deadline_error());
    }

    // Snapshot the publish epoch *before* the first lookup: if it has
    // moved by the time this query is about to compute, some peer
    // published a result the first lookup could not have seen, and a
    // re-probe may convert the compute into a reuse.
    let epoch0 = core.publish_epoch.load(Ordering::SeqCst);

    // Step 1 — indexed Data Store lookup under the shared read lock:
    // collect exact/partial matches with their payloads (Arc clones;
    // projection happens outside the lock, concurrently with other
    // readers' lookups).
    let lookup = || {
        let mut exact: Option<Arc<[u8]>> = None;
        let mut sources: Vec<(A::Spec, Arc<[u8]>)> = Vec::new();
        let ds = core.store.read();
        let log_on = core.obs.log.enabled();
        for m in ds.lookup(&spec) {
            if let Some(e) = ds.get(m.blob) {
                if let Payload::Bytes(bytes) = &e.payload {
                    let is_exact = exact.is_none() && e.spec.cmp(&spec);
                    if log_on {
                        core.buf_push(
                            me,
                            id,
                            EventKind::LookupHit {
                                source: m.producer,
                                overlap: m.overlap,
                                exact: is_exact,
                            },
                        );
                    }
                    if is_exact {
                        exact = Some(Arc::clone(bytes));
                    } else {
                        sources.push((e.spec, Arc::clone(bytes)));
                    }
                }
            }
        }
        (exact, sources)
    };
    let exact_outcome = |bytes: Arc<[u8]>, blocked: Duration| ExecOutcome {
        // Complete reuse: common subexpression elimination (Eq. 1).
        image: bytes,
        path: AnswerPath::ExactHit,
        reused_bytes: core.app.output_len(&spec) as u64,
        covered_fraction: 1.0,
        pages_requested: 0,
        blocked,
        held_permit: false,
        reserved: None,
    };

    let (exact, mut sources) = lookup();
    if let Some(bytes) = exact {
        // An exact match cannot be improved by waiting for an in-flight
        // peer, so the hit path skips dependency blocking (and its shard
        // lock) entirely.
        return Ok(exact_outcome(bytes, blocked));
    }

    // Step 1b — tier-2 re-heat (DESIGN.md §14): no exact match resident,
    // but a spilled entry may cover this query exactly. Restoring it
    // costs a disk read instead of a recompute. A failed read (poisoned
    // or corrupt frame) drops the entry and falls through to the normal
    // compute path via the typed-error machinery — never a worker panic.
    if let Some(bytes) = try_restore(core, me, id, &spec) {
        return Ok(exact_outcome(bytes, blocked));
    }

    // Step 2a — grafting (DESIGN.md §13): probe for an in-flight peer
    // whose eventual result covers this query, subscribe to its
    // SUBSCRIBABLE reservation, and consume the published bytes instead
    // of recomputing or waiting for the result to reach CACHED. Only
    // same-shard producers are grafted onto, so the wait can reuse the
    // shard's wait-for map and the deadlock cycle check stays complete —
    // an exact-coverage producer is always same-shard, since identical
    // specs hash to the same home (this is also why a graft can never be
    // stolen away from its producer's shard: both queries live there).
    let mut graft_waited = false;
    if core.cfg.graft {
        let cands = core.store.read().lookup_subscribable(&spec);
        for c in cands {
            if c.producer == id {
                continue;
            }
            let (pspec, phase) = {
                let ds = core.store.read();
                let Some(e) = ds.get(c.blob) else { continue };
                let pspec = e.spec;
                if shard_of_spec(&pspec, core.shards.len()) != k {
                    continue;
                }
                let Some(phase) = ds.subscribe(c.blob) else {
                    continue;
                };
                (pspec, phase)
            };
            if !matches!(phase, Phase::Subscribable | Phase::Full) {
                // `subscribe` released the count itself: the entry died
                // or was republished between probe and attach.
                continue;
            }
            if phase == Phase::Subscribable {
                // The producer is still computing. Wait for the publish
                // on its home shard (ours) exactly like a dependency
                // block: same wait-for edge, same cycle check, same
                // deadline handling. `run_one` commits the entry before
                // it transitions the producer out of EXECUTING, so when
                // this wait ends the bytes are already in the store.
                let sh = &core.shards[k];
                let mut s = sh.state.lock();
                if would_deadlock(&s.waiting_on, id, c.producer) {
                    s.blocked_fallbacks += 1;
                    drop(s);
                    core.store.read().unsubscribe(c.blob);
                    continue;
                }
                s.waiting_on.insert(id, c.producer);
                let t0 = clock::now();
                while s.graph.state_of(c.producer) == Some(QueryState::Executing)
                    && !core.shutdown.load(Ordering::SeqCst)
                {
                    match deadline {
                        None => sh.done_cv.wait(&mut s),
                        Some(d) => {
                            if clock::now() >= d {
                                // Deadline expired while grafted:
                                // withdraw the edge and the
                                // subscription, then cancel.
                                s.waiting_on.remove(&id);
                                drop(s);
                                core.store.read().unsubscribe(c.blob);
                                return Err(deadline_error());
                            }
                            sh.done_cv.wait_until(&mut s, d);
                        }
                    }
                }
                s.waiting_on.remove(&id);
                drop(s);
                blocked += t0.elapsed();
                graft_waited = true;
            }
            // The subscription pinned the entry against eviction and
            // swap-out; it is gone (or still unpublished) only if the
            // producer failed and aborted the reservation.
            let published = {
                let ds = core.store.read();
                let bytes = ds.get(c.blob).and_then(|e| match &e.payload {
                    Payload::Bytes(b) if e.visible() => Some(Arc::clone(b)),
                    _ => None,
                });
                ds.unsubscribe(c.blob);
                bytes
            };
            let Some(bytes) = published else { continue };
            core.buf_push(
                me,
                id,
                EventKind::Grafted {
                    producer: c.producer,
                },
            );
            if c.exact {
                return Ok(ExecOutcome {
                    image: bytes,
                    path: AnswerPath::Grafted,
                    reused_bytes: core.app.output_len(&spec) as u64,
                    covered_fraction: 1.0,
                    pages_requested: 0,
                    blocked,
                    held_permit: false,
                    reserved: None,
                });
            }
            // Partial graft: the producer's bytes join the reuse sources
            // (most-reusable first) and the remainder is computed below.
            sources.insert(0, (pspec, bytes));
            break;
        }
    }

    // Step 2 — deadlock-avoiding block on the strongest EXECUTING query we
    // could reuse (paper §4: queries stall on in-flight dependencies; CNBF
    // exists to make this rare). Reuse edges are intra-shard, so the
    // dependency — and the wait-for cycle check — live entirely on the
    // query's home shard; its `done_cv` signals the peer's completion.
    // A graft already waited out (and consumed) its strongest in-flight
    // dependency, so it skips straight to the compute.
    if core.cfg.allow_blocking && !graft_waited {
        let sh = &core.shards[k];
        let mut s = sh.state.lock();
        let dep = s
            .graph
            .reuse_sources(id)
            .into_iter()
            .find(|e| s.graph.state_of(e.peer) == Some(QueryState::Executing));
        if let Some(dep) = dep {
            if would_deadlock(&s.waiting_on, id, dep.peer) {
                s.blocked_fallbacks += 1;
            } else {
                s.waiting_on.insert(id, dep.peer);
                let t0 = clock::now();
                while s.graph.state_of(dep.peer) == Some(QueryState::Executing)
                    && !core.shutdown.load(Ordering::SeqCst)
                {
                    match deadline {
                        None => sh.done_cv.wait(&mut s),
                        Some(d) => {
                            if clock::now() >= d {
                                // Deadline expired while blocked on the
                                // dependency: withdraw the wait-for edge
                                // and cancel.
                                s.waiting_on.remove(&id);
                                return Err(deadline_error());
                            }
                            sh.done_cv.wait_until(&mut s, d);
                        }
                    }
                }
                s.waiting_on.remove(&id);
                blocked = t0.elapsed();
            }
        }
    }

    // Step 2b — open this query's own SUBSCRIBABLE reservation so later
    // overlapping admissions can graft onto *us* while we compute. The
    // exact output size is known up front; a failed reservation (budget
    // too small) just means no one can graft onto this query.
    let mut reserved: Option<BlobId> = None;
    if core.cfg.graft {
        let mut evicted: Vec<EvictionRecord<A::Spec>> = Vec::new();
        let size = core.app.output_len(&spec) as u64;
        let spills = {
            let mut ds = core.store.write();
            reserved = ds.reserve_subscribable(id, spec, size, &mut evicted).ok();
            drain_spills(core, &mut ds, &mut evicted)
        };
        route_evictions(core, me, evicted);
        emit_spills(core, me, spills);
    }
    // Every early exit below this point must abort the reservation, or
    // subscribers would wait on an entry no one will ever commit.
    let abort_reservation = |r: Option<BlobId>| {
        if let Some(b) = r {
            core.store.write().abort(b);
        }
    };

    // Steps 3–4 — the application projects cached coverage and computes
    // the remainder through a deadline-scoped Page Space session. No
    // locks held; the compute gate bounds concurrent kernel executions
    // to the core count so an oversubscribed pool pipelines computes
    // instead of timeslicing them (cache hits returned above never get
    // stuck behind one).
    let took_permit = match core.acquire_compute(deadline) {
        Ok(t) => t,
        Err(e) => {
            abort_reservation(reserved);
            return Err(e);
        }
    };
    if core.publish_epoch.load(Ordering::SeqCst) != epoch0 {
        // A peer published a result after our first lookup — whether we
        // blocked on a dependency, queued at the gate, or simply lost a
        // race on another shard. Re-probe before burning a core: an
        // exact match turns this compute into a reuse, and fresher
        // partials shrink it. At one worker the epoch cannot move
        // between snapshot and check (the only thread that could bump
        // it is the one reading it), so golden traces see a single
        // lookup.
        core.relookups.fetch_add(1, Ordering::Relaxed);
        let (exact, mut fresh) = lookup();
        if let Some(bytes) = exact {
            core.relookup_hits.fetch_add(1, Ordering::Relaxed);
            if took_permit {
                core.release_compute();
            }
            // The reservation rides along: `run_one` commits the hit's
            // bytes into it, so subscribers that grafted onto this query
            // get the answer rather than a dead entry.
            return Ok(ExecOutcome {
                reserved,
                ..exact_outcome(bytes, blocked)
            });
        }
        // Keep first-probe sources the re-probe no longer sees (evicted
        // meanwhile) — their payloads are still valid Arcs, and dropping
        // coverage would only grow the compute.
        for (s_old, b_old) in sources {
            if !fresh.iter().any(|(s, _)| s.cmp(&s_old)) {
                fresh.push((s_old, b_old));
            }
        }
        sources = fresh;
    }
    // The chaos panic point and the application kernel run inside an
    // unwind guard: a panic here must not leak the compute permit or
    // wedge graft subscribers on an uncommitted reservation, so both are
    // released before the panic resumes toward the supervision layer in
    // `worker_entry` (DESIGN.md §15). The ordinal is drawn outside the
    // guard so a poisoned retry consumes a fresh one.
    let ordinal = core.compute_seq.fetch_add(1, Ordering::Relaxed);
    let out = match catch_unwind(AssertUnwindSafe(|| {
        if core.cfg.chaos.compute_should_panic(ordinal, id.0) {
            panic!("injected chaos panic: compute ordinal {ordinal}, query {id:?}");
        }
        core.app
            .execute(&spec, &sources, &core.ps.session_for(id, deadline))
    })) {
        Ok(Ok(out)) => out,
        Ok(Err(e)) => {
            // Nothing will be published on this path, so the permit is
            // returned right away and the reservation aborted —
            // subscribers wake on this query's terminal transition and
            // find the entry gone.
            if took_permit {
                core.release_compute();
            }
            abort_reservation(reserved);
            return Err(e);
        }
        Err(payload) => {
            if took_permit {
                core.release_compute();
            }
            abort_reservation(reserved);
            resume_unwind(payload);
        }
    };
    debug_assert_eq!(out.bytes.len(), core.app.output_len(&spec));
    if out.subqueries > 0 {
        core.buf_push(
            me,
            id,
            EventKind::SubquerySpawned {
                count: out.subqueries,
            },
        );
    }
    let path = if out.reused_bytes > 0 {
        AnswerPath::PartialReuse
    } else {
        AnswerPath::FullCompute
    };
    let image: Arc<[u8]> = out.bytes.into();
    Ok(ExecOutcome {
        // The only full-size copy of the result, made outside every lock.
        image,
        path,
        reused_bytes: out.reused_bytes,
        covered_fraction: out.covered_fraction,
        pages_requested: out.pages_requested,
        blocked,
        // The permit rides along: `run_one` releases it after the
        // insert + epoch bump so gate-waiters re-probe a store that
        // already contains this result.
        held_permit: took_permit,
        reserved,
    })
}

/// Routes one eviction record under its home shard's lock: a producer
/// already CACHED transitions to SWAPPED_OUT; a producer still
/// EXECUTING — its freshly committed result lost the knapsack before
/// its own completion bookkeeping ran, a window only the cost-based
/// policy can hit (recency policies never pick the newest stamp) —
/// gets a `dead_blobs` tombstone it consumes itself, since `swap_out`
/// on an EXECUTING node would corrupt the graph.
fn route_one<S: SpatialSpec>(s: &mut ShardState<S>, r: &EvictionRecord<S>) {
    match s.graph.state_of(r.producer) {
        Some(QueryState::Cached) => {
            s.blob_of.remove(&r.producer);
            s.graph.swap_out(r.producer);
        }
        // No graph node at all: the producer is a recovered-frame
        // placeholder (`RECOVERED_PRODUCER`) or long since forgotten —
        // nothing to transition and no one to leave a tombstone for.
        None => {}
        _ => {
            s.dead_blobs.insert(r.blob);
        }
    }
}

/// Transitions evicted producers to SWAPPED_OUT on their home shards
/// (one shard lock at a time) and emits their eviction events — the
/// out-of-line sibling of `run_one`'s inline publish-path routing, for
/// eviction sites that hold no shard lock.
fn route_evictions<A: AppExecutor>(
    core: &Core<A>,
    me: usize,
    evicted: Vec<EvictionRecord<A::Spec>>,
) {
    let n = core.shards.len();
    for r in &evicted {
        let home = shard_of_spec(&r.spec, n);
        let mut s = core.shards[home].state.lock();
        route_one(&mut s, r);
    }
    for r in evicted {
        core.buf_push(
            me,
            r.producer,
            EventKind::Evicted {
                tier: r.tier,
                score: r.score,
            },
        );
        core.qmet.ds_evictions.inc();
    }
}

/// Persists freshly demoted entries to the tier-2 store and deletes the
/// frames of entries dropped *from* tier 2. Must run inside the caller's
/// store write-lock critical section, so no thread can observe a
/// RESTORABLE entry whose on-disk frame does not exist yet. A frame that
/// cannot be written turns its demotion into a drop (the entry joins
/// `evicted` and its producer is swapped out like any other victim).
/// Returns `(producer, bytes)` pairs for `Spilled` event emission after
/// the lock is released.
fn drain_spills<A: AppExecutor>(
    core: &Core<A>,
    ds: &mut SpatialDataStore<A::Spec>,
    evicted: &mut Vec<EvictionRecord<A::Spec>>,
) -> Vec<(QueryId, u64)> {
    let mut out = Vec::new();
    let Some(spill) = &core.spill else {
        debug_assert!(
            ds.take_pending_spills().is_empty(),
            "tier-2 budget configured without a spill store"
        );
        return out;
    };
    for req in ds.take_pending_spills() {
        let written = match &req.payload {
            // The frame's meta block carries the serialized predicate so
            // a post-crash recovery scan can rebuild the entry.
            Payload::Bytes(b) => spill
                .write(req.blob, &core.app.encode_spec(&req.spec), b)
                .is_ok(),
            // A FULL entry in the threaded engine always carries bytes;
            // anything else cannot be restored later, so drop it.
            Payload::Virtual => false,
        };
        if written {
            out.push((req.producer, req.size));
        } else if let Some(rec) = ds.drop_restorable(req.blob) {
            evicted.push(rec);
        }
    }
    // Hygiene: entries dropped from tier 2 leave no frame behind. (Drops
    // within this same eviction pass cancelled their pending write above
    // and never had a frame; this cleans up frames from earlier passes.)
    for r in evicted.iter().filter(|r| r.tier == 2) {
        let _ = spill.remove(r.blob);
    }
    out
}

/// Emits `Spilled` events and counters for `drain_spills` results —
/// outside the store lock.
fn emit_spills<A: AppExecutor>(core: &Core<A>, me: usize, spills: Vec<(QueryId, u64)>) {
    for (producer, bytes) in spills {
        core.buf_push(me, producer, EventKind::Spilled { bytes });
        core.qmet.ds_spills.inc();
    }
}

/// Attempts to answer `spec` from the tier-2 spill store: finds a
/// RESTORABLE entry whose predicate `cmp`-matches exactly, re-reads its
/// frame, and promotes it back to FULL. The re-probe, disk read, and
/// promotion all happen under the store's write lock so a restore cannot
/// race another restore, a drop, or an eviction pass over the same entry.
/// Returns the restored bytes, or `None` to fall back to the ordinary
/// compute path (no candidate, unreadable frame, or tier-1 space could
/// not be freed). An unreadable frame drops the entry for good — the
/// typed-error fallback the fault sweep exercises.
fn try_restore<A: AppExecutor>(
    core: &Core<A>,
    me: usize,
    id: QueryId,
    spec: &A::Spec,
) -> Option<Arc<[u8]>> {
    let spill = core.spill.as_ref()?;
    // Cheap read-lock probe first: the common case is "nothing spilled
    // matches", which must not serialize on the write lock.
    core.store.read().lookup_restorable_exact(spec)?;
    let mut evicted: Vec<EvictionRecord<A::Spec>> = Vec::new();
    let mut restored: Option<(QueryId, Arc<[u8]>, u64)> = None;
    let spills = {
        let mut ds = core.store.write();
        // Re-probe under the write lock: a peer may have restored or
        // dropped the candidate while this thread upgraded.
        let (blob, producer, size) = ds.lookup_restorable_exact(spec)?;
        match spill.read(blob) {
            Ok(bytes) => {
                let payload: Arc<[u8]> = bytes.into();
                if ds.restore(blob, Payload::Bytes(Arc::clone(&payload)), &mut evicted) {
                    // Tier 1 owns the entry again; its frame is dead.
                    let _ = spill.remove(blob);
                    restored = Some((producer, payload, size));
                }
                // On a false return the query recomputes: either tier 1
                // could not make room (the entry stays RESTORABLE with
                // its frame intact), or making room overflowed tier 2
                // and the shrink dropped this very entry (its eviction
                // record is in `evicted`; the drain below removes the
                // dead frame).
            }
            Err(_) => {
                // Poisoned or corrupt frame: unreadable for good. Drop
                // the entry and recompute through the ordinary path.
                if let Some(rec) = ds.drop_restorable(blob) {
                    evicted.push(rec);
                }
                let _ = spill.remove(blob);
            }
        }
        // Making room in tier 1 may itself have demoted entries.
        drain_spills(core, &mut ds, &mut evicted)
    };
    route_evictions(core, me, evicted);
    emit_spills(core, me, spills);
    let (producer, bytes, size) = restored?;
    core.buf_push(me, producer, EventKind::Restored { bytes: size });
    core.qmet.ds_restores.inc();
    core.buf_push(
        me,
        id,
        EventKind::LookupHit {
            source: producer,
            overlap: 1.0,
            exact: true,
        },
    );
    Some(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmqs_core::{DatasetId, Rect};
    use vmqs_microscope::kernels::reference_render;
    use vmqs_microscope::{SlideDataset, VmOp, VmQuery};
    use vmqs_storage::SyntheticSource;

    fn slide() -> SlideDataset {
        SlideDataset::new(DatasetId(0), 600, 600)
    }

    fn server(cfg: ServerConfig) -> QueryServer {
        QueryServer::new(cfg, Arc::new(SyntheticSource::new()))
    }

    fn q(x: u32, y: u32, w: u32, h: u32, zoom: u32, op: VmOp) -> VmQuery {
        VmQuery::new(slide(), Rect::new(x, y, w, h), zoom, op)
    }

    #[test]
    fn single_query_matches_reference() {
        let s = server(ServerConfig::small());
        let spec = q(10, 10, 64, 64, 2, VmOp::Subsample);
        let res = s.submit(spec).wait().unwrap();
        assert_eq!(res.width, 32);
        assert_eq!(*res.image, reference_render(&spec).data);
        assert_eq!(res.record.path, AnswerPath::FullCompute);
        s.shutdown();
    }

    #[test]
    fn identical_query_is_exact_hit() {
        let s = server(ServerConfig::small());
        let spec = q(0, 0, 64, 64, 2, VmOp::Average);
        let first = s.submit(spec).wait().unwrap();
        let second = s.submit(spec).wait().unwrap();
        assert_eq!(second.record.path, AnswerPath::ExactHit);
        assert_eq!(*second.image, *first.image);
        assert_eq!(second.record.covered_fraction, 1.0);
        assert_eq!(second.record.pages_requested, 0);
        s.shutdown();
    }

    #[test]
    fn partial_overlap_reuses_and_matches_reference() {
        let s = server(ServerConfig::small().with_threads(1));
        let a = q(0, 0, 200, 400, 2, VmOp::Subsample);
        s.submit(a).wait().unwrap();
        let b = q(100, 0, 300, 400, 2, VmOp::Subsample);
        let res = s.submit(b).wait().unwrap();
        assert_eq!(res.record.path, AnswerPath::PartialReuse);
        assert!(res.record.covered_fraction > 0.2);
        assert_eq!(*res.image, reference_render(&b).data);
        s.shutdown();
    }

    #[test]
    fn zoom_projection_reuse_matches_reference_subsample() {
        let s = server(ServerConfig::small().with_threads(1));
        let fine = q(0, 0, 400, 400, 2, VmOp::Subsample);
        s.submit(fine).wait().unwrap();
        let coarse = q(0, 0, 400, 400, 8, VmOp::Subsample);
        let res = s.submit(coarse).wait().unwrap();
        assert_eq!(res.record.path, AnswerPath::PartialReuse);
        // The whole coarse output is derivable from the fine cached result.
        assert_eq!(res.record.covered_fraction, 1.0);
        assert_eq!(res.record.pages_requested, 0);
        assert_eq!(*res.image, reference_render(&coarse).data);
        s.shutdown();
    }

    #[test]
    fn caching_disabled_never_reuses() {
        let s = server(ServerConfig::small().with_ds_budget(0));
        let spec = q(0, 0, 64, 64, 1, VmOp::Subsample);
        s.submit(spec).wait().unwrap();
        let second = s.submit(spec).wait().unwrap();
        assert_eq!(second.record.path, AnswerPath::FullCompute);
        assert_eq!(s.ds_stats().rejected, 2);
        s.shutdown();
    }

    #[test]
    fn many_concurrent_queries_all_correct() {
        let s = server(ServerConfig::small().with_threads(4));
        let mut handles = Vec::new();
        let mut specs = Vec::new();
        for i in 0..12u32 {
            let spec = q(
                (i % 3) * 100,
                (i / 3) * 60,
                120,
                120,
                1 << (i % 3),
                VmOp::Subsample,
            );
            specs.push(spec);
            handles.push(s.submit(spec));
        }
        for (h, spec) in handles.into_iter().zip(specs) {
            let res = h.wait().unwrap();
            assert_eq!(*res.image, reference_render(&spec).data, "query {spec:?}");
        }
        s.shutdown();
    }

    #[test]
    fn drain_waits_for_all() {
        let s = server(ServerConfig::small().with_threads(2));
        let handles = s.submit_batch((0..6).map(|i| q(i * 40, 0, 80, 80, 2, VmOp::Average)));
        s.drain();
        for h in handles {
            assert!(h.try_wait().is_some());
        }
        assert_eq!(s.records().len(), 6);
        s.shutdown();
    }

    #[test]
    fn summary_aggregates_without_copying_records() {
        let s = server(ServerConfig::small().with_threads(2));
        let spec = q(0, 0, 64, 64, 2, VmOp::Subsample);
        s.submit(spec).wait().unwrap();
        s.submit(spec).wait().unwrap();
        let other = q(200, 200, 64, 64, 2, VmOp::Subsample);
        s.submit(other).wait().unwrap();
        let sum = s.summary();
        assert_eq!(sum.completed, 3);
        assert_eq!(sum.exact_hits, 1);
        assert_eq!(
            sum.exact_hits + sum.partial_reuse + sum.full_compute,
            sum.completed
        );
        assert!(sum.mean_response > Duration::ZERO);
        assert!(sum.p95_response >= sum.p50_response);
        s.shutdown();
    }

    #[test]
    fn shutdown_fails_pending_queries() {
        // One thread and a pile of queries: shut down immediately; whatever
        // did not run must receive an error, not hang.
        let s = server(ServerConfig::small().with_threads(1));
        let handles =
            s.submit_batch((0..8).map(|i| q((i % 4) * 100, 0, 100, 100, 1, VmOp::Average)));
        s.shutdown();
        let mut finished = 0;
        let mut failed = 0;
        for h in handles {
            match h.wait() {
                Ok(_) => finished += 1,
                Err(_) => failed += 1,
            }
        }
        assert_eq!(finished + failed, 8);
    }

    #[test]
    fn records_time_accounting_sane() {
        let s = server(ServerConfig::small());
        let spec = q(0, 0, 128, 128, 1, VmOp::Average);
        let res = s.submit(spec).wait().unwrap();
        assert!(res.record.exec_time > Duration::ZERO);
        assert!(res.record.response_time() >= res.record.exec_time);
        s.shutdown();
    }

    #[test]
    fn would_deadlock_detects_cycles() {
        let mut w = HashMap::new();
        w.insert(QueryId(1), QueryId(2));
        w.insert(QueryId(2), QueryId(3));
        assert!(would_deadlock(&w, QueryId(3), QueryId(1)));
        assert!(!would_deadlock(&w, QueryId(4), QueryId(1)));
        assert!(!would_deadlock(&w, QueryId(3), QueryId(4)));
    }

    #[test]
    fn blocking_disabled_still_correct() {
        let s = server(ServerConfig::small().with_threads(4).with_blocking(false));
        let spec = q(0, 0, 300, 300, 2, VmOp::Subsample);
        let handles: Vec<_> = (0..4).map(|_| s.submit(spec)).collect();
        for h in handles {
            let res = h.wait().unwrap();
            assert_eq!(*res.image, reference_render(&spec).data);
        }
        s.shutdown();
    }

    #[test]
    fn bounded_admission_rejects_when_queue_full() {
        // Paused workers: the queue only grows, so admission decisions
        // are deterministic.
        let s = server(
            ServerConfig::small()
                .with_threads(1)
                .with_start_paused(true)
                .with_observability(true)
                .with_max_pending(2),
        );
        let handles: Vec<_> = (0..4)
            .map(|i| s.submit(q(i * 50, 0, 64, 64, 2, VmOp::Subsample)))
            .collect();
        // The rejected handles resolve immediately, before any worker runs.
        for h in &handles[2..] {
            match h.try_wait() {
                Some(Err(ServerError::Overloaded { retry_after })) => {
                    assert!(retry_after > Duration::ZERO);
                }
                other => panic!("expected immediate Overloaded, got {other:?}"),
            }
        }
        s.resume_workers();
        s.drain();
        let mut ok = 0;
        for h in handles.into_iter().take(2) {
            assert!(h.wait().is_ok());
            ok += 1;
        }
        let sum = s.summary();
        assert_eq!((ok, sum.completed, sum.rejected), (2, 2, 2));
        let rejected_events = s
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::Rejected {
                        rate_limited: false
                    }
                )
            })
            .count();
        assert_eq!(rejected_events, 2);
        s.check_invariants();
        s.shutdown();
    }

    #[test]
    fn shedding_evicts_largest_waiting_and_keeps_invariants() {
        // max_pending 4, shed at 0.75: the third admission pushes the
        // queue fraction to 0.75 and the shedder evicts the largest
        // waiting query (the 300x300 one) until pressure drops.
        let s = server(
            ServerConfig::small()
                .with_threads(1)
                .with_start_paused(true)
                .with_observability(true)
                .with_max_pending(4)
                .with_shed_threshold(0.75),
        );
        let small_a = s.submit(q(0, 0, 64, 64, 1, VmOp::Subsample));
        let big = s.submit(q(0, 0, 300, 300, 1, VmOp::Subsample));
        let small_b = s.submit(q(100, 0, 64, 64, 1, VmOp::Subsample));
        s.check_invariants();
        match big.try_wait() {
            Some(Err(ServerError::Shed { pressure })) => {
                assert!((0.0..=1.0).contains(&pressure));
            }
            other => panic!("largest waiting query should be shed, got {other:?}"),
        }
        s.resume_workers();
        s.drain();
        assert!(small_a.wait().is_ok());
        assert!(small_b.wait().is_ok());
        let sum = s.summary();
        assert_eq!((sum.completed, sum.shed, sum.rejected), (2, 1, 0));
        assert_eq!(
            s.events()
                .iter()
                .filter(|e| e.kind == EventKind::Shed)
                .count(),
            1
        );
        s.check_invariants();
        s.shutdown();
    }

    #[test]
    fn degradation_downgrades_average_under_pressure() {
        // Degrade from the second admission on (2/8 = 0.25); verify the
        // degraded queries ran as Subsample and produced Subsample bytes.
        let s = server(
            ServerConfig::small()
                .with_threads(1)
                .with_start_paused(true)
                .with_observability(true)
                .with_max_pending(8)
                .with_degrade_threshold(0.25),
        );
        let handles: Vec<_> = (0..3)
            .map(|i| s.submit(q(i * 80, 0, 128, 128, 2, VmOp::Average)))
            .collect();
        s.resume_workers();
        s.drain();
        let results: Vec<_> = handles.into_iter().map(|h| h.wait().unwrap()).collect();
        assert!(
            !results[0].record.degraded,
            "first admission is unpressured"
        );
        assert_eq!(results[0].record.spec.op, VmOp::Average);
        for r in &results[1..] {
            assert!(r.record.degraded);
            assert_eq!(r.record.spec.op, VmOp::Subsample);
            assert_eq!(*r.image, reference_render(&r.record.spec).data);
        }
        let sum = s.summary();
        assert_eq!((sum.completed, sum.degraded), (3, 2));
        assert_eq!(
            s.events()
                .iter()
                .filter(|e| e.kind == EventKind::Degraded)
                .count(),
            2
        );
        s.shutdown();
    }

    #[test]
    fn rate_limiter_is_per_client() {
        // Burst of 1 at 0.1 q/s: the first query per client is admitted,
        // immediate follow-ups are rejected as rate-limited; a different
        // client has its own bucket.
        let s = server(
            ServerConfig::small()
                .with_threads(1)
                .with_start_paused(true)
                .with_observability(true)
                .with_client_rate(0.1),
        );
        let a1 = s.submit_from(ClientId(7), q(0, 0, 64, 64, 2, VmOp::Subsample));
        let a2 = s.submit_from(ClientId(7), q(64, 0, 64, 64, 2, VmOp::Subsample));
        let b1 = s.submit_from(ClientId(8), q(0, 64, 64, 64, 2, VmOp::Subsample));
        assert!(matches!(
            a2.try_wait(),
            Some(Err(ServerError::Overloaded { .. }))
        ));
        s.resume_workers();
        s.drain();
        assert!(a1.wait().is_ok());
        assert!(b1.wait().is_ok());
        let sum = s.summary();
        assert_eq!((sum.completed, sum.rejected), (2, 1));
        assert_eq!(
            s.events()
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Rejected { rate_limited: true }))
                .count(),
            1
        );
        s.shutdown();
    }

    #[test]
    fn shutdown_with_nonempty_admission_queue_resolves_every_handle() {
        // stop() with queries still waiting (workers paused, never
        // resumed) must reject or drain every pending query — no wedged
        // QueryHandle. Mixes admitted and rejected queries.
        let s = server(
            ServerConfig::small()
                .with_threads(2)
                .with_start_paused(true)
                .with_max_pending(4),
        );
        let handles: Vec<_> = (0..6)
            .map(|i| s.submit(q((i % 3) * 100, 0, 80, 80, 2, VmOp::Subsample)))
            .collect();
        s.shutdown();
        let mut shut = 0;
        let mut overloaded = 0;
        for h in handles {
            match h.wait() {
                Err(ServerError::Shutdown) => shut += 1,
                Err(ServerError::Overloaded { .. }) => overloaded += 1,
                other => panic!("expected Shutdown or Overloaded, got {other:?}"),
            }
        }
        assert_eq!((shut, overloaded), (4, 2));
    }

    /// An executor that parks its first `execute` call until released —
    /// the deterministic way to hold a producer EXECUTING while a graft
    /// consumer discovers and subscribes to its reservation.
    struct StallingExecutor {
        /// `(entered, released)` under the mutex; the condvar signals
        /// both transitions.
        gate: Arc<(Mutex<(bool, bool)>, Condvar)>,
    }

    impl AppExecutor for StallingExecutor {
        type Spec = VmQuery;

        fn output_dims(&self, spec: &VmQuery) -> (u32, u32) {
            VmExecutor.output_dims(spec)
        }

        fn output_len(&self, spec: &VmQuery) -> usize {
            VmExecutor.output_len(spec)
        }

        fn execute(
            &self,
            spec: &VmQuery,
            sources: &[(VmQuery, Arc<[u8]>)],
            ps: &crate::pages::PageSpaceSession<'_>,
        ) -> std::io::Result<crate::app::AppOutcome> {
            let first = {
                let mut g = self.gate.0.lock();
                let first = !g.0;
                g.0 = true;
                self.gate.1.notify_all();
                first
            };
            if first {
                let mut g = self.gate.0.lock();
                while !g.1 {
                    self.gate.1.wait(&mut g);
                }
            }
            VmExecutor.execute(spec, sources, ps)
        }
    }

    #[test]
    fn graft_subscribes_to_in_flight_producer_and_reuses_bytes() {
        let gate = Arc::new((Mutex::new((false, false)), Condvar::new()));
        let s = QueryServer::with_app(
            ServerConfig::small()
                .with_threads(2)
                .with_graft(true)
                .with_observability(true),
            StallingExecutor {
                gate: Arc::clone(&gate),
            },
            Arc::new(SyntheticSource::new()),
        );
        let spec = q(0, 0, 128, 128, 2, VmOp::Subsample);
        let producer = s.submit(spec);
        // Wait until the producer is inside `execute`: its SUBSCRIBABLE
        // reservation was opened before the compute gate, so it is now
        // discoverable.
        {
            let mut g = gate.0.lock();
            while !g.0 {
                gate.1.wait(&mut g);
            }
        }
        let consumer = s.submit(spec);
        // Wait until the consumer has attached its graft subscription,
        // then let the producer publish.
        let blob = loop {
            let c = s.core.store.read().lookup_subscribable(&spec);
            match c.first() {
                Some(c0) => break c0.blob,
                None => std::thread::sleep(Duration::from_millis(1)),
            }
        };
        while s
            .core
            .store
            .read()
            .get(blob)
            .map_or(0, |e| e.state.subscribers())
            == 0
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        {
            let mut g = gate.0.lock();
            g.1 = true;
            gate.1.notify_all();
        }
        let p = producer.wait().unwrap();
        let c = consumer.wait().unwrap();
        assert_eq!(p.record.path, AnswerPath::FullCompute);
        assert_eq!(
            c.record.path,
            AnswerPath::Grafted,
            "consumer must graft, not recompute"
        );
        assert_eq!(*c.image, *p.image);
        assert_eq!(*c.image, reference_render(&spec).data);
        assert_eq!(c.record.covered_fraction, 1.0);
        assert_eq!(c.record.pages_requested, 0);
        let sum = s.summary();
        assert_eq!((sum.completed, sum.grafted), (2, 1));
        assert_eq!(sum.duplicate_full_computes, 0);
        let ev = s.events();
        assert_eq!(
            vmqs_obs::timeline::grafted_edges(&ev),
            vec![(c.record.id, p.record.id)]
        );
        s.check_invariants();
        s.shutdown();
    }

    #[test]
    fn graft_consumer_survives_producer_failure() {
        // The producer's reservation is aborted when it fails; a grafted
        // consumer must wake, find the entry gone, and compute on its own.
        struct FailFirstExecutor {
            gate: Arc<(Mutex<(bool, bool)>, Condvar)>,
        }
        impl AppExecutor for FailFirstExecutor {
            type Spec = VmQuery;
            fn output_dims(&self, spec: &VmQuery) -> (u32, u32) {
                VmExecutor.output_dims(spec)
            }
            fn output_len(&self, spec: &VmQuery) -> usize {
                VmExecutor.output_len(spec)
            }
            fn execute(
                &self,
                spec: &VmQuery,
                sources: &[(VmQuery, Arc<[u8]>)],
                ps: &crate::pages::PageSpaceSession<'_>,
            ) -> std::io::Result<crate::app::AppOutcome> {
                let first = {
                    let mut g = self.gate.0.lock();
                    let first = !g.0;
                    g.0 = true;
                    self.gate.1.notify_all();
                    first
                };
                if first {
                    let mut g = self.gate.0.lock();
                    while !g.1 {
                        self.gate.1.wait(&mut g);
                    }
                    return Err(std::io::Error::other("injected producer failure"));
                }
                VmExecutor.execute(spec, sources, ps)
            }
        }
        let gate = Arc::new((Mutex::new((false, false)), Condvar::new()));
        let s = QueryServer::with_app(
            ServerConfig::small()
                .with_threads(2)
                .with_graft(true)
                .with_observability(true),
            FailFirstExecutor {
                gate: Arc::clone(&gate),
            },
            Arc::new(SyntheticSource::new()),
        );
        let spec = q(0, 0, 96, 96, 2, VmOp::Subsample);
        let producer = s.submit(spec);
        {
            let mut g = gate.0.lock();
            while !g.0 {
                gate.1.wait(&mut g);
            }
        }
        let consumer = s.submit(spec);
        let blob = loop {
            let c = s.core.store.read().lookup_subscribable(&spec);
            match c.first() {
                Some(c0) => break c0.blob,
                None => std::thread::sleep(Duration::from_millis(1)),
            }
        };
        while s
            .core
            .store
            .read()
            .get(blob)
            .map_or(0, |e| e.state.subscribers())
            == 0
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        {
            let mut g = gate.0.lock();
            g.1 = true;
            gate.1.notify_all();
        }
        assert!(producer.wait().is_err(), "producer failure must propagate");
        let c = consumer.wait().unwrap();
        // The consumer fell back to computing for itself.
        assert_eq!(*c.image, reference_render(&spec).data);
        assert_ne!(c.record.path, AnswerPath::Grafted);
        let sum = s.summary();
        assert_eq!((sum.completed, sum.failed, sum.grafted), (1, 1, 0));
        s.check_invariants();
        s.shutdown();
    }

    #[test]
    fn deadline_is_anchored_at_submit_so_queue_wait_counts() {
        // Documented semantics (crates/server/src/pages.rs): the deadline
        // budget starts at submission, so a query that spends it all in
        // the admission queue is cancelled without doing any I/O.
        let s = server(
            ServerConfig::small()
                .with_threads(1)
                .with_start_paused(true)
                .with_query_timeout(Some(Duration::from_millis(40))),
        );
        let h = s.submit(q(0, 0, 256, 256, 1, VmOp::Average));
        std::thread::sleep(Duration::from_millis(80));
        s.resume_workers();
        match h.wait() {
            Err(ServerError::Timeout { limit }) => {
                assert_eq!(limit, Duration::from_millis(40));
            }
            other => panic!("queue wait must consume the deadline, got {other:?}"),
        }
        let sum = s.summary();
        assert_eq!((sum.timed_out, sum.completed), (1, 0));
        s.check_invariants();
        s.shutdown();
    }

    /// Unique per-test spill directory without wall-clock or RNG (banned
    /// by the workspace lints): process id + an atomic counter.
    fn spill_tmpdir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::AtomicU64;
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("vmqs-engine-{}-{tag}-{n}", std::process::id()))
    }

    /// A tier-1 budget that holds exactly one 128×128 RGB result (49 152
    /// bytes), so the second insert always demotes the first, plus a
    /// roomy tier-2 — the minimal spill-pressure configuration.
    fn spill_cfg(tag: &str) -> (ServerConfig, std::path::PathBuf) {
        let dir = spill_tmpdir(tag);
        let cfg = ServerConfig::small()
            .with_threads(1)
            .with_cache_policy(vmqs_datastore::EvictionPolicy::CostBased)
            .with_ds_budget(50_000)
            .with_spill_dir(Some(dir.clone()))
            .with_tier2_budget(1 << 20);
        (cfg, dir)
    }

    #[test]
    fn spilled_entry_restores_as_exact_hit() {
        let (cfg, dir) = spill_cfg("restore");
        let s = server(cfg.with_observability(true));
        let a = q(0, 0, 128, 128, 1, VmOp::Subsample);
        let b = q(200, 200, 128, 128, 1, VmOp::Subsample);
        s.submit(a).wait().unwrap();
        s.submit(b).wait().unwrap();
        assert!(
            s.summary().spilled >= 1,
            "making room for b must demote a to tier 2, not drop it"
        );
        let res = s.submit(a).wait().unwrap();
        // Re-heated from disk: an exact hit that read no pages.
        assert_eq!(res.record.path, AnswerPath::ExactHit);
        assert_eq!(res.record.pages_requested, 0);
        assert_eq!(res.record.covered_fraction, 1.0);
        assert_eq!(*res.image, reference_render(&a).data);
        let sum = s.summary();
        assert_eq!(sum.restored, 1);
        assert_eq!(sum.restore_failures, 0);
        let ev = s.events();
        assert!(ev
            .iter()
            .any(|e| matches!(e.kind, EventKind::Spilled { bytes } if bytes == 49_152)));
        assert!(ev
            .iter()
            .any(|e| matches!(e.kind, EventKind::Restored { bytes } if bytes == 49_152)));
        let m = s.metrics();
        assert!(m.gauges["vmqs_ds_tier2_used_bytes"] > 0.0);
        s.check_invariants();
        s.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn poisoned_tier2_read_falls_back_to_recompute() {
        use vmqs_storage::FaultConfig;
        let (cfg, dir) = spill_cfg("poison");
        // Every tier-2 read fails: the restore path must drop the entry
        // through the typed-error fallback and recompute — never panic.
        let s = server(cfg.with_spill_faults(FaultConfig::none().with_permanent(1.0)));
        let a = q(0, 0, 128, 128, 1, VmOp::Subsample);
        let b = q(200, 200, 128, 128, 1, VmOp::Subsample);
        s.submit(a).wait().unwrap();
        s.submit(b).wait().unwrap();
        assert!(s.summary().spilled >= 1);
        let res = s.submit(a).wait().unwrap();
        assert_eq!(res.record.path, AnswerPath::FullCompute);
        assert_eq!(*res.image, reference_render(&a).data);
        let sum = s.summary();
        assert_eq!((sum.restored, sum.restore_failures), (0, 1));
        s.check_invariants();
        s.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn spill_frames_are_cleaned_up_as_entries_leave_tier2() {
        let (cfg, dir) = spill_cfg("hygiene");
        let s = server(cfg);
        // Cycle enough distinct queries that entries spill, restore, and
        // get re-demoted; every frame on disk must belong to a live
        // tier-2 resident (tier2_used bytes account for all of them).
        for i in 0..4u32 {
            s.submit(q(i * 130, 0, 128, 128, 1, VmOp::Subsample))
                .wait()
                .unwrap();
        }
        let frames = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "spill")
            })
            .count() as u64;
        let tier2_used = s.core.store.read().tier2_used();
        assert!(tier2_used > 0, "pressure must have demoted something");
        assert_eq!(
            frames * 49_152,
            tier2_used,
            "one frame per tier-2 resident, no orphans"
        );
        s.check_invariants();
        s.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn legacy_lru_policy_with_spill_also_demotes() {
        // Spilling is orthogonal to the scoring policy: LRU victims are
        // demoted too once a tier-2 store is configured, so the legacy
        // policy keeps its victim choice but stops losing data.
        let (cfg, dir) = spill_cfg("lru");
        let s = server(cfg.with_cache_policy(vmqs_datastore::EvictionPolicy::Lru));
        let a = q(0, 0, 128, 128, 1, VmOp::Subsample);
        s.submit(a).wait().unwrap();
        s.submit(q(200, 200, 128, 128, 1, VmOp::Subsample))
            .wait()
            .unwrap();
        let res = s.submit(a).wait().unwrap();
        assert_eq!(res.record.path, AnswerPath::ExactHit);
        assert_eq!(*res.image, reference_render(&a).data);
        assert_eq!(s.summary().restored, 1);
        s.check_invariants();
        s.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    // ----- failure containment (DESIGN.md §15) -----

    use vmqs_storage::ChaosConfig;

    /// Regression for the old join-time `assert_eq!(panicked, 0)`: a
    /// forced compute panic must kill only its worker, requeue the query
    /// (the ordinal trigger does not re-fire on retry), respawn a
    /// replacement, and still deliver a complete `ServerSummary`.
    #[test]
    fn forced_panic_still_yields_complete_summary() {
        let s = server(
            ServerConfig::small()
                .with_threads(2)
                .with_observability(true)
                .with_chaos(ChaosConfig::none().with_panic_at_compute(Some(0))),
        );
        let specs: Vec<_> = (0..4u32)
            .map(|i| q(i * 130, 0, 96, 96, 1, VmOp::Subsample))
            .collect();
        let handles: Vec<_> = specs.iter().map(|&sp| s.submit(sp)).collect();
        for (h, sp) in handles.into_iter().zip(&specs) {
            let res = h.wait().unwrap();
            assert_eq!(*res.image, reference_render(sp).data, "query {sp:?}");
        }
        let sum = s.summary();
        assert_eq!(sum.completed, 4, "the panicked query was requeued and ran");
        assert_eq!(sum.failed, 0);
        assert_eq!(sum.worker_panics, 1);
        assert_eq!(sum.worker_restarts, 1);
        assert_eq!(sum.quarantined, 0);
        let ev = s.events();
        assert_eq!(
            ev.iter()
                .filter(|e| matches!(e.kind, EventKind::WorkerPanicked))
                .count(),
            1
        );
        assert_eq!(
            ev.iter()
                .filter(|e| matches!(e.kind, EventKind::WorkerRestarted))
                .count(),
            1
        );
        let m = s.metrics();
        assert_eq!(m.counters["vmqs_worker_panics_total"], 1);
        assert_eq!(m.counters["vmqs_worker_restarts_total"], 1);
        s.check_invariants();
        s.shutdown();
    }

    /// Finds a chaos seed under which, of the first `n` query ids, exactly
    /// the ids in `want` draw poison. Pure search over the deterministic
    /// per-query hash — no RNG state, so the test is reproducible.
    fn seed_with_poison(rate: f64, n: u64, want: &[u64]) -> u64 {
        'seed: for seed in 0..20_000u64 {
            let c = ChaosConfig::none().with_seed(seed).with_poison_rate(rate);
            for id in 0..n {
                if c.query_is_poison(id) != want.contains(&id) {
                    continue 'seed;
                }
            }
            return seed;
        }
        panic!("no seed draws poison exactly on {want:?} within the search bound");
    }

    /// A deterministic poison query panics every worker that picks it up;
    /// the quarantine rule must fail it typed-ly after `quarantine_limit`
    /// kills instead of crash-looping the pool, and peers are undisturbed.
    #[test]
    fn poison_query_is_quarantined_and_peers_survive() {
        let seed = seed_with_poison(0.05, 4, &[2]);
        let s = server(
            ServerConfig::small()
                .with_threads(2)
                .with_observability(true)
                .with_quarantine_limit(3)
                .with_chaos(ChaosConfig::none().with_seed(seed).with_poison_rate(0.05)),
        );
        let specs: Vec<_> = (0..4u32)
            .map(|i| q(i * 130, 0, 96, 96, 1, VmOp::Subsample))
            .collect();
        let handles: Vec<_> = specs.iter().map(|&sp| s.submit(sp)).collect();
        let mut quarantined = 0;
        for (i, (h, sp)) in handles.into_iter().zip(&specs).enumerate() {
            match h.wait() {
                Ok(res) => {
                    assert_eq!(*res.image, reference_render(sp).data, "query {sp:?}");
                }
                Err(ServerError::Quarantined { attempts }) => {
                    assert_eq!(i, 2, "only the poison id may be quarantined");
                    assert_eq!(attempts, 3);
                    quarantined += 1;
                }
                Err(other) => panic!("unexpected failure: {other}"),
            }
        }
        assert_eq!(quarantined, 1);
        let sum = s.summary();
        assert_eq!((sum.completed, sum.failed, sum.quarantined), (3, 1, 1));
        assert_eq!(sum.worker_panics, 3, "three kills before quarantine");
        assert_eq!(sum.worker_restarts, 3);
        let ev = s.events();
        assert_eq!(
            ev.iter()
                .filter(|e| matches!(e.kind, EventKind::Quarantined { attempts: 3 }))
                .count(),
            1
        );
        s.check_invariants();
        s.shutdown();
    }

    /// With the restart budget exhausted the pool dies: every waiting
    /// query resolves with a typed `WorkerPanicked`, later submissions
    /// are refused immediately, and shutdown still completes.
    #[test]
    fn restart_budget_exhaustion_fails_waiting_queries_typed() {
        let s = server(
            ServerConfig::small()
                .with_threads(1)
                .with_start_paused(true)
                .with_restart_budget(0)
                .with_chaos(ChaosConfig::none().with_panic_at_compute(Some(0))),
        );
        let handles: Vec<_> = (0..4u32)
            .map(|i| s.submit(q(i * 130, 0, 96, 96, 1, VmOp::Subsample)))
            .collect();
        s.resume_workers();
        for h in handles {
            match h.wait() {
                Err(ServerError::WorkerPanicked) => {}
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }
        // The pool is dead: a fresh submission is refused synchronously.
        let late = s.submit(q(0, 300, 64, 64, 1, VmOp::Subsample));
        match late.try_wait() {
            Some(Err(ServerError::WorkerPanicked)) => {}
            other => panic!("expected immediate refusal, got {other:?}"),
        }
        let sum = s.summary();
        assert_eq!((sum.completed, sum.failed), (0, 5));
        assert_eq!((sum.worker_panics, sum.worker_restarts), (1, 0));
        s.shutdown();
    }

    /// A query stuck past `hang_timeout` is cancelled by the watchdog
    /// through the existing deadline machinery and reported as `Hung` —
    /// while later queries on the same server are unaffected. The stall
    /// is an executor gate held well past the hang limit; once released,
    /// the query's first page read observes the expired watchdog
    /// deadline and cancels.
    #[test]
    fn hang_watchdog_cancels_stuck_query_and_spares_successors() {
        let gate = Arc::new((Mutex::new((false, false)), Condvar::new()));
        let s = QueryServer::with_app(
            ServerConfig::small()
                .with_threads(1)
                .with_observability(true)
                .with_hang_timeout(Some(Duration::from_millis(40))),
            StallingExecutor {
                gate: Arc::clone(&gate),
            },
            Arc::new(SyntheticSource::new()),
        );
        let spec = q(0, 0, 128, 128, 2, VmOp::Subsample);
        let stuck = s.submit(spec);
        {
            let mut g = gate.0.lock();
            while !g.0 {
                gate.1.wait(&mut g);
            }
        }
        // Hold the query stalled past its watchdog limit, then let go.
        std::thread::sleep(Duration::from_millis(80));
        {
            let mut g = gate.0.lock();
            g.1 = true;
            gate.1.notify_all();
        }
        match stuck.wait() {
            Err(ServerError::Hung { limit }) => {
                assert_eq!(limit, Duration::from_millis(40));
            }
            other => panic!("expected Hung, got {other:?}"),
        }
        // The watchdog cancelled one query, not the server: a successor
        // (the gate only stalls the first call) completes byte-exact.
        let next = q(200, 200, 64, 64, 1, VmOp::Average);
        assert_eq!(
            *s.submit(next).wait().unwrap().image,
            reference_render(&next).data
        );
        let sum = s.summary();
        assert_eq!((sum.completed, sum.hung), (1, 1));
        assert_eq!(
            sum.timed_out, 1,
            "hang cancellations fold into timeout accounting"
        );
        assert!(s.events().iter().any(|e| matches!(e.kind, EventKind::Hung)));
        assert_eq!(s.metrics().counters["vmqs_queries_hung_total"], 1);
        s.check_invariants();
        s.shutdown();
    }

    /// Crash-consistent recovery: frames spilled by one server instance
    /// are adopted by the next one on the same directory and restore as
    /// byte-exact hits without touching the page space.
    #[test]
    fn recovered_spill_frames_survive_server_restart() {
        let (cfg, dir) = spill_cfg("recover");
        let a = q(0, 0, 128, 128, 1, VmOp::Subsample);
        let b = q(200, 200, 128, 128, 1, VmOp::Subsample);
        {
            let s = server(cfg.clone());
            s.submit(a).wait().unwrap();
            s.submit(b).wait().unwrap();
            assert!(s.summary().spilled >= 1, "a must be demoted to disk");
            s.shutdown();
        }
        // A fresh server on the same directory adopts the surviving frame.
        let s = server(cfg);
        assert!(s.ds_stats().adopted >= 1, "recovery must adopt the frame");
        let res = s.submit(a).wait().unwrap();
        assert_eq!(res.record.path, AnswerPath::ExactHit);
        assert_eq!(res.record.pages_requested, 0);
        assert_eq!(*res.image, reference_render(&a).data);
        assert_eq!(s.summary().restored, 1);
        s.check_invariants();
        s.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Satellite: a crash mid-spill leaves a torn `.tmp` staging file;
    /// the next startup's `recover()` deletes it, and every byte left in
    /// the directory is accounted to a live tier-2 resident.
    #[test]
    fn crash_mid_spill_is_cleaned_and_directory_byte_accounted() {
        let (cfg, dir) = spill_cfg("crash");
        let a = q(0, 0, 128, 128, 1, VmOp::Subsample);
        let b = q(200, 200, 128, 128, 1, VmOp::Subsample);
        {
            // The first spill write crashes halfway through staging.
            let s = server(
                cfg.clone()
                    .with_chaos(ChaosConfig::none().with_crash_spill_write(Some(0))),
            );
            s.submit(a).wait().unwrap();
            s.submit(b).wait().unwrap();
            s.shutdown();
        }
        let tmps = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "tmp")
            })
            .count();
        assert_eq!(tmps, 1, "the torn staging file survives the crash");
        // Restart without chaos: recovery removes the torn file and the
        // spill tier works normally again.
        let s = server(cfg);
        let leftover: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert!(
            leftover.is_empty(),
            "torn/orphaned files must be deleted, found {leftover:?}"
        );
        s.submit(a).wait().unwrap();
        s.submit(b).wait().unwrap();
        assert!(s.summary().spilled >= 1, "spilling works after recovery");
        let frames = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "spill")
            })
            .count() as u64;
        assert_eq!(frames * 49_152, s.core.store.read().tier2_used());
        s.check_invariants();
        s.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    /// A bit-flipped frame fails its CRC on restore and routes through
    /// the poisoned-read fallback: the entry is dropped and the query
    /// recomputes — a torn read never reaches a consumer.
    #[test]
    fn bit_flipped_frame_falls_back_to_recompute() {
        let (cfg, dir) = spill_cfg("flip");
        let s = server(cfg.with_chaos(ChaosConfig::none().with_bit_flip_frame(Some(0))));
        let a = q(0, 0, 128, 128, 1, VmOp::Subsample);
        let b = q(200, 200, 128, 128, 1, VmOp::Subsample);
        s.submit(a).wait().unwrap();
        s.submit(b).wait().unwrap();
        assert!(s.summary().spilled >= 1);
        let res = s.submit(a).wait().unwrap();
        assert_eq!(res.record.path, AnswerPath::FullCompute);
        assert_eq!(*res.image, reference_render(&a).data);
        let sum = s.summary();
        assert_eq!((sum.restored, sum.restore_failures), (0, 1));
        s.check_invariants();
        s.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    /// The acceptance sweep at 8 workers: poison queries are quarantined,
    /// every survivor is byte-exact, the conservation invariant holds
    /// (submitted == completed + failed + timed_out + shed + rejected),
    /// and the pool is still alive afterwards.
    #[test]
    fn chaos_sweep_eight_workers_conserves_and_survivors_are_exact() {
        let poison: Vec<u64> = vec![5, 17];
        let seed = seed_with_poison(0.08, 32, &poison);
        let s = server(
            ServerConfig::small()
                .with_threads(8)
                .with_observability(true)
                .with_quarantine_limit(2)
                .with_restart_budget(8)
                .with_chaos(ChaosConfig::none().with_seed(seed).with_poison_rate(0.08)),
        );
        // 32 disjoint 64x64 tiles on a 6x6 grid: no reuse between them,
        // so every query computes and every poison id actually panics.
        let specs: Vec<_> = (0..32u32)
            .map(|i| q((i % 6) * 100, (i / 6) * 100, 64, 64, 1, VmOp::Subsample))
            .collect();
        let handles: Vec<_> = specs.iter().map(|&sp| s.submit(sp)).collect();
        let submitted = handles.len();
        let mut quarantined_ids = Vec::new();
        for (i, (h, sp)) in handles.into_iter().zip(&specs).enumerate() {
            match h.wait() {
                Ok(res) => {
                    assert_eq!(
                        *res.image,
                        reference_render(sp).data,
                        "survivor {i} must be byte-exact"
                    );
                }
                Err(ServerError::Quarantined { .. }) => quarantined_ids.push(i as u64),
                Err(other) => panic!("unexpected failure for query {i}: {other}"),
            }
        }
        assert_eq!(quarantined_ids, poison, "exactly the poison ids fail");
        let sum = s.summary();
        assert_eq!(
            submitted,
            sum.completed + sum.failed + sum.timed_out + sum.shed + sum.rejected,
            "conservation invariant"
        );
        assert_eq!((sum.completed, sum.failed, sum.quarantined), (30, 2, 2));
        assert_eq!(
            sum.worker_panics, 4,
            "2 poison queries x quarantine_limit 2"
        );
        assert_eq!(sum.worker_restarts, 4);
        // No wedge: the pool still answers after the sweep.
        let extra = q(0, 0, 32, 32, 1, VmOp::Average);
        assert_eq!(
            *s.submit(extra).wait().unwrap().image,
            reference_render(&extra).data
        );
        s.check_invariants();
        s.shutdown();
    }
}
