//! The multithreaded query server (paper §2, "Query Server").
//!
//! A fixed-size pool of query threads services a dynamic stream of
//! queries. Each thread repeatedly dequeues the highest-ranked WAITING
//! query from the scheduling graph and executes it:
//!
//! 1. optionally **block** on an EXECUTING query whose result it can reuse
//!    (guarded by a wait-for-graph cycle check — the paper's deadlock
//!    avoidance),
//! 2. **look up** the Data Store for exact or partial matches,
//! 3. hand the query and its reuse sources to the application's
//!    [`AppExecutor`], which **projects** cached results (Eq. 3), creates
//!    **sub-queries** for the uncovered remainder, and computes them from
//!    raw pages through the Page Space Manager (merged, deduplicated I/O),
//! 4. **cache** the output in the Data Store and transition the query to
//!    CACHED, swapping out any evicted producers.
//!
//! The engine is generic over the application ([`VmExecutor`] is the
//! default); everything scheduling-related is application-neutral.

use crate::app::{AppExecutor, VmExecutor};
use crate::config::ServerConfig;
use crate::pages::SharedPageSpace;
use crate::result::{AnswerPath, QueryRecord, QueryResult};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vmqs_core::{BlobId, IdGen, QueryId, QuerySpec, QueryState, SchedulingGraph};
use vmqs_datastore::{DataStore, DsStats, Payload};
use vmqs_microscope::PAGE_SIZE;
use vmqs_pagespace::PsStats;
use vmqs_storage::DataSource;

/// Error delivered to a client when query execution fails (I/O error from
/// the data source, or server shutdown before completion).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryError(pub String);

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query failed: {}", self.0)
    }
}

impl std::error::Error for QueryError {}

/// A client's handle to an in-flight query.
#[derive(Debug)]
pub struct QueryHandle<S = vmqs_microscope::VmQuery> {
    /// The assigned query id.
    pub id: QueryId,
    rx: Receiver<Result<QueryResult<S>, QueryError>>,
}

impl<S> QueryHandle<S> {
    /// Blocks until the query completes.
    pub fn wait(self) -> Result<QueryResult<S>, QueryError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(QueryError("server dropped the query".into())))
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<Result<QueryResult<S>, QueryError>> {
        self.rx.try_recv().ok()
    }
}

struct Central<S: QuerySpec> {
    graph: SchedulingGraph<S>,
    ds: DataStore<S>,
    blob_of: HashMap<QueryId, BlobId>,
    /// Deadlock-avoidance wait-for edges: executing query → executing query
    /// it is blocked on.
    waiting_on: HashMap<QueryId, QueryId>,
    pending: HashMap<QueryId, Sender<Result<QueryResult<S>, QueryError>>>,
    submit_time: HashMap<QueryId, Instant>,
    records: Vec<QueryRecord<S>>,
    outstanding: usize,
    blocked_fallbacks: u64,
    shutdown: bool,
}

struct Core<A: AppExecutor> {
    cfg: ServerConfig,
    app: A,
    central: Mutex<Central<A::Spec>>,
    /// Signaled when a WAITING query appears or shutdown starts.
    work_cv: Condvar,
    /// Signaled when any query completes (wakes dependency blockers and
    /// `drain`).
    done_cv: Condvar,
    ps: SharedPageSpace,
    idgen: IdGen,
}

/// The public server: spawns the thread pool on construction; submit
/// queries from any thread. Generic over the application executor
/// (defaults to the Virtual Microscope).
pub struct QueryServer<A: AppExecutor = VmExecutor> {
    core: Arc<Core<A>>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryServer<VmExecutor> {
    /// Starts a Virtual Microscope server over `source`.
    pub fn new(cfg: ServerConfig, source: Arc<dyn DataSource>) -> Self {
        QueryServer::with_app(cfg, VmExecutor, source)
    }
}

impl<A: AppExecutor> QueryServer<A> {
    /// Starts a server for any application executor.
    pub fn with_app(cfg: ServerConfig, app: A, source: Arc<dyn DataSource>) -> Self {
        let core = Arc::new(Core {
            central: Mutex::new(Central {
                graph: SchedulingGraph::new(cfg.strategy),
                ds: DataStore::with_policy(cfg.ds_budget, cfg.ds_policy),
                blob_of: HashMap::new(),
                waiting_on: HashMap::new(),
                pending: HashMap::new(),
                submit_time: HashMap::new(),
                records: Vec::new(),
                outstanding: 0,
                blocked_fallbacks: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            ps: SharedPageSpace::new(cfg.ps_budget, PAGE_SIZE, source),
            idgen: IdGen::new(0),
            app,
            cfg,
        });
        let workers = (0..cfg.num_threads)
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("vmqs-query-{i}"))
                    .spawn(move || worker_loop(&core))
                    .expect("failed to spawn query thread")
            })
            .collect();
        QueryServer { core, workers }
    }

    /// Submits a query; returns a handle to wait on.
    pub fn submit(&self, spec: A::Spec) -> QueryHandle<A::Spec> {
        let id = self.core.idgen.next_query();
        let (tx, rx) = bounded(1);
        {
            let mut c = self.core.central.lock();
            assert!(!c.shutdown, "submit after shutdown");
            c.graph.insert(id, spec);
            c.pending.insert(id, tx);
            c.submit_time.insert(id, Instant::now());
            c.outstanding += 1;
        }
        self.core.work_cv.notify_one();
        QueryHandle { id, rx }
    }

    /// Submits a batch of queries at once (the paper's batch workload).
    pub fn submit_batch(
        &self,
        specs: impl IntoIterator<Item = A::Spec>,
    ) -> Vec<QueryHandle<A::Spec>> {
        let handles: Vec<_> = specs.into_iter().map(|s| self.submit(s)).collect();
        self.core.work_cv.notify_all();
        handles
    }

    /// Blocks until every submitted query has completed.
    pub fn drain(&self) {
        let mut c = self.core.central.lock();
        while c.outstanding > 0 {
            self.core.done_cv.wait(&mut c);
        }
    }

    /// Stops the thread pool. Unfinished queries receive an error.
    pub fn shutdown(mut self) {
        {
            let mut c = self.core.central.lock();
            c.shutdown = true;
        }
        self.core.work_cv.notify_all();
        self.core.done_cv.notify_all();
        for w in self.workers.drain(..) {
            w.join().expect("query thread panicked");
        }
        // Fail any queries still pending.
        let mut c = self.core.central.lock();
        for (_, tx) in c.pending.drain() {
            let _ = tx.send(Err(QueryError("server shut down".into())));
        }
    }

    /// Execution records of all completed queries so far.
    pub fn records(&self) -> Vec<QueryRecord<A::Spec>> {
        self.core.central.lock().records.clone()
    }

    /// Data Store counters.
    pub fn ds_stats(&self) -> DsStats {
        self.core.central.lock().ds.stats()
    }

    /// Page Space counters.
    pub fn ps_stats(&self) -> PsStats {
        self.core.ps.stats()
    }

    /// Scheduling-graph counters.
    pub fn graph_stats(&self) -> vmqs_core::GraphStats {
        self.core.central.lock().graph.stats()
    }

    /// Times a query gave up blocking because waiting would have formed a
    /// wait-for cycle (deadlock-avoidance fallbacks).
    pub fn blocked_fallbacks(&self) -> u64 {
        self.core.central.lock().blocked_fallbacks
    }

    /// Disables Page Space run merging (ablation knob).
    pub fn set_ps_merging(&self, enabled: bool) {
        self.core.ps.set_merging(enabled);
    }
}

fn worker_loop<A: AppExecutor>(core: &Core<A>) {
    loop {
        // Dequeue the highest-ranked WAITING query.
        let (id, spec, submitted) = {
            let mut c = core.central.lock();
            loop {
                if c.shutdown {
                    return;
                }
                if c.graph.waiting_len() > 0 {
                    break;
                }
                core.work_cv.wait(&mut c);
            }
            let id = c.graph.dequeue().expect("non-empty waiting set");
            let spec = *c.graph.spec_of(id).expect("dequeued node present");
            let submitted = c.submit_time.remove(&id).unwrap_or_else(Instant::now);
            (id, spec, submitted)
        };
        let started = Instant::now();
        let exec = execute_query(core, id, spec);
        let finished = Instant::now();

        // Publish the result and update graph/data-store state.
        let mut c = core.central.lock();
        let tx = c.pending.remove(&id);
        let msg = match exec {
            Ok(out) => {
                let size = core.app.output_len(&spec) as u64;
                let mut evicted = Vec::new();
                let cached =
                    c.ds.insert(id, spec, size, Payload::Bytes(out.image.clone()), &mut evicted);
                c.graph.mark_cached(id);
                for (_, producer) in evicted {
                    c.blob_of.remove(&producer);
                    c.graph.swap_out(producer);
                }
                match cached {
                    Ok(blob) => {
                        c.blob_of.insert(id, blob);
                    }
                    Err(_) => {
                        // Result cannot be cached (budget too small):
                        // treat it as immediately swapped out.
                        c.graph.swap_out(id);
                    }
                }
                let (w, h) = core.app.output_dims(&spec);
                let record = QueryRecord {
                    id,
                    spec,
                    wait_time: started - submitted,
                    exec_time: finished - started,
                    blocked_time: out.blocked,
                    path: out.path,
                    reused_bytes: out.reused_bytes,
                    covered_fraction: out.covered_fraction,
                    pages_requested: out.pages_requested,
                };
                c.records.push(record);
                Ok(QueryResult {
                    id,
                    image: out.image,
                    width: w,
                    height: h,
                    record,
                })
            }
            Err(e) => {
                // Remove the failed query from the graph entirely.
                c.graph.mark_cached(id);
                c.graph.swap_out(id);
                Err(QueryError(e.to_string()))
            }
        };
        c.outstanding -= 1;
        drop(c);
        core.done_cv.notify_all();
        if let Some(tx) = tx {
            let _ = tx.send(msg);
        }
    }
}

struct ExecOutcome {
    image: Arc<Vec<u8>>,
    path: AnswerPath,
    reused_bytes: u64,
    covered_fraction: f64,
    pages_requested: u64,
    blocked: Duration,
}

/// True when making `waiter` wait on `target` would close a cycle in the
/// wait-for graph (must be called with the central lock held).
fn would_deadlock(waiting_on: &HashMap<QueryId, QueryId>, waiter: QueryId, target: QueryId) -> bool {
    let mut cur = target;
    let mut hops = 0;
    while let Some(&next) = waiting_on.get(&cur) {
        if next == waiter {
            return true;
        }
        cur = next;
        hops += 1;
        if hops > waiting_on.len() {
            // Defensive: a longer chain than entries means a cycle exists
            // somewhere already.
            return true;
        }
    }
    false
}

fn execute_query<A: AppExecutor>(
    core: &Core<A>,
    id: QueryId,
    spec: A::Spec,
) -> std::io::Result<ExecOutcome> {
    let mut blocked = Duration::ZERO;

    // Step 1 — deadlock-avoiding block on the strongest EXECUTING query we
    // could reuse (paper §4: queries stall on in-flight dependencies; CNBF
    // exists to make this rare).
    if core.cfg.allow_blocking {
        let mut c = core.central.lock();
        let dep = c
            .graph
            .reuse_sources(id)
            .into_iter()
            .find(|e| c.graph.state_of(e.peer) == Some(QueryState::Executing));
        if let Some(dep) = dep {
            if would_deadlock(&c.waiting_on, id, dep.peer) {
                c.blocked_fallbacks += 1;
            } else {
                c.waiting_on.insert(id, dep.peer);
                let t0 = Instant::now();
                while c.graph.state_of(dep.peer) == Some(QueryState::Executing) && !c.shutdown {
                    core.done_cv.wait(&mut c);
                }
                c.waiting_on.remove(&id);
                blocked = t0.elapsed();
            }
        }
    }

    // Step 2 — Data Store lookup: collect exact/partial matches with their
    // payloads (Arc clones; projection happens outside the lock).
    let mut exact: Option<Arc<Vec<u8>>> = None;
    let mut sources: Vec<(A::Spec, Arc<Vec<u8>>)> = Vec::new();
    {
        let mut c = core.central.lock();
        let matches = c.ds.lookup(&spec);
        for m in matches {
            if let Some(e) = c.ds.get(m.blob) {
                if let Payload::Bytes(bytes) = &e.payload {
                    if exact.is_none() && e.spec.cmp(&spec) {
                        exact = Some(Arc::clone(bytes));
                    } else {
                        sources.push((e.spec, Arc::clone(bytes)));
                    }
                }
            }
        }
    }

    if let Some(bytes) = exact {
        // Complete reuse: common subexpression elimination (Eq. 1).
        return Ok(ExecOutcome {
            image: bytes,
            path: AnswerPath::ExactHit,
            reused_bytes: core.app.output_len(&spec) as u64,
            covered_fraction: 1.0,
            pages_requested: 0,
            blocked,
        });
    }

    // Steps 3–4 — the application projects cached coverage and computes
    // the remainder through the Page Space Manager.
    let out = core.app.execute(&spec, &sources, &core.ps)?;
    debug_assert_eq!(out.bytes.len(), core.app.output_len(&spec));
    let path = if out.reused_bytes > 0 {
        AnswerPath::PartialReuse
    } else {
        AnswerPath::FullCompute
    };
    Ok(ExecOutcome {
        image: Arc::new(out.bytes),
        path,
        reused_bytes: out.reused_bytes,
        covered_fraction: out.covered_fraction,
        pages_requested: out.pages_requested,
        blocked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmqs_core::{DatasetId, Rect};
    use vmqs_microscope::kernels::reference_render;
    use vmqs_microscope::{SlideDataset, VmOp, VmQuery};
    use vmqs_storage::SyntheticSource;

    fn slide() -> SlideDataset {
        SlideDataset::new(DatasetId(0), 600, 600)
    }

    fn server(cfg: ServerConfig) -> QueryServer {
        QueryServer::new(cfg, Arc::new(SyntheticSource::new()))
    }

    fn q(x: u32, y: u32, w: u32, h: u32, zoom: u32, op: VmOp) -> VmQuery {
        VmQuery::new(slide(), Rect::new(x, y, w, h), zoom, op)
    }

    #[test]
    fn single_query_matches_reference() {
        let s = server(ServerConfig::small());
        let spec = q(10, 10, 64, 64, 2, VmOp::Subsample);
        let res = s.submit(spec).wait().unwrap();
        assert_eq!(res.width, 32);
        assert_eq!(*res.image, reference_render(&spec).data);
        assert_eq!(res.record.path, AnswerPath::FullCompute);
        s.shutdown();
    }

    #[test]
    fn identical_query_is_exact_hit() {
        let s = server(ServerConfig::small());
        let spec = q(0, 0, 64, 64, 2, VmOp::Average);
        let first = s.submit(spec).wait().unwrap();
        let second = s.submit(spec).wait().unwrap();
        assert_eq!(second.record.path, AnswerPath::ExactHit);
        assert_eq!(*second.image, *first.image);
        assert_eq!(second.record.covered_fraction, 1.0);
        assert_eq!(second.record.pages_requested, 0);
        s.shutdown();
    }

    #[test]
    fn partial_overlap_reuses_and_matches_reference() {
        let s = server(ServerConfig::small().with_threads(1));
        let a = q(0, 0, 200, 400, 2, VmOp::Subsample);
        s.submit(a).wait().unwrap();
        let b = q(100, 0, 300, 400, 2, VmOp::Subsample);
        let res = s.submit(b).wait().unwrap();
        assert_eq!(res.record.path, AnswerPath::PartialReuse);
        assert!(res.record.covered_fraction > 0.2);
        assert_eq!(*res.image, reference_render(&b).data);
        s.shutdown();
    }

    #[test]
    fn zoom_projection_reuse_matches_reference_subsample() {
        let s = server(ServerConfig::small().with_threads(1));
        let fine = q(0, 0, 400, 400, 2, VmOp::Subsample);
        s.submit(fine).wait().unwrap();
        let coarse = q(0, 0, 400, 400, 8, VmOp::Subsample);
        let res = s.submit(coarse).wait().unwrap();
        assert_eq!(res.record.path, AnswerPath::PartialReuse);
        // The whole coarse output is derivable from the fine cached result.
        assert_eq!(res.record.covered_fraction, 1.0);
        assert_eq!(res.record.pages_requested, 0);
        assert_eq!(*res.image, reference_render(&coarse).data);
        s.shutdown();
    }

    #[test]
    fn caching_disabled_never_reuses() {
        let s = server(ServerConfig::small().with_ds_budget(0));
        let spec = q(0, 0, 64, 64, 1, VmOp::Subsample);
        s.submit(spec).wait().unwrap();
        let second = s.submit(spec).wait().unwrap();
        assert_eq!(second.record.path, AnswerPath::FullCompute);
        assert_eq!(s.ds_stats().rejected, 2);
        s.shutdown();
    }

    #[test]
    fn many_concurrent_queries_all_correct() {
        let s = server(ServerConfig::small().with_threads(4));
        let mut handles = Vec::new();
        let mut specs = Vec::new();
        for i in 0..12u32 {
            let spec = q((i % 3) * 100, (i / 3) * 60, 120, 120, 1 << (i % 3), VmOp::Subsample);
            specs.push(spec);
            handles.push(s.submit(spec));
        }
        for (h, spec) in handles.into_iter().zip(specs) {
            let res = h.wait().unwrap();
            assert_eq!(*res.image, reference_render(&spec).data, "query {spec:?}");
        }
        s.shutdown();
    }

    #[test]
    fn drain_waits_for_all() {
        let s = server(ServerConfig::small().with_threads(2));
        let handles = s.submit_batch((0..6).map(|i| q(i * 40, 0, 80, 80, 2, VmOp::Average)));
        s.drain();
        for h in handles {
            assert!(h.try_wait().is_some());
        }
        assert_eq!(s.records().len(), 6);
        s.shutdown();
    }

    #[test]
    fn shutdown_fails_pending_queries() {
        // One thread and a pile of queries: shut down immediately; whatever
        // did not run must receive an error, not hang.
        let s = server(ServerConfig::small().with_threads(1));
        let handles = s.submit_batch((0..8).map(|i| q((i % 4) * 100, 0, 100, 100, 1, VmOp::Average)));
        s.shutdown();
        let mut finished = 0;
        let mut failed = 0;
        for h in handles {
            match h.wait() {
                Ok(_) => finished += 1,
                Err(_) => failed += 1,
            }
        }
        assert_eq!(finished + failed, 8);
    }

    #[test]
    fn records_time_accounting_sane() {
        let s = server(ServerConfig::small());
        let spec = q(0, 0, 128, 128, 1, VmOp::Average);
        let res = s.submit(spec).wait().unwrap();
        assert!(res.record.exec_time > Duration::ZERO);
        assert!(res.record.response_time() >= res.record.exec_time);
        s.shutdown();
    }

    #[test]
    fn would_deadlock_detects_cycles() {
        let mut w = HashMap::new();
        w.insert(QueryId(1), QueryId(2));
        w.insert(QueryId(2), QueryId(3));
        assert!(would_deadlock(&w, QueryId(3), QueryId(1)));
        assert!(!would_deadlock(&w, QueryId(4), QueryId(1)));
        assert!(!would_deadlock(&w, QueryId(3), QueryId(4)));
    }

    #[test]
    fn blocking_disabled_still_correct() {
        let s = server(ServerConfig::small().with_threads(4).with_blocking(false));
        let spec = q(0, 0, 300, 300, 2, VmOp::Subsample);
        let handles: Vec<_> = (0..4).map(|_| s.submit(spec)).collect();
        for h in handles {
            let res = h.wait().unwrap();
            assert_eq!(*res.image, reference_render(&spec).data);
        }
        s.shutdown();
    }
}
