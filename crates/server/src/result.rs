//! Query results and per-query execution records.

use std::sync::Arc;
use std::time::Duration;
use vmqs_core::QueryId;
use vmqs_microscope::VmQuery;

/// The answer delivered to a client. Generic over the application's
/// predicate type; defaults to the Virtual Microscope.
#[derive(Clone, Debug)]
pub struct QueryResult<S = VmQuery> {
    /// The query this answers.
    pub id: QueryId,
    /// Output image bytes (the application's encoding — row-major RGB for
    /// the microscope, grayscale for the volume app), shared with the Data
    /// Store's cached copy when one exists. `Arc<[u8]>` so handing the
    /// answer to the client and to the cache is a refcount bump, never a
    /// byte copy inside a critical section.
    pub image: Arc<[u8]>,
    /// Output width in pixels.
    pub width: u32,
    /// Output height in pixels.
    pub height: u32,
    /// Execution record for this query.
    pub record: QueryRecord<S>,
}

/// How a query was answered (for statistics and tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnswerPath {
    /// A cached result `cmp`-matched exactly.
    ExactHit,
    /// Partially projected from cached results, remainder computed.
    PartialReuse,
    /// Computed entirely from raw chunks.
    FullCompute,
    /// Answered entirely by grafting onto an in-flight peer: the query
    /// subscribed to an EXECUTING producer's reserved Data Store entry
    /// and consumed the published bytes (DESIGN.md §13). An exact-match
    /// sibling of `ExactHit`, hit before the producer's result was CACHED.
    Grafted,
}

/// Timing and reuse accounting for one executed query.
#[derive(Clone, Copy, Debug)]
pub struct QueryRecord<S = VmQuery> {
    /// The query.
    pub id: QueryId,
    /// The predicate.
    pub spec: S,
    /// Time spent queued (submission → dequeue).
    pub wait_time: Duration,
    /// Time spent executing (dequeue → completion), including any blocking
    /// on in-flight dependencies.
    pub exec_time: Duration,
    /// Of which: time blocked waiting for an EXECUTING dependency.
    pub blocked_time: Duration,
    /// How the answer was produced.
    pub path: AnswerPath,
    /// Output bytes obtained by projecting cached results.
    pub reused_bytes: u64,
    /// Fraction of the output area answered from cache, in `[0, 1]`
    /// (the "overlap" achieved; Fig. 5's metric).
    pub covered_fraction: f64,
    /// Pages this query asked the Page Space Manager for.
    pub pages_requested: u64,
    /// True when admission downgraded the query to its cheaper plan
    /// (Virtual Microscope: `Average` → `Subsample`) under pressure;
    /// `spec` is the degraded predicate that actually ran.
    pub degraded: bool,
}

impl<S> QueryRecord<S> {
    /// Response time = waiting + execution (the paper's Fig. 4/6 metric).
    pub fn response_time(&self) -> Duration {
        self.wait_time + self.exec_time
    }
}

/// Aggregate metrics over all completed queries, computed in place from
/// the server's records — the cheap way to poll progress or throughput
/// without copying per-query records out of the metrics lock.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerSummary {
    /// Queries completed so far.
    pub completed: usize,
    /// Of which: answered entirely from an exact cached match.
    pub exact_hits: usize,
    /// Of which: partially projected from cached results.
    pub partial_reuse: usize,
    /// Of which: computed entirely from raw pages.
    pub full_compute: usize,
    /// Of which: answered by grafting onto an in-flight producer's
    /// subscribable Data Store entry (exact-coverage grafts only; partial
    /// grafts count under `partial_reuse`).
    pub grafted: usize,
    /// Full computes whose output already had a `cmp`-equivalent visible
    /// Data Store entry at publish time — redundant work a perfect
    /// co-scheduler would have avoided. Grafting plus producer-affinity
    /// dequeue is expected to drive this to 0 (ROADMAP item 1).
    pub duplicate_full_computes: u64,
    /// Total output bytes obtained by projecting cached results.
    pub reused_bytes: u64,
    /// Mean response time (wait + execution).
    pub mean_response: Duration,
    /// Median response time.
    pub p50_response: Duration,
    /// 95th-percentile response time.
    pub p95_response: Duration,
    /// Queries that failed with an error other than a timeout (these are
    /// *not* in `completed`).
    pub failed: usize,
    /// Queries cancelled at their per-query deadline.
    pub timed_out: usize,
    /// Page-read faults observed (transient + permanent), before retry.
    pub io_faults: u64,
    /// Page-read retries performed under the retry policy.
    pub io_retries: u64,
    /// Page reads that failed for good (retries exhausted, permanent
    /// fault, or deadline hit mid-read).
    pub failed_reads: u64,
    /// Queries refused at admission (queue full or rate limited).
    pub rejected: usize,
    /// Queries admitted but evicted by the load shedder.
    pub shed: usize,
    /// Completed queries that ran at degraded quality.
    pub degraded: usize,
    /// Data Store entries demoted to the tier-2 spill store (DESIGN.md
    /// §14) instead of dropped.
    pub spilled: u64,
    /// Spilled entries re-heated from tier 2 — each one an exact hit that
    /// cost a disk read instead of a recompute.
    pub restored: u64,
    /// Tier-2 reads that failed (poisoned or corrupt frame); the entry
    /// was dropped and the query fell back to recomputation.
    pub restore_failures: u64,
    /// Worker threads killed by a panicking compute (DESIGN.md §15).
    pub worker_panics: u64,
    /// Replacement workers spawned under the restart budget.
    pub worker_restarts: u64,
    /// Queries failed by the quarantine rule after their compute panicked
    /// `quarantine_limit` workers (a subset of `failed`).
    pub quarantined: usize,
    /// Queries cancelled by the hang watchdog (a subset of `timed_out`).
    pub hung: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmqs_core::{DatasetId, Rect};
    use vmqs_microscope::{SlideDataset, VmOp};

    #[test]
    fn response_time_is_wait_plus_exec() {
        let spec = VmQuery::new(
            SlideDataset::new(DatasetId(0), 100, 100),
            Rect::new(0, 0, 10, 10),
            1,
            VmOp::Subsample,
        );
        let r = QueryRecord {
            id: QueryId(1),
            spec,
            wait_time: Duration::from_millis(30),
            exec_time: Duration::from_millis(70),
            blocked_time: Duration::ZERO,
            path: AnswerPath::FullCompute,
            reused_bytes: 0,
            covered_fraction: 0.0,
            pages_requested: 1,
            degraded: false,
        };
        assert_eq!(r.response_time(), Duration::from_millis(100));
    }
}
