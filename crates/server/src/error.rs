//! Typed errors delivered to clients when a query cannot be answered.
//!
//! Error taxonomy (see DESIGN.md §8, "Failure model"):
//!
//! * [`ServerError::Io`] — a page read failed for good: a permanent fault,
//!   or a transient fault that survived the bounded retry schedule. The
//!   `transient` flag preserves the classification so clients can decide
//!   whether re-submitting the query is worthwhile.
//! * [`ServerError::Timeout`] — the query exceeded its configured
//!   deadline (submission → completion) and was cancelled cooperatively.
//! * [`ServerError::Shutdown`] — the server stopped before the query ran.
//! * [`ServerError::Overloaded`] — admission control refused the query
//!   (bounded queue full, or the client exceeded its token-bucket rate);
//!   `retry_after` hints when re-submitting is likely to succeed.
//! * [`ServerError::Shed`] — the query was admitted but evicted from the
//!   waiting queue by the load shedder (DESIGN.md §10).
//!
//! A failed query always resolves its [`crate::QueryHandle`] with `Err`,
//! decrements the outstanding count, and leaves no residue in the
//! scheduling graph or the Data Store — peers are undisturbed.

use std::io;
use std::time::Duration;

/// Why a query failed. Delivered through [`crate::QueryHandle::wait`].
#[derive(Clone, Debug, PartialEq)]
pub enum ServerError {
    /// Page I/O failed after exhausting the retry policy (or immediately,
    /// for non-retryable faults).
    Io {
        /// The underlying [`io::ErrorKind`].
        kind: io::ErrorKind,
        /// Whether the final error was transient (retryable in principle —
        /// a fresh submission may succeed) or permanent.
        transient: bool,
        /// Human-readable detail from the data source.
        message: String,
    },
    /// The query missed its deadline and was cancelled.
    Timeout {
        /// The configured per-query time limit.
        limit: Duration,
    },
    /// The server shut down before the query completed.
    Shutdown,
    /// Admission control refused the query: the bounded admission queue
    /// was full, or the per-client token bucket was empty.
    Overloaded {
        /// A coarse estimate of when re-submitting is likely to be
        /// admitted (queue-drain time, or the token-bucket refill time).
        retry_after: Duration,
    },
    /// The query was admitted but shed from the waiting queue when
    /// pressure crossed the shed threshold; `pressure` is the level (in
    /// `[0, 1]`) that triggered the decision.
    Shed {
        /// Pressure level at the moment of shedding.
        pressure: f64,
    },
    /// The worker computing the query panicked and the entire worker pool
    /// died before the query could be retried (restart budget exhausted).
    /// Queries that are merely orphaned by one dead worker are requeued,
    /// not failed — this variant surfaces only when no sibling is left.
    WorkerPanicked,
    /// The query's compute panicked its worker `attempts` times — a
    /// deterministic poison query — and the quarantine rule failed it
    /// typed-ly instead of letting it crash-loop the pool (DESIGN.md §15).
    Quarantined {
        /// Workers this query killed before quarantine.
        attempts: u32,
    },
    /// The query was stuck past the hang timeout and cancelled by the
    /// supervision watchdog. Classified as a timeout (`is_timeout`) so
    /// conservation accounting folds it into `timed_out`.
    Hung {
        /// The configured hang limit it exceeded.
        limit: Duration,
    },
}

impl ServerError {
    /// True for deadline cancellations (including watchdog hang
    /// cancellations, which ride the same deadline machinery).
    pub fn is_timeout(&self) -> bool {
        matches!(self, ServerError::Timeout { .. } | ServerError::Hung { .. })
    }

    /// True when re-submitting the query might succeed (transient I/O,
    /// timeout, overload); false for permanent faults, shutdown, and
    /// quarantined poison queries (they panic deterministically).
    pub fn is_retryable(&self) -> bool {
        match self {
            ServerError::Io { transient, .. } => *transient,
            ServerError::Timeout { .. } => true,
            ServerError::Shutdown => false,
            ServerError::Overloaded { .. } => true,
            ServerError::Shed { .. } => true,
            ServerError::WorkerPanicked => true,
            ServerError::Quarantined { .. } => false,
            ServerError::Hung { .. } => true,
        }
    }

    /// True for overload-control outcomes: rejected at admission or shed
    /// from the waiting queue.
    pub fn is_overload(&self) -> bool {
        matches!(
            self,
            ServerError::Overloaded { .. } | ServerError::Shed { .. }
        )
    }

    /// Classifies an [`io::Error`] bubbled up from the page-space layer:
    /// deadline markers become [`ServerError::Timeout`], everything else
    /// becomes [`ServerError::Io`] with its transience preserved.
    pub fn from_io(e: &io::Error, timeout_limit: Option<Duration>) -> Self {
        if is_deadline(e) {
            return ServerError::Timeout {
                limit: timeout_limit.unwrap_or_default(),
            };
        }
        ServerError::Io {
            kind: e.kind(),
            transient: vmqs_storage::is_transient(e),
            message: e.to_string(),
        }
    }
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io {
                kind,
                transient,
                message,
            } => write!(
                f,
                "query failed: {} I/O error ({kind:?}): {message}",
                if *transient { "transient" } else { "permanent" }
            ),
            ServerError::Timeout { limit } => {
                write!(f, "query timed out after its {limit:?} deadline")
            }
            ServerError::Shutdown => write!(f, "query failed: server shut down"),
            ServerError::Overloaded { retry_after } => {
                write!(
                    f,
                    "query rejected: server overloaded (retry after {retry_after:?})"
                )
            }
            ServerError::Shed { pressure } => {
                write!(f, "query shed under overload (pressure {pressure:.2})")
            }
            ServerError::WorkerPanicked => {
                write!(
                    f,
                    "query failed: its worker panicked and no sibling remains"
                )
            }
            ServerError::Quarantined { attempts } => {
                write!(
                    f,
                    "query quarantined: its compute panicked {attempts} worker(s)"
                )
            }
            ServerError::Hung { limit } => {
                write!(
                    f,
                    "query hung past the {limit:?} watchdog limit and was cancelled"
                )
            }
        }
    }
}

impl std::error::Error for ServerError {}

/// Marker payload distinguishing deadline cancellations from genuine
/// device timeouts inside `io::Result` plumbing.
#[derive(Debug)]
pub(crate) struct DeadlineExceeded;

impl std::fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query deadline exceeded")
    }
}

impl std::error::Error for DeadlineExceeded {}

/// Builds the `io::Error` the page-space layer returns when a query's
/// deadline passes mid-read. Carries [`DeadlineExceeded`] so
/// [`ServerError::from_io`] can tell it apart from a device `TimedOut`.
pub(crate) fn deadline_error() -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, DeadlineExceeded)
}

/// True when `e` is a deadline marker produced by [`deadline_error`].
pub(crate) fn is_deadline(e: &io::Error) -> bool {
    e.get_ref()
        .is_some_and(|inner| inner.is::<DeadlineExceeded>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_marker_roundtrips() {
        let e = deadline_error();
        assert!(is_deadline(&e));
        assert_eq!(e.kind(), io::ErrorKind::TimedOut);
        // A plain device timeout is NOT a deadline marker.
        let device = io::Error::new(io::ErrorKind::TimedOut, "drive timeout");
        assert!(!is_deadline(&device));
    }

    #[test]
    fn from_io_classifies() {
        let t = ServerError::from_io(&io::Error::new(io::ErrorKind::Interrupted, "flaky"), None);
        assert_eq!(
            t,
            ServerError::Io {
                kind: io::ErrorKind::Interrupted,
                transient: true,
                message: "flaky".into()
            }
        );
        assert!(t.is_retryable());

        let p = ServerError::from_io(
            &io::Error::new(io::ErrorKind::InvalidData, "bad sector"),
            None,
        );
        assert!(matches!(
            p,
            ServerError::Io {
                transient: false,
                ..
            }
        ));
        assert!(!p.is_retryable());

        let d = ServerError::from_io(&deadline_error(), Some(Duration::from_millis(5)));
        assert_eq!(
            d,
            ServerError::Timeout {
                limit: Duration::from_millis(5)
            }
        );
        assert!(d.is_timeout() && d.is_retryable());
    }

    #[test]
    fn display_is_informative() {
        let e = ServerError::Io {
            kind: io::ErrorKind::InvalidData,
            transient: false,
            message: "bad sector".into(),
        };
        let s = e.to_string();
        assert!(s.contains("permanent") && s.contains("bad sector"));
        assert!(ServerError::Shutdown.to_string().contains("shut down"));
        assert!(ServerError::Timeout {
            limit: Duration::from_secs(1)
        }
        .to_string()
        .contains("timed out"));
    }

    #[test]
    fn overload_variants_classify_and_display() {
        let r = ServerError::Overloaded {
            retry_after: Duration::from_millis(50),
        };
        assert!(r.is_overload() && r.is_retryable() && !r.is_timeout());
        assert!(r.to_string().contains("overloaded"));
        assert!(r.to_string().contains("retry after"));

        let s = ServerError::Shed { pressure: 0.95 };
        assert!(s.is_overload() && s.is_retryable());
        assert!(s.to_string().contains("shed"));
        assert!(s.to_string().contains("0.95"));

        assert!(!ServerError::Shutdown.is_overload());
        assert!(!ServerError::Timeout {
            limit: Duration::ZERO
        }
        .is_overload());
    }

    #[test]
    fn containment_variants_classify_and_display() {
        let p = ServerError::WorkerPanicked;
        assert!(p.is_retryable() && !p.is_timeout() && !p.is_overload());
        assert!(p.to_string().contains("panicked"));

        let q = ServerError::Quarantined { attempts: 3 };
        assert!(!q.is_retryable(), "poison queries panic deterministically");
        assert!(!q.is_timeout() && !q.is_overload());
        assert!(q.to_string().contains("quarantined"));
        assert!(q.to_string().contains('3'));

        let h = ServerError::Hung {
            limit: Duration::from_millis(250),
        };
        assert!(
            h.is_timeout(),
            "hang cancellations fold into timeout accounting"
        );
        assert!(h.is_retryable() && !h.is_overload());
        assert!(h.to_string().contains("hung"));
    }
}
