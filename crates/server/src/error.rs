//! Typed errors delivered to clients when a query cannot be answered.
//!
//! Error taxonomy (see DESIGN.md §8, "Failure model"):
//!
//! * [`ServerError::Io`] — a page read failed for good: a permanent fault,
//!   or a transient fault that survived the bounded retry schedule. The
//!   `transient` flag preserves the classification so clients can decide
//!   whether re-submitting the query is worthwhile.
//! * [`ServerError::Timeout`] — the query exceeded its configured
//!   deadline (submission → completion) and was cancelled cooperatively.
//! * [`ServerError::Shutdown`] — the server stopped before the query ran.
//!
//! A failed query always resolves its [`crate::QueryHandle`] with `Err`,
//! decrements the outstanding count, and leaves no residue in the
//! scheduling graph or the Data Store — peers are undisturbed.

use std::io;
use std::time::Duration;

/// Why a query failed. Delivered through [`crate::QueryHandle::wait`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// Page I/O failed after exhausting the retry policy (or immediately,
    /// for non-retryable faults).
    Io {
        /// The underlying [`io::ErrorKind`].
        kind: io::ErrorKind,
        /// Whether the final error was transient (retryable in principle —
        /// a fresh submission may succeed) or permanent.
        transient: bool,
        /// Human-readable detail from the data source.
        message: String,
    },
    /// The query missed its deadline and was cancelled.
    Timeout {
        /// The configured per-query time limit.
        limit: Duration,
    },
    /// The server shut down before the query completed.
    Shutdown,
}

impl ServerError {
    /// True for deadline cancellations.
    pub fn is_timeout(&self) -> bool {
        matches!(self, ServerError::Timeout { .. })
    }

    /// True when re-submitting the query might succeed (transient I/O,
    /// timeout); false for permanent faults and shutdown.
    pub fn is_retryable(&self) -> bool {
        match self {
            ServerError::Io { transient, .. } => *transient,
            ServerError::Timeout { .. } => true,
            ServerError::Shutdown => false,
        }
    }

    /// Classifies an [`io::Error`] bubbled up from the page-space layer:
    /// deadline markers become [`ServerError::Timeout`], everything else
    /// becomes [`ServerError::Io`] with its transience preserved.
    pub fn from_io(e: &io::Error, timeout_limit: Option<Duration>) -> Self {
        if is_deadline(e) {
            return ServerError::Timeout {
                limit: timeout_limit.unwrap_or_default(),
            };
        }
        ServerError::Io {
            kind: e.kind(),
            transient: vmqs_storage::is_transient(e),
            message: e.to_string(),
        }
    }
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io {
                kind,
                transient,
                message,
            } => write!(
                f,
                "query failed: {} I/O error ({kind:?}): {message}",
                if *transient { "transient" } else { "permanent" }
            ),
            ServerError::Timeout { limit } => {
                write!(f, "query timed out after its {limit:?} deadline")
            }
            ServerError::Shutdown => write!(f, "query failed: server shut down"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Marker payload distinguishing deadline cancellations from genuine
/// device timeouts inside `io::Result` plumbing.
#[derive(Debug)]
pub(crate) struct DeadlineExceeded;

impl std::fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query deadline exceeded")
    }
}

impl std::error::Error for DeadlineExceeded {}

/// Builds the `io::Error` the page-space layer returns when a query's
/// deadline passes mid-read. Carries [`DeadlineExceeded`] so
/// [`ServerError::from_io`] can tell it apart from a device `TimedOut`.
pub(crate) fn deadline_error() -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, DeadlineExceeded)
}

/// True when `e` is a deadline marker produced by [`deadline_error`].
pub(crate) fn is_deadline(e: &io::Error) -> bool {
    e.get_ref()
        .is_some_and(|inner| inner.is::<DeadlineExceeded>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_marker_roundtrips() {
        let e = deadline_error();
        assert!(is_deadline(&e));
        assert_eq!(e.kind(), io::ErrorKind::TimedOut);
        // A plain device timeout is NOT a deadline marker.
        let device = io::Error::new(io::ErrorKind::TimedOut, "drive timeout");
        assert!(!is_deadline(&device));
    }

    #[test]
    fn from_io_classifies() {
        let t = ServerError::from_io(&io::Error::new(io::ErrorKind::Interrupted, "flaky"), None);
        assert_eq!(
            t,
            ServerError::Io {
                kind: io::ErrorKind::Interrupted,
                transient: true,
                message: "flaky".into()
            }
        );
        assert!(t.is_retryable());

        let p = ServerError::from_io(
            &io::Error::new(io::ErrorKind::InvalidData, "bad sector"),
            None,
        );
        assert!(matches!(
            p,
            ServerError::Io {
                transient: false,
                ..
            }
        ));
        assert!(!p.is_retryable());

        let d = ServerError::from_io(&deadline_error(), Some(Duration::from_millis(5)));
        assert_eq!(
            d,
            ServerError::Timeout {
                limit: Duration::from_millis(5)
            }
        );
        assert!(d.is_timeout() && d.is_retryable());
    }

    #[test]
    fn display_is_informative() {
        let e = ServerError::Io {
            kind: io::ErrorKind::InvalidData,
            transient: false,
            message: "bad sector".into(),
        };
        let s = e.to_string();
        assert!(s.contains("permanent") && s.contains("bad sector"));
        assert!(ServerError::Shutdown.to_string().contains("shut down"));
        assert!(ServerError::Timeout {
            limit: Duration::from_secs(1)
        }
        .to_string()
        .contains("timed out"));
    }
}
