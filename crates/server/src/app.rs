//! The application contract for the *threaded* engine: real execution of
//! one query given its cached reuse sources, with real I/O through the
//! shared Page Space Manager.
//!
//! The scheduling graph, Data Store bookkeeping, blocking/deadlock
//! avoidance, and thread-pool mechanics live in the engine; everything an
//! application developer must supply — kernels, projection, sub-query
//! assembly — lives behind [`AppExecutor`]. [`VmExecutor`] is the Virtual
//! Microscope implementation; the §6 volume application implements the
//! same trait in `vmqs-volume`.

use crate::pages::PageSpaceSession;
use std::sync::Arc;
use vmqs_core::geom::subtract_all;
use vmqs_core::{QuerySpec, Rect, SpatialSpec};
use vmqs_microscope::kernels::{
    compute_from_chunks, compute_from_pages, kernel_threads, project_banded, will_band,
};
use vmqs_microscope::{RgbImage, RgbView, SlideDataset, VmQuery, BYTES_PER_PIXEL, PAGE_SIZE};

/// The result of executing one query.
#[derive(Debug)]
pub struct AppOutcome {
    /// The answer's raw bytes (the application's image encoding).
    pub bytes: Vec<u8>,
    /// Output bytes obtained by projecting cached results.
    pub reused_bytes: u64,
    /// Fraction of the output answered from cache, in `[0, 1]`.
    pub covered_fraction: f64,
    /// Pages requested from the Page Space Manager.
    pub pages_requested: u64,
    /// Sub-queries spawned to compute the uncovered remainder.
    pub subqueries: u64,
}

/// A data-analysis application runnable on the threaded engine.
pub trait AppExecutor: Send + Sync + 'static {
    /// The application's predicate type. [`SpatialSpec`] so the engine's
    /// Data Store can serve lookups through its grid index.
    type Spec: SpatialSpec + Copy + std::fmt::Debug;

    /// Output image dimensions for a predicate (for clients assembling
    /// the answer).
    fn output_dims(&self, spec: &Self::Spec) -> (u32, u32);

    /// Exact output byte length for a predicate.
    fn output_len(&self, spec: &Self::Spec) -> usize;

    /// Computes the full answer for `spec`: project from `sources`
    /// (cached predicate + payload bytes, most-reusable first — exact
    /// `cmp` matches are handled by the engine before this is called),
    /// then compute the uncovered remainder reading pages through `ps`.
    ///
    /// `ps` is a deadline-scoped Page Space view: reads fail with a
    /// timeout error once the query's deadline passes, so implementations
    /// need only propagate `Err` to cancel cooperatively. Long compute
    /// stages may additionally call [`PageSpaceSession::check_deadline`].
    fn execute(
        &self,
        spec: &Self::Spec,
        sources: &[(Self::Spec, Arc<[u8]>)],
        ps: &PageSpaceSession<'_>,
    ) -> std::io::Result<AppOutcome>;

    /// The cheaper plan for `spec`, if the application has one — the
    /// quality knob the overload policy turns under pressure (DESIGN.md
    /// §10). `None` (the default) means the query either has no cheaper
    /// form or is already at its cheapest.
    fn degrade(&self, _spec: &Self::Spec) -> Option<Self::Spec> {
        None
    }

    /// Serializes a predicate into the meta block of a tier-2 spill frame
    /// so [`decode_spec`](AppExecutor::decode_spec) can rebuild the Data
    /// Store entry after a crash (DESIGN.md §15). The default (empty)
    /// makes recovered frames unidentifiable: recovery deletes them
    /// instead of re-adopting, which is safe for applications that never
    /// opt into a codec.
    fn encode_spec(&self, _spec: &Self::Spec) -> Vec<u8> {
        Vec::new()
    }

    /// Rebuilds a predicate from a spill frame's meta block. `None` means
    /// the bytes are unrecognizable (foreign app, stale codec version):
    /// the recovery scan deletes the frame rather than adopting garbage.
    fn decode_spec(&self, _meta: &[u8]) -> Option<Self::Spec> {
        None
    }
}

/// The Virtual Microscope's executor: 2-D greedy projection plus
/// subsample/average kernels over chunk pages.
#[derive(Clone, Copy, Debug, Default)]
pub struct VmExecutor;

impl AppExecutor for VmExecutor {
    type Spec = VmQuery;

    fn output_dims(&self, spec: &VmQuery) -> (u32, u32) {
        spec.output_dims()
    }

    fn output_len(&self, spec: &VmQuery) -> usize {
        spec.qoutsize() as usize
    }

    /// `Average` degrades to `Subsample` over the same region — the
    /// paper's explicit quality/cost pair (Subsample reads one pixel per
    /// output pixel; Average reads the full zoom² window).
    fn degrade(&self, spec: &VmQuery) -> Option<VmQuery> {
        match spec.op {
            vmqs_microscope::VmOp::Average => Some(VmQuery {
                op: vmqs_microscope::VmOp::Subsample,
                ..*spec
            }),
            vmqs_microscope::VmOp::Subsample => None,
        }
    }

    /// Fixed-width little-endian frame meta: dataset id, slide dims,
    /// window, zoom, op tag. 37 bytes; no varints so `decode_spec` can
    /// reject on length alone.
    fn encode_spec(&self, spec: &VmQuery) -> Vec<u8> {
        let mut out = Vec::with_capacity(37);
        out.extend_from_slice(&spec.slide.id.0.to_le_bytes());
        out.extend_from_slice(&spec.slide.width.to_le_bytes());
        out.extend_from_slice(&spec.slide.height.to_le_bytes());
        out.extend_from_slice(&spec.region.x.to_le_bytes());
        out.extend_from_slice(&spec.region.y.to_le_bytes());
        out.extend_from_slice(&spec.region.w.to_le_bytes());
        out.extend_from_slice(&spec.region.h.to_le_bytes());
        out.extend_from_slice(&spec.zoom.to_le_bytes());
        out.push(match spec.op {
            vmqs_microscope::VmOp::Subsample => 0,
            vmqs_microscope::VmOp::Average => 1,
        });
        out
    }

    fn decode_spec(&self, meta: &[u8]) -> Option<VmQuery> {
        if meta.len() != 37 {
            return None;
        }
        let u64_at = |i: usize| u64::from_le_bytes(meta[i..i + 8].try_into().unwrap());
        let u32_at = |i: usize| u32::from_le_bytes(meta[i..i + 4].try_into().unwrap());
        let (sw, sh) = (u32_at(8), u32_at(12));
        let region = Rect {
            x: u32_at(16),
            y: u32_at(20),
            w: u32_at(24),
            h: u32_at(28),
        };
        let zoom = u32_at(32);
        let op = match meta[36] {
            0 => vmqs_microscope::VmOp::Subsample,
            1 => vmqs_microscope::VmOp::Average,
            _ => return None,
        };
        // Re-validate the constructor's invariants instead of trusting
        // disk bytes: non-degenerate slide, zoomed + aligned + in-bounds
        // window. Anything off means a stale codec or corruption that
        // slipped past the CRC — refuse, and recovery deletes the frame.
        if sw == 0 || sh == 0 || zoom == 0 || region.w == 0 || region.h == 0 {
            return None;
        }
        let aligned = [region.x, region.y, region.w, region.h]
            .iter()
            .all(|v| v % zoom == 0);
        let in_bounds = region
            .x
            .checked_add(region.w)
            .is_some_and(|right| right <= sw)
            && region
                .y
                .checked_add(region.h)
                .is_some_and(|bottom| bottom <= sh);
        if !aligned || !in_bounds {
            return None;
        }
        Some(VmQuery {
            slide: SlideDataset::new(vmqs_core::DatasetId(u64_at(0)), sw, sh),
            region,
            zoom,
            op,
        })
    }

    fn execute(
        &self,
        spec: &VmQuery,
        sources: &[(VmQuery, Arc<[u8]>)],
        ps: &PageSpaceSession<'_>,
    ) -> std::io::Result<AppOutcome> {
        let threads = kernel_threads();
        // Project partial matches (Eq. 3) greedily, best first.
        let (w, h) = spec.output_dims();
        let mut out = RgbImage::new(w, h);
        let mut covered: Vec<Rect> = Vec::new();
        let mut reused_px: u64 = 0;
        for (src_spec, bytes) in sources {
            let cov = match src_spec.aligned_coverage(spec) {
                Some(c) => c,
                None => continue,
            };
            // Skip sources whose coverage is already fully projected from
            // earlier (higher-ranked) sources.
            let fresh = subtract_all(&cov, &covered);
            if fresh.is_empty() {
                continue;
            }
            let (sw, sh) = src_spec.output_dims();
            let view = RgbView::new(sw, sh, bytes);
            project_banded(&mut out, spec, src_spec, view, threads);
            let z2 = spec.zoom as u64 * spec.zoom as u64;
            for f in fresh {
                reused_px += f.area() / z2;
                covered.push(f);
            }
        }

        // Sub-queries for the uncovered remainder, from raw chunks.
        let mut pages_requested = 0u64;
        let mut subqueries = 0u64;
        for sub in spec.subqueries_for_remainder(&covered) {
            subqueries += 1;
            let chunks = sub.slide.chunks_intersecting(&sub.region);
            pages_requested += chunks.len() as u64;
            // Prefetch the whole chunk set so overlapping requests merge.
            ps.fetch_pages(sub.slide.id, &chunks)?;
            let (_, sub_h) = sub.output_dims();
            let img = if will_band(sub_h, threads) {
                // Banded render: materialize the immutable page set first
                // so the worker bands never touch the Page Space.
                let mut pages = Vec::with_capacity(chunks.len());
                for idx in &chunks {
                    pages.push((
                        sub.slide.chunk_rect(*idx),
                        ps.read_page(sub.slide.id, *idx)?,
                    ));
                }
                compute_from_pages(&sub, &pages, threads)
            } else {
                // Serial render: read each page right before the kernel
                // consumes it, keeping it hot in cache.
                let mut io_err = None;
                let img = compute_from_chunks(&sub, |idx| match ps.read_page(sub.slide.id, idx) {
                    Ok(p) => p,
                    Err(e) => {
                        io_err = Some(e);
                        Arc::new(vec![0; PAGE_SIZE])
                    }
                });
                if let Some(e) = io_err {
                    return Err(e);
                }
                img
            };
            let ox = (sub.region.x - spec.region.x) / spec.zoom;
            let oy = (sub.region.y - spec.region.y) / spec.zoom;
            let (sw, sh) = sub.output_dims();
            out.blit(ox, oy, &img, 0, 0, sw, sh);
        }

        let total_px = w as u64 * h as u64;
        Ok(AppOutcome {
            bytes: out.data,
            reused_bytes: reused_px * BYTES_PER_PIXEL as u64,
            covered_fraction: if total_px == 0 {
                0.0
            } else {
                reused_px as f64 / total_px as f64
            },
            pages_requested,
            subqueries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmqs_core::DatasetId;
    use vmqs_microscope::kernels::reference_render;
    use vmqs_microscope::{SlideDataset, VmOp, PAGE_SIZE};
    use vmqs_storage::SyntheticSource;

    use crate::pages::SharedPageSpace;

    fn ps() -> SharedPageSpace {
        SharedPageSpace::new(16 << 20, PAGE_SIZE, Arc::new(SyntheticSource::new()))
    }

    fn slide() -> SlideDataset {
        SlideDataset::new(DatasetId(0), 1000, 1000)
    }

    #[test]
    fn executes_from_scratch_to_reference() {
        let spec = VmQuery::new(slide(), Rect::new(10, 10, 256, 256), 2, VmOp::Average);
        let ps = ps();
        let out = VmExecutor.execute(&spec, &[], &ps.session(None)).unwrap();
        assert_eq!(out.bytes, reference_render(&spec).data);
        assert_eq!(out.covered_fraction, 0.0);
        assert!(out.pages_requested > 0);
        assert_eq!(VmExecutor.output_len(&spec), out.bytes.len());
        assert_eq!(VmExecutor.output_dims(&spec), (128, 128));
    }

    #[test]
    fn executes_with_cached_source_to_reference() {
        let ps = ps();
        let session = ps.session(None);
        let cached = VmQuery::new(slide(), Rect::new(0, 0, 256, 512), 2, VmOp::Subsample);
        let cached_out = VmExecutor.execute(&cached, &[], &session).unwrap();
        let target = VmQuery::new(slide(), Rect::new(128, 0, 384, 512), 2, VmOp::Subsample);
        let out = VmExecutor
            .execute(&target, &[(cached, cached_out.bytes.into())], &session)
            .unwrap();
        assert_eq!(out.bytes, reference_render(&target).data);
        assert!(out.covered_fraction > 0.2);
        assert!(out.reused_bytes > 0);
    }

    #[test]
    fn spec_codec_roundtrips_and_rejects_garbage() {
        let spec = VmQuery::new(slide(), Rect::new(10, 10, 256, 256), 2, VmOp::Average);
        let meta = VmExecutor.encode_spec(&spec);
        assert_eq!(meta.len(), 37);
        assert_eq!(VmExecutor.decode_spec(&meta), Some(spec));

        // Wrong length, unknown op tag, and out-of-bounds windows are all
        // refused rather than panicking in the VmQuery constructor.
        assert_eq!(VmExecutor.decode_spec(&meta[..36]), None);
        let mut bad_op = meta.clone();
        bad_op[36] = 9;
        assert_eq!(VmExecutor.decode_spec(&bad_op), None);
        let mut oob = meta.clone();
        oob[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(VmExecutor.decode_spec(&oob), None);
        let mut misaligned = meta;
        misaligned[16..20].copy_from_slice(&11u32.to_le_bytes());
        assert_eq!(VmExecutor.decode_spec(&misaligned), None);
    }

    #[test]
    fn degrade_swaps_average_for_subsample_once() {
        let avg = VmQuery::new(slide(), Rect::new(10, 10, 256, 256), 4, VmOp::Average);
        let d = VmExecutor
            .degrade(&avg)
            .expect("average has a cheaper plan");
        assert_eq!(d.op, VmOp::Subsample);
        assert_eq!(
            (d.slide, d.region, d.zoom),
            (avg.slide, avg.region, avg.zoom)
        );
        assert!(
            VmExecutor.degrade(&d).is_none(),
            "subsample is already the cheapest plan"
        );
    }
}
