//! Overload smoke tests (DESIGN.md §10): the threaded engine at 4x its
//! admission capacity, with transient faults layered on top. The
//! contract: every submission resolves with exactly one typed outcome
//! (conservation), admission/shed decisions leak no scheduling state
//! (`check_invariants`), degraded answers are byte-identical to the
//! reference render of the *degraded* plan, and the shed/degrade
//! machinery actually fires (nonzero counters). Event traces are
//! written under `target/overload/` so the CI job can upload them when
//! a run fails.

use std::sync::Arc;
use std::time::Duration;
use vmqs_core::{DatasetId, OverloadConfig, Rect};
use vmqs_microscope::kernels::reference_render;
use vmqs_microscope::{SlideDataset, VmOp, VmQuery};
use vmqs_obs::events_to_json;
use vmqs_server::{QueryServer, ServerConfig, ServerError};
use vmqs_storage::{FaultConfig, FaultInjectingSource, SyntheticSource};

const WORKERS: usize = 8;
const MAX_PENDING: usize = 12;
/// Offered load: 4x the admission bound.
const QUERIES: usize = 4 * MAX_PENDING;

/// Deterministic overlapping workload (same LCG scheme as the fault
/// sweep), biased toward `Average` so the degradation ladder has
/// something to downgrade.
fn workload() -> Vec<VmQuery> {
    let slide = SlideDataset::new(DatasetId(0), 800, 800);
    (0..QUERIES)
        .map(|i| {
            let r = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let op = if (r >> 5) & 3 == 0 {
                VmOp::Subsample
            } else {
                VmOp::Average
            };
            let zoom = 2u32;
            let side = 120 + ((r >> 24) % 2) as u32 * 40;
            let max = slide.width.min(slide.height) - side;
            let x = ((r >> 32) as u32 % max) / 80 * 80;
            let y = ((r >> 44) as u32 % max) / 80 * 80;
            VmQuery::new(slide, Rect::new(x, y, side, side), zoom, op)
        })
        .collect()
}

/// Writes the server's event trace under `target/overload/` (uploaded
/// by CI on failure) and returns the path.
fn dump_trace(name: &str, server: &QueryServer) -> String {
    let dir = "target/overload";
    std::fs::create_dir_all(dir).ok();
    let path = format!("{dir}/{name}.json");
    std::fs::write(&path, events_to_json(&server.events())).ok();
    path
}

/// Typed-outcome tally for one run.
#[derive(Default, Debug)]
struct Tally {
    completed: u64,
    failed: u64,
    timed_out: u64,
    rejected: u64,
    shed: u64,
    degraded: u64,
}

/// Submits the whole batch against paused workers (so the admission
/// ladder sees the full offered load), resumes, and waits every handle,
/// checking each `Ok` answer against the reference renderer for the
/// spec that actually ran.
fn run_overloaded(ov: OverloadConfig, fault_rate: f64, name: &str) -> (Tally, QueryServer) {
    let specs = workload();
    let cfg = ServerConfig::small()
        .with_threads(WORKERS)
        .with_start_paused(true)
        .with_overload(ov)
        .with_retry_seed(11);
    let source = Arc::new(FaultInjectingSource::new(
        SyntheticSource::new(),
        FaultConfig::transient(fault_rate, 11),
    ));
    let server = QueryServer::new(cfg, source);
    let handles = server.submit_batch(specs.iter().copied());
    server.resume_workers();

    let mut t = Tally::default();
    for (h, submitted) in handles.into_iter().zip(&specs) {
        match h.wait() {
            Ok(res) => {
                t.completed += 1;
                if res.record.degraded {
                    t.degraded += 1;
                    assert_eq!(
                        res.record.spec.op,
                        VmOp::Subsample,
                        "degradation floor is Subsample"
                    );
                    assert_eq!(submitted.op, VmOp::Average, "only Average degrades");
                }
                // The record's spec is the plan that actually ran —
                // degraded or not, the answer must match its reference.
                let reference = reference_render(&res.record.spec);
                assert_eq!(
                    *res.image,
                    reference.data,
                    "answer diverged from reference (trace: {})",
                    dump_trace(name, &server)
                );
            }
            Err(ServerError::Overloaded { retry_after }) => {
                assert!(retry_after > Duration::ZERO, "retry hint must be usable");
                t.rejected += 1;
            }
            Err(ServerError::Shed { pressure }) => {
                assert!(
                    (0.0..=1.0).contains(&pressure),
                    "shed pressure out of range: {pressure}"
                );
                t.shed += 1;
            }
            Err(ServerError::Timeout { .. }) => t.timed_out += 1,
            Err(ServerError::Io { .. }) => t.failed += 1,
            Err(e) => panic!(
                "unexpected outcome: {e} (trace: {})",
                dump_trace(name, &server)
            ),
        }
    }
    server.drain();
    (t, server)
}

/// Asserts conservation at the handle level and cross-checks every
/// bucket against the metrics registry.
fn assert_conservation(t: &Tally, server: &QueryServer, name: &str) {
    let trace = dump_trace(name, server);
    assert_eq!(
        t.completed + t.failed + t.timed_out + t.rejected + t.shed,
        QUERIES as u64,
        "conservation violated ({t:?}, trace: {trace})"
    );
    let m = server.metrics();
    let counter = |k: &str| m.counters.get(k).copied().unwrap_or(0);
    assert_eq!(counter("vmqs_queries_submitted_total"), QUERIES as u64);
    assert_eq!(counter("vmqs_queries_completed_total"), t.completed);
    assert_eq!(counter("vmqs_queries_failed_total"), t.failed);
    assert_eq!(counter("vmqs_queries_timed_out_total"), t.timed_out);
    assert_eq!(counter("vmqs_queries_rejected_total"), t.rejected);
    assert_eq!(counter("vmqs_queries_shed_total"), t.shed);
    // The degraded counter tallies admission-time decisions, so it also
    // covers degraded queries that were later shed or failed; every
    // degraded *completion* must be within it.
    assert!(counter("vmqs_queries_degraded_total") >= t.degraded);
    server.check_invariants();
}

#[test]
fn overload_smoke_sheds_and_degrades_at_4x_load_with_faults() {
    // Shedding keeps the queue below the hard bound, so this config
    // exercises degrade + shed; 10% transient faults ride along to
    // prove the overload paths coexist with the retry machinery.
    let ov = OverloadConfig::default()
        .with_max_pending(MAX_PENDING)
        .with_degrade_threshold(0.5)
        .with_shed_threshold(0.85);
    let (t, server) = run_overloaded(ov, 0.1, "shed-degrade-faults");
    assert!(
        t.shed > 0,
        "4x load past the shed threshold must shed: {t:?}"
    );
    assert!(t.degraded > 0, "pressure must degrade some Averages: {t:?}");
    assert!(t.completed > 0, "survivors must still complete: {t:?}");
    assert_conservation(&t, &server, "shed-degrade-faults");
    server.shutdown();
}

#[test]
fn overload_smoke_bounded_queue_rejects_at_4x_load() {
    // No thresholds: the bounded queue alone must refuse the excess
    // with a typed, retryable error.
    let ov = OverloadConfig::default().with_max_pending(MAX_PENDING);
    let (t, server) = run_overloaded(ov, 0.0, "reject-only");
    assert!(
        t.rejected >= QUERIES as u64 / 2,
        "4x a hard bound must reject most of the batch: {t:?}"
    );
    assert_eq!(t.shed, 0, "no shed threshold, no shedding: {t:?}");
    assert_eq!(t.degraded, 0, "no degrade threshold, no degradation: {t:?}");
    assert_conservation(&t, &server, "reject-only");
    server.shutdown();
}

#[test]
fn overload_disabled_admits_everything() {
    // The default config must be a no-op: all queries admitted and
    // completed, zero overload counters, even with faults in play.
    let (t, server) = run_overloaded(OverloadConfig::default(), 0.05, "disabled");
    assert_eq!(t.rejected + t.shed + t.degraded, 0, "{t:?}");
    assert_eq!(t.completed + t.failed + t.timed_out, QUERIES as u64);
    assert_conservation(&t, &server, "disabled");
    server.shutdown();
}
