//! Concurrency stress test for the decomposed-lock engine: many client
//! threads race overlapping queries against an 8-worker server, and every
//! answer must be byte-for-byte identical to the single-threaded reference
//! renderer. Also checks Data Store and scheduling-graph accounting
//! invariants after the run — cheap detectors for lost updates between the
//! independently-locked engine components.

use std::sync::Arc;
use vmqs_core::{DatasetId, Rect};
use vmqs_microscope::kernels::reference_render;
use vmqs_microscope::{SlideDataset, VmOp, VmQuery};
use vmqs_server::{QueryServer, ServerConfig};
use vmqs_storage::SyntheticSource;

const CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: usize = 24;

/// Deterministic overlapping workload: two datasets, both ops, regions
/// arranged so neighbouring queries overlap (forcing partial reuse) and
/// some repeat exactly (forcing exact hits). Subsample queries vary zoom
/// (projection picks source pixels, so cross-zoom reuse is exact);
/// Average queries keep one zoom, because projecting averages across zoom
/// levels re-quantizes (documented ±4/channel in the kernel tests) and
/// would break the byte-exact oracle below.
fn workload(client: usize) -> Vec<VmQuery> {
    let slides = [
        SlideDataset::new(DatasetId(0), 900, 900),
        SlideDataset::new(DatasetId(1), 700, 700),
    ];
    (0..QUERIES_PER_CLIENT)
        .map(|i| {
            // A small LCG keeps the workload deterministic but scrambled
            // across clients so interleavings differ run to run.
            let r = (client as u64 * 1_000_003 + i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let slide = slides[(r >> 8) as usize % slides.len()];
            let op = if (r >> 5) & 1 == 0 {
                VmOp::Subsample
            } else {
                VmOp::Average
            };
            let zoom = match op {
                VmOp::Subsample => 1u32 << ((r >> 16) % 3),
                VmOp::Average => 2,
            };
            let side = 120 + ((r >> 24) % 3) as u32 * 40; // 120/160/200
            let max = slide.width.min(slide.height) - side;
            // Snap origins to a coarse grid: repeats become exact hits,
            // neighbours overlap.
            let x = ((r >> 32) as u32 % max) / 80 * 80;
            let y = ((r >> 44) as u32 % max) / 80 * 80;
            VmQuery::new(slide, Rect::new(x, y, side, side), zoom, op)
        })
        .collect()
}

#[test]
fn stress_eight_workers_matches_reference_renderer() {
    let total = CLIENTS * QUERIES_PER_CLIENT;
    let cfg = ServerConfig::small()
        .with_threads(8)
        // Small enough that the run evicts, exercising swap-out edges.
        .with_ds_budget(2 << 20);
    let server = QueryServer::new(cfg, Arc::new(SyntheticSource::new()));

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let server = &server;
            scope.spawn(move || {
                for spec in workload(client) {
                    let res = server.submit(spec).wait().expect("query failed");
                    assert_eq!(
                        *res.image,
                        reference_render(&spec).data,
                        "answer for {spec:?} diverged from the reference renderer"
                    );
                }
            });
        }
    });
    server.drain();

    // Metrics invariant: one record per submitted query.
    let records = server.records();
    assert_eq!(records.len(), total);
    let summary = server.summary();
    assert_eq!(summary.completed, total);
    assert_eq!(
        summary.exact_hits + summary.partial_reuse + summary.full_compute,
        summary.completed,
        "every completed query takes exactly one answer path"
    );

    // Data Store invariant: every query performs exactly one lookup,
    // plus one re-probe whenever the publish epoch moved between its
    // first probe and its compute, and eviction accounting must balance.
    let ds = server.ds_stats();
    let (relookups, converted) = server.relookup_stats();
    assert!(converted <= relookups);
    assert_eq!(
        (ds.exact_hits + ds.partial_hits + ds.misses) as usize,
        total + relookups as usize
    );
    assert!(
        ds.evicted <= ds.committed,
        "cannot evict more than committed"
    );
    assert!(ds.evicted > 0, "workload sized to overflow the DS budget");

    // Scheduling-graph invariant: inserts equal dequeues (nothing lost or
    // double-run between the sched lock and the worker pool).
    let graph = server.graph_stats();
    assert_eq!(graph.inserted as usize, total);
    assert_eq!(graph.dequeued as usize, total);
    assert!(graph.swapped_out <= graph.inserted);

    server.shutdown();
}

#[test]
fn stress_batch_submission_is_lossless() {
    let specs: Vec<VmQuery> = (0..CLIENTS).flat_map(workload).collect();
    let server = QueryServer::new(
        ServerConfig::small().with_threads(8),
        Arc::new(SyntheticSource::new()),
    );
    let handles = server.submit_batch(specs.iter().copied());
    server.drain();
    for (handle, spec) in handles.into_iter().zip(&specs) {
        let res = handle
            .try_wait()
            .expect("drain() must imply every handle is fulfilled")
            .expect("query failed");
        assert_eq!(*res.image, reference_render(spec).data, "query {spec:?}");
    }
    assert_eq!(server.records().len(), specs.len());
    server.shutdown();
}
