//! Fault-injection robustness tests (DESIGN.md §8): the threaded engine
//! under seeded transient faults, permanent page poisoning, and query
//! deadlines. The contract under every fault mix: each submitted query
//! resolves with `Ok` or a typed `Err` (no hangs, no worker panics),
//! successful answers stay byte-identical to the single-threaded
//! reference renderer, and graph/Data-Store accounting balances so a
//! failed query leaks no scheduling state.

use std::sync::Arc;
use std::time::Duration;
use vmqs_core::{DatasetId, Rect};
use vmqs_microscope::kernels::reference_render;
use vmqs_microscope::{SlideDataset, VmOp, VmQuery};
use vmqs_pagespace::RetryPolicy;
use vmqs_server::{QueryServer, ServerConfig, ServerError};
use vmqs_storage::{FaultConfig, FaultInjectingSource, SyntheticSource};

const QUERIES: usize = 48;

/// Deterministic overlapping workload over two slides (same LCG scheme as
/// the stress test): repeats force exact hits, neighbours force partial
/// reuse, and ops/zooms are restricted to combinations the byte-exact
/// reference oracle supports.
fn workload() -> Vec<VmQuery> {
    let slides = [
        SlideDataset::new(DatasetId(0), 800, 800),
        SlideDataset::new(DatasetId(1), 600, 600),
    ];
    (0..QUERIES)
        .map(|i| {
            let r = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let slide = slides[(r >> 8) as usize % slides.len()];
            let op = if (r >> 5) & 1 == 0 {
                VmOp::Subsample
            } else {
                VmOp::Average
            };
            let zoom = match op {
                VmOp::Subsample => 1u32 << ((r >> 16) % 3),
                VmOp::Average => 2,
            };
            let side = 120 + ((r >> 24) % 2) as u32 * 40;
            let max = slide.width.min(slide.height) - side;
            let x = ((r >> 32) as u32 % max) / 80 * 80;
            let y = ((r >> 44) as u32 % max) / 80 * 80;
            VmQuery::new(slide, Rect::new(x, y, side, side), zoom, op)
        })
        .collect()
}

/// Runs the workload against a server with `threads` workers reading
/// through a fault injector at `rate`, and checks the robustness
/// contract. Returns (ok, failed) counts.
fn run_sweep(rate: f64, threads: usize, seed: u64) -> (usize, usize) {
    let specs = workload();
    let cfg = ServerConfig::small()
        .with_threads(threads)
        // Small budget: error paths must coexist with eviction/swap-out.
        .with_ds_budget(2 << 20)
        .with_retry(RetryPolicy::default_io())
        .with_retry_seed(seed);
    // Keep a typed handle to the injector so its own draw counters can be
    // cross-checked against the server's accounting after the run.
    let source = Arc::new(FaultInjectingSource::new(
        SyntheticSource::new(),
        FaultConfig::transient(rate, seed),
    ));
    let server = QueryServer::new(cfg, source.clone());

    let handles = server.submit_batch(specs.iter().copied());
    let (mut ok, mut failed) = (0, 0);
    for (h, spec) in handles.into_iter().zip(&specs) {
        match h.wait() {
            Ok(res) => {
                ok += 1;
                assert_eq!(
                    *res.image,
                    reference_render(spec).data,
                    "fault rate {rate}: surviving answer for {spec:?} diverged"
                );
            }
            Err(e) => {
                failed += 1;
                assert!(!e.is_timeout(), "no deadline configured, got {e}");
            }
        }
    }
    assert_eq!(ok + failed, QUERIES, "every query must resolve");

    // No scheduling state may leak: the graph and DS must balance even
    // when some queries errored out mid-flight.
    server.check_invariants();
    let graph = server.graph_stats();
    assert_eq!(graph.inserted as usize, QUERIES);
    assert_eq!(graph.dequeued as usize, QUERIES);

    let sum = server.summary();
    assert_eq!(sum.completed, ok);
    assert_eq!(sum.failed, failed);
    assert_eq!(sum.timed_out, 0);
    if rate == 0.0 {
        assert_eq!(sum.io_faults, 0, "clean source must inject nothing");
        assert_eq!(failed, 0, "clean source must fail nothing");
    } else if rate >= 0.1 {
        // At low rates a small workload's page set may legitimately draw
        // no fault; at 10% injection must be visible and must exercise
        // the retry path.
        assert!(sum.io_faults > 0, "rate {rate} must inject faults");
        assert!(
            sum.io_retries > 0,
            "rate {rate} must trigger the retry path"
        );
    }

    // The server's fault counters must agree with the injector's own draw
    // log: every injected error is exactly one observed read fault, no
    // more, no less.
    let inj = source.stats();
    assert_eq!(
        sum.io_faults,
        inj.transient + inj.permanent,
        "rate {rate}: server fault count must match the injector's draws"
    );
    assert!(
        sum.io_retries <= sum.io_faults,
        "retries can never exceed observed faults"
    );

    // And the metrics registry must mirror the same counters.
    let metrics = server.metrics();
    assert_eq!(
        metrics.counters["vmqs_ps_read_faults_total"], sum.io_faults,
        "metrics registry must mirror io_faults"
    );
    assert_eq!(
        metrics.counters["vmqs_ps_read_retries_total"], sum.io_retries,
        "metrics registry must mirror io_retries"
    );

    // shutdown() panics if any worker thread panicked during the run.
    server.shutdown();
    (ok, failed)
}

#[test]
fn fault_sweep_transient_rates_and_worker_counts() {
    for &threads in &[1usize, 8] {
        for &rate in &[0.0f64, 0.01, 0.10] {
            run_sweep(rate, threads, 0xFA_u64 + threads as u64);
        }
    }
}

#[test]
fn ten_percent_faults_mostly_recover_via_retries() {
    // With 4 retries, a query only fails on a 5-long streak of transient
    // draws (~1e-5 per page at 10%), so the sweep's acceptance bar —
    // "all queries complete" — should be met by recovery, not mass
    // failure. Assert most queries survive at 8 workers.
    let (ok, failed) = run_sweep(0.10, 8, 0xBEEF);
    assert!(
        ok >= QUERIES * 9 / 10,
        "10% transient faults should mostly recover: {ok} ok / {failed} failed"
    );
}

#[test]
fn fault_failures_are_deterministic_per_seed() {
    // Which queries fail depends only on the seed (attempt numbering is
    // shared per page), so single-threaded runs replay exactly.
    let no_retry = |seed: u64| -> Vec<bool> {
        let specs = workload();
        let cfg = ServerConfig::small()
            .with_threads(1)
            .with_retry(RetryPolicy::none())
            .with_retry_seed(seed);
        let source =
            FaultInjectingSource::new(SyntheticSource::new(), FaultConfig::transient(0.25, seed));
        let server = QueryServer::new(cfg, Arc::new(source));
        let outcomes = specs
            .iter()
            .map(|q| server.submit(*q).wait().is_err())
            .collect();
        server.shutdown();
        outcomes
    };
    assert_eq!(no_retry(7), no_retry(7), "same seed must replay");
    assert!(
        no_retry(7).iter().any(|&e| e),
        "25% faults with no retries must fail something"
    );
}

#[test]
fn poisoned_pages_fail_their_query_and_spare_peers() {
    // Find a slide region with a permanently poisoned page and one with
    // none, using the pure predicate the injector itself consults.
    let slide = SlideDataset::new(DatasetId(0), 800, 800);
    let fault = FaultConfig::none().with_permanent(0.05);
    let fault = FaultConfig { seed: 17, ..fault };
    let regions: Vec<Rect> = (0..8)
        .flat_map(|gy| (0..8).map(move |gx| Rect::new(gx * 100, gy * 100, 100, 100)))
        .collect();
    let poisoned_region = regions
        .iter()
        .find(|r| {
            slide
                .chunks_intersecting(r)
                .iter()
                .any(|&p| fault.page_is_poisoned(slide.id, p))
        })
        .copied()
        .expect("5% poisoning over 64 regions must hit one");
    let clean_region = regions
        .iter()
        .find(|r| {
            slide
                .chunks_intersecting(r)
                .iter()
                .all(|&p| !fault.page_is_poisoned(slide.id, p))
        })
        .copied()
        .expect("5% poisoning over 64 regions must miss one");

    let source = FaultInjectingSource::new(SyntheticSource::new(), fault);
    let server = QueryServer::new(ServerConfig::small().with_threads(2), Arc::new(source));

    let bad = VmQuery::new(slide, poisoned_region, 1, VmOp::Subsample);
    let err = server
        .submit(bad)
        .wait()
        .expect_err("poisoned page must fail");
    match err {
        ServerError::Io { transient, .. } => {
            assert!(!transient, "permanent faults must not read as retryable")
        }
        other => panic!("expected Io error, got {other}"),
    }

    // The failure must not have wedged the engine: a clean peer query on
    // the same dataset still answers exactly.
    let good = VmQuery::new(slide, clean_region, 1, VmOp::Subsample);
    let res = server
        .submit(good)
        .wait()
        .expect("clean region must succeed");
    assert_eq!(*res.image, reference_render(&good).data);

    server.check_invariants();
    let sum = server.summary();
    assert_eq!((sum.completed, sum.failed), (1, 1));
    assert!(sum.failed_reads > 0, "the failed read must be counted");
    server.shutdown();
}

#[test]
fn zero_deadline_times_out_everything_without_leaking() {
    let specs = workload();
    let cfg = ServerConfig::small()
        .with_threads(4)
        .with_query_timeout(Some(Duration::ZERO));
    let server = QueryServer::new(cfg, Arc::new(SyntheticSource::new()));
    for h in server.submit_batch(specs.iter().copied()) {
        let e = h.wait().expect_err("zero deadline must cancel");
        assert!(e.is_timeout(), "expected timeout, got {e}");
    }
    server.check_invariants();
    let sum = server.summary();
    assert_eq!(sum.timed_out, QUERIES);
    assert_eq!((sum.completed, sum.failed), (0, 0));
    let graph = server.graph_stats();
    assert_eq!(
        graph.inserted, graph.dequeued,
        "cancelled queries must still be dequeued"
    );
    server.shutdown();
}

#[test]
fn generous_deadline_never_fires() {
    let specs = workload();
    let cfg = ServerConfig::small()
        .with_threads(4)
        .with_query_timeout(Some(Duration::from_secs(300)));
    let server = QueryServer::new(cfg, Arc::new(SyntheticSource::new()));
    for (h, spec) in server
        .submit_batch(specs.iter().copied())
        .into_iter()
        .zip(&specs)
    {
        let res = h.wait().expect("generous deadline must not fire");
        assert_eq!(*res.image, reference_render(spec).data);
    }
    assert_eq!(server.summary().timed_out, 0);
    server.shutdown();
}

#[test]
fn faults_and_timeouts_compose() {
    // Transient faults under a deadline long enough for most queries but
    // a real ceiling: every query must still resolve one way or the
    // other, and the engine must stay consistent.
    let specs = workload();
    let cfg = ServerConfig::small()
        .with_threads(8)
        .with_retry(RetryPolicy::default_io())
        .with_query_timeout(Some(Duration::from_secs(10)));
    let source =
        FaultInjectingSource::new(SyntheticSource::new(), FaultConfig::transient(0.10, 0xC0));
    let server = QueryServer::new(cfg, Arc::new(source));
    let mut resolved = 0;
    for (h, spec) in server
        .submit_batch(specs.iter().copied())
        .into_iter()
        .zip(&specs)
    {
        if let Ok(res) = h.wait() {
            assert_eq!(*res.image, reference_render(spec).data);
        }
        resolved += 1;
    }
    assert_eq!(resolved, QUERIES);
    server.check_invariants();
    let sum = server.summary();
    assert_eq!(sum.completed + sum.failed + sum.timed_out, QUERIES);
    server.shutdown();
}

/// Unique per-process temp directory for the tier-2 spill store (the
/// determinism lints ban wall-clock naming schemes).
fn spill_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("vmqs-faults-{}-{tag}-{n}", std::process::id()))
}

/// Tier-2 poison sweep (DESIGN.md §14): a tight tier-1 budget demotes
/// warm results to the spill store, the workload is replayed so the
/// repeats try to re-heat them, and a fraction of tier-2 frame reads is
/// permanently poisoned. The contract: a poisoned restore falls back to
/// recomputation through the typed-error path — no query ever *fails*
/// because tier 2 lied, answers stay byte-exact, and the engine's
/// accounting balances at full worker parallelism.
fn run_tier2_poison_sweep(rate: f64, threads: usize, seed: u64) {
    let specs = workload();
    let dir = spill_dir("sweep");
    let fault = FaultConfig {
        seed,
        ..FaultConfig::none().with_permanent(rate)
    };
    let cfg = ServerConfig::small()
        .with_threads(threads)
        // Tier 1 far smaller than the working set, tier 2 roomy: victims
        // spill instead of dropping, and spilled frames survive until the
        // replay pass asks for them back.
        .with_ds_budget(128 << 10)
        .with_cache_policy(vmqs_datastore::EvictionPolicy::CostBased)
        .with_spill_dir(Some(dir.clone()))
        .with_tier2_budget(4 << 20)
        .with_spill_faults(fault);
    let server = QueryServer::new(cfg, Arc::new(SyntheticSource::new()));
    for pass in 0..2 {
        for (h, spec) in server
            .submit_batch(specs.iter().copied())
            .into_iter()
            .zip(&specs)
        {
            let res = h.wait().unwrap_or_else(|e| {
                panic!("rate {rate} pass {pass}: a poisoned tier-2 frame must recompute, got {e}")
            });
            assert_eq!(
                *res.image,
                reference_render(spec).data,
                "rate {rate} pass {pass}: answer for {spec:?} diverged"
            );
        }
    }
    server.check_invariants();
    let sum = server.summary();
    assert_eq!(
        sum.completed,
        2 * QUERIES,
        "rate {rate}: every query completes"
    );
    assert_eq!(
        sum.failed, 0,
        "rate {rate}: tier-2 faults must never fail a query"
    );
    assert!(
        sum.spilled >= 1,
        "rate {rate}: pressure must demote entries to tier 2"
    );
    if rate == 0.0 {
        assert_eq!(sum.restore_failures, 0, "clean tier 2 must not fail reads");
        assert!(
            sum.restored >= 1,
            "replayed repeats must re-heat at least one spilled entry"
        );
    }
    if rate >= 1.0 {
        assert_eq!(
            sum.restored, 0,
            "every tier-2 read poisoned: nothing can restore"
        );
        assert!(
            sum.restore_failures >= 1,
            "the replay pass must hit a poisoned frame"
        );
    }
    // shutdown() panics if any worker thread panicked during the run.
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn tier2_poison_sweep_falls_back_to_recompute() {
    for &rate in &[0.0f64, 0.5, 1.0] {
        run_tier2_poison_sweep(rate, 8, 0x7E2 + (rate * 8.0) as u64);
    }
}
