//! The tier-2 spill store backing the Data Store's RESTORABLE phase
//! (DESIGN.md §14) with crash-consistent frames (DESIGN.md §15).
//!
//! Warm cache entries evicted from memory serialize here in a compact
//! framed format instead of being dropped; a later exact-match lookup
//! re-heats them at disk cost rather than recompute cost. The v2 format
//! is deliberately dumb — magic, version, a metadata block (the
//! application-encoded predicate, so a cold restart can rebuild the Data
//! Store index), the payload, and a CRC32 trailer over everything before
//! it. Frames are written to a `.tmp` sibling and renamed into place, so
//! a crash mid-write can never leave a half-frame under the `.spill`
//! name: either the rename happened and the frame validates, or it did
//! not and [`SpillStore::recover`] sweeps the torn `.tmp` away.
//!
//! Fault injection reuses the crate's seeded [`FaultConfig`] draws keyed
//! on the reserved [`SPILL_DEVICE`] dataset and the blob id, so tests can
//! predict exactly which tier-2 reads are poisoned without issuing them —
//! the same pure-function contract the page-read injector honors. Chaos
//! injection ([`ChaosConfig`]) adds process-level failures: a kill-point
//! that dies mid-write (torn `.tmp`, no rename) and a bit flip applied
//! after the CRC was computed (an intact-looking frame the trailer
//! rejects into the recompute fallback).

use crate::chaos::ChaosConfig;
use crate::fault::FaultConfig;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use vmqs_core::{BlobId, DatasetId};

/// The reserved dataset key under which tier-2 read faults are drawn:
/// `FaultConfig::page_is_poisoned(SPILL_DEVICE, blob.raw())` decides
/// whether a spill read is permanently unreadable. Real page datasets are
/// small consecutive ids, so the reserved key cannot collide.
pub const SPILL_DEVICE: DatasetId = DatasetId(u64::MAX);

/// File magic: identifies a spill frame (and guards against reading a
/// foreign file dropped into the spill directory).
const MAGIC: [u8; 4] = *b"VMQS";
/// Frame format version. v2 added the metadata block and moved integrity
/// from an FNV header field to a whole-frame CRC32 trailer; v1 frames
/// are rejected (and swept by recovery) rather than migrated — spill
/// frames are a cache, recomputing is always safe.
const VERSION: u8 = 2;
/// Frame header: magic + version + 3 pad bytes + meta length u64 +
/// payload length u64. The CRC32 trailer lives at the end of the frame.
const HEADER_LEN: usize = 4 + 1 + 3 + 8 + 8;
/// CRC32 trailer bytes.
const TRAILER_LEN: usize = 4;

/// Monotone counters for spill-store traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Frames written (renamed into place).
    pub writes: u64,
    /// Payload bytes written.
    pub bytes_written: u64,
    /// Frames read back successfully.
    pub reads: u64,
    /// Payload bytes read back.
    pub bytes_read: u64,
    /// Reads that failed (injected poison, missing file, corrupt frame).
    pub read_failures: u64,
    /// Frames removed.
    pub removes: u64,
    /// Writes that died at the chaos kill-point, leaving a torn `.tmp`.
    pub torn_writes: u64,
    /// Frames corrupted by an injected bit flip after their CRC.
    pub bit_flips: u64,
}

/// CRC32 (IEEE 802.3, the zlib polynomial), hand-rolled over a const
/// table — the workspace vendors no checksum crate, and 4 bytes of
/// trailer catch torn writes, truncation, and single-bit rot alike.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 over `bytes` (init and final XOR `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFF_u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One frame [`SpillStore::recover`] found intact: the blob id (from the
/// file name), the application-encoded predicate metadata, and the
/// payload size. The payload itself stays on disk — the restore path
/// re-reads it on demand, exactly like a frame spilled this run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveredFrame {
    /// The blob id the frame was written under.
    pub blob: BlobId,
    /// The metadata block (an application-encoded predicate).
    pub meta: Vec<u8>,
    /// Payload bytes held by the frame.
    pub size: u64,
}

/// What a startup [`SpillStore::recover`] scan found and did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Frames that validated end-to-end (magic, version, lengths, CRC)
    /// and can be fed back to the Data Store as RESTORABLE entries.
    pub restorable: Vec<RecoveredFrame>,
    /// Torn or corrupt `.spill` frames deleted (bad magic, wrong version,
    /// short file, CRC mismatch, unparsable blob id).
    pub removed_torn: u64,
    /// Stale `.tmp` files deleted (writes that never reached the rename).
    pub removed_tmp: u64,
}

impl RecoveryReport {
    /// Total payload bytes across the restorable frames — the tier-2
    /// byte accounting a cold start charges back to the Data Store.
    pub fn bytes_restorable(&self) -> u64 {
        self.restorable.iter().map(|f| f.size).sum()
    }
}

/// An on-disk tier-2 store for spilled Data Store entries.
///
/// One file per blob under the configured directory. The threaded engine
/// calls [`SpillStore::write`] inside the same critical section that
/// demoted the entry (so a RESTORABLE entry always has an on-disk copy)
/// and [`SpillStore::read`] under the same exclusivity before promoting
/// it back. All methods take `&self`; the store itself keeps no mutable
/// state beyond atomic counters, and relies on the caller for exclusion
/// per blob.
#[derive(Debug)]
pub struct SpillStore {
    dir: PathBuf,
    fault: FaultConfig,
    chaos: ChaosConfig,
    /// Global write ordinal: the coordinate chaos kill-points key on.
    write_seq: std::sync::atomic::AtomicU64,
    /// Latched by the crash kill-point. A crashed store mutates nothing
    /// further — writes fail and removes are no-ops — modeling a process
    /// that died mid-spill and never ran its in-process cleanup; the torn
    /// `.tmp` must wait for the next startup's [`SpillStore::recover`].
    crashed: std::sync::atomic::AtomicBool,
    writes: std::sync::atomic::AtomicU64,
    bytes_written: std::sync::atomic::AtomicU64,
    reads: std::sync::atomic::AtomicU64,
    bytes_read: std::sync::atomic::AtomicU64,
    read_failures: std::sync::atomic::AtomicU64,
    removes: std::sync::atomic::AtomicU64,
    torn_writes: std::sync::atomic::AtomicU64,
    bit_flips: std::sync::atomic::AtomicU64,
}

impl SpillStore {
    /// Opens (creating if needed) a spill store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SpillStore {
            dir,
            fault: FaultConfig::none(),
            chaos: ChaosConfig::none(),
            write_seq: Default::default(),
            crashed: Default::default(),
            writes: Default::default(),
            bytes_written: Default::default(),
            reads: Default::default(),
            bytes_read: Default::default(),
            read_failures: Default::default(),
            removes: Default::default(),
            torn_writes: Default::default(),
            bit_flips: Default::default(),
        })
    }

    /// Builder: injects seeded faults into tier-2 reads (permanent faults
    /// drawn on [`SPILL_DEVICE`] × blob id; transient/latency knobs are
    /// ignored here — the restore path has no retry loop, a failed
    /// restore falls back to recomputation).
    pub fn with_faults(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Builder: arms the chaos kill-points on [`SpillStore::write`]
    /// (crash-mid-spill, post-CRC bit flip). Poison-query and
    /// panic-at-compute knobs are consumed by the engines, not here.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }

    /// The directory frames live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> SpillStats {
        use std::sync::atomic::Ordering::Relaxed;
        SpillStats {
            writes: self.writes.load(Relaxed),
            bytes_written: self.bytes_written.load(Relaxed),
            reads: self.reads.load(Relaxed),
            bytes_read: self.bytes_read.load(Relaxed),
            read_failures: self.read_failures.load(Relaxed),
            removes: self.removes.load(Relaxed),
            torn_writes: self.torn_writes.load(Relaxed),
            bit_flips: self.bit_flips.load(Relaxed),
        }
    }

    /// True when a tier-2 read of `blob` would fail with injected poison
    /// — a pure function of the fault seed, so tests and the simulator
    /// can predict restore failures without touching disk.
    pub fn blob_is_poisoned(&self, blob: BlobId) -> bool {
        self.fault.page_is_poisoned(SPILL_DEVICE, blob.raw())
    }

    fn path_of(&self, blob: BlobId) -> PathBuf {
        self.dir.join(format!("blob-{}.spill", blob.raw()))
    }

    fn tmp_path_of(&self, blob: BlobId) -> PathBuf {
        self.dir.join(format!("blob-{}.tmp", blob.raw()))
    }

    /// Serializes `meta` (the application-encoded predicate) and
    /// `payload` as the v2 frame for `blob`, overwriting any previous
    /// frame. Atomic: the frame is staged as a `.tmp` sibling and renamed
    /// into place, so a crash between the two leaves the old frame (or no
    /// frame) — never a torn one — under the `.spill` name.
    pub fn write(&self, blob: BlobId, meta: &[u8], payload: &[u8]) -> io::Result<()> {
        use std::sync::atomic::Ordering::Relaxed;
        if self.crashed.load(Relaxed) {
            return Err(io::Error::other(
                "spill store crashed at a chaos kill-point",
            ));
        }
        let ordinal = self.write_seq.fetch_add(1, Relaxed);
        let mut frame = Vec::with_capacity(HEADER_LEN + meta.len() + payload.len() + TRAILER_LEN);
        frame.extend_from_slice(&MAGIC);
        frame.push(VERSION);
        frame.extend_from_slice(&[0u8; 3]);
        frame.extend_from_slice(&(meta.len() as u64).to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        frame.extend_from_slice(meta);
        frame.extend_from_slice(payload);
        let crc = crc32(&frame);
        frame.extend_from_slice(&crc.to_le_bytes());
        if self.chaos.bit_flip_frame == Some(ordinal) {
            // Corrupt one payload byte *after* the CRC was computed: the
            // frame lands on disk looking complete, and only the trailer
            // check at read/recovery time can reject it.
            let at = HEADER_LEN + meta.len() + payload.len() / 2;
            if at < frame.len() - TRAILER_LEN {
                frame[at] ^= 0x01;
                self.bit_flips.fetch_add(1, Relaxed);
            }
        }
        let tmp = self.tmp_path_of(blob);
        if self.chaos.crash_spill_write == Some(ordinal) {
            // Kill-point: the process "dies" after flushing only half the
            // staged bytes. No rename happens, so the `.spill` namespace
            // is untouched; the torn `.tmp` waits for recovery hygiene.
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&frame[..frame.len() / 2])?;
            self.torn_writes.fetch_add(1, Relaxed);
            self.crashed.store(true, Relaxed);
            return Err(io::Error::other(format!(
                "injected crash mid-spill-write for {blob} (ordinal {ordinal})"
            )));
        }
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&frame)?;
        drop(f);
        fs::rename(&tmp, self.path_of(blob))?;
        self.writes.fetch_add(1, Relaxed);
        self.bytes_written.fetch_add(payload.len() as u64, Relaxed);
        Ok(())
    }

    /// Validates a whole raw frame: magic, version, lengths, CRC trailer.
    /// Returns `(meta, payload)` slices on success.
    fn validate(bytes: &[u8]) -> Result<(&[u8], &[u8]), String> {
        if bytes.len() < HEADER_LEN + TRAILER_LEN {
            return Err(format!("short frame ({} bytes)", bytes.len()));
        }
        if bytes[..4] != MAGIC {
            return Err("bad spill magic".into());
        }
        if bytes[4] != VERSION {
            return Err(format!("unsupported spill frame version {}", bytes[4]));
        }
        let meta_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
        let payload_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")) as usize;
        let want_len = HEADER_LEN
            .checked_add(meta_len)
            .and_then(|n| n.checked_add(payload_len))
            .and_then(|n| n.checked_add(TRAILER_LEN));
        if want_len != Some(bytes.len()) {
            return Err(format!(
                "frame length mismatch ({} bytes, header claims {meta_len}+{payload_len})",
                bytes.len()
            ));
        }
        let body = &bytes[..bytes.len() - TRAILER_LEN];
        let want = u32::from_le_bytes(
            bytes[bytes.len() - TRAILER_LEN..]
                .try_into()
                .expect("4 bytes"),
        );
        if crc32(body) != want {
            return Err("spill CRC mismatch".into());
        }
        Ok((
            &bytes[HEADER_LEN..HEADER_LEN + meta_len],
            &bytes[HEADER_LEN + meta_len..HEADER_LEN + meta_len + payload_len],
        ))
    }

    /// Reads back the payload for `blob`, validating magic, version,
    /// lengths and the CRC trailer. Fails with `InvalidData` on injected
    /// poison or a corrupt frame — both non-transient, so the caller
    /// drops the entry and recomputes. A torn frame can never validate:
    /// the CRC covers the header, metadata, and payload alike.
    pub fn read(&self, blob: BlobId) -> io::Result<Vec<u8>> {
        use std::sync::atomic::Ordering::Relaxed;
        let fail = |msg: String| -> io::Error { io::Error::new(io::ErrorKind::InvalidData, msg) };
        if self.blob_is_poisoned(blob) {
            self.read_failures.fetch_add(1, Relaxed);
            return Err(fail(format!("injected permanent fault: spill read {blob}")));
        }
        let inner = (|| -> io::Result<Vec<u8>> {
            let mut f = fs::File::open(self.path_of(blob))?;
            let mut bytes = Vec::new();
            f.read_to_end(&mut bytes)?;
            let (_, payload) =
                Self::validate(&bytes).map_err(|m| fail(format!("{m} for {blob}")))?;
            Ok(payload.to_vec())
        })();
        match &inner {
            Ok(p) => {
                self.reads.fetch_add(1, Relaxed);
                self.bytes_read.fetch_add(p.len() as u64, Relaxed);
            }
            Err(_) => {
                self.read_failures.fetch_add(1, Relaxed);
            }
        }
        inner
    }

    /// Startup scan (DESIGN.md §15): walks the spill directory, validates
    /// every `.spill` frame end-to-end, deletes torn/corrupt frames and
    /// stale `.tmp` files, and returns the intact frames so the caller
    /// can rebuild tier-2 byte accounting and feed the entries back to
    /// the Data Store as RESTORABLE. Frames are reported in ascending
    /// blob order so adoption is deterministic. Idempotent: a second scan
    /// over an untouched directory reports the same restorable set and
    /// removes nothing.
    pub fn recover(&self) -> io::Result<RecoveryReport> {
        let mut report = RecoveryReport::default();
        for entry in fs::read_dir(&self.dir)? {
            let p = entry?.path();
            let ext = p.extension().and_then(|e| e.to_str());
            match ext {
                Some("tmp") => {
                    // A write that never reached its rename: by
                    // construction nothing references it.
                    fs::remove_file(&p)?;
                    report.removed_tmp += 1;
                }
                Some("spill") => {
                    let blob = p
                        .file_stem()
                        .and_then(|s| s.to_str())
                        .and_then(|s| s.strip_prefix("blob-"))
                        .and_then(|s| s.parse::<u64>().ok())
                        .map(BlobId);
                    let frame = match blob {
                        Some(blob) => fs::read(&p)
                            .ok()
                            .and_then(|bytes| {
                                Self::validate(&bytes)
                                    .ok()
                                    .map(|(meta, payload)| (meta.to_vec(), payload.len() as u64))
                            })
                            .map(|(meta, size)| RecoveredFrame { blob, meta, size }),
                        // An unparsable name is an orphan: no Data Store
                        // entry could ever reference it.
                        None => None,
                    };
                    match frame {
                        Some(f) => report.restorable.push(f),
                        None => {
                            fs::remove_file(&p)?;
                            report.removed_torn += 1;
                        }
                    }
                }
                // Foreign files (no extension match) are left alone: the
                // directory may be a shared tmpdir.
                _ => {}
            }
        }
        report.restorable.sort_by_key(|f| f.blob.raw());
        Ok(report)
    }

    /// Deletes the frame for `blob`, and any stale `.tmp` sibling a
    /// crashed write left behind. Missing frames are not an error (the
    /// drop may race a cancelled spill that never wrote one).
    pub fn remove(&self, blob: BlobId) -> io::Result<()> {
        use std::sync::atomic::Ordering::Relaxed;
        if self.crashed.load(Relaxed) {
            // A crashed store leaves the directory untouched; recovery
            // on the next startup owns the cleanup.
            return Ok(());
        }
        match fs::remove_file(self.tmp_path_of(blob)) {
            Ok(()) | Err(_) => {}
        }
        match fs::remove_file(self.path_of(blob)) {
            Ok(()) => {
                self.removes.fetch_add(1, Relaxed);
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Number of frames currently on disk.
    pub fn len(&self) -> io::Result<usize> {
        Ok(self.frame_paths()?.len())
    }

    /// True when no frames are on disk.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Removes every frame and stale `.tmp` (end-of-run hygiene; the
    /// directory itself stays, it may be a shared tmpdir).
    pub fn clear(&self) -> io::Result<()> {
        for entry in fs::read_dir(&self.dir)? {
            let p = entry?.path();
            if p.extension().is_some_and(|e| e == "spill" || e == "tmp") {
                fs::remove_file(p)?;
            }
        }
        Ok(())
    }

    fn frame_paths(&self) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let p = entry?.path();
            if p.extension().is_some_and(|e| e == "spill") {
                out.push(p);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique per-test directory without wall-clock or RNG (banned by the
    /// workspace lints): process id + an atomic counter.
    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("vmqs-spill-{}-{tag}-{n}", std::process::id()))
    }

    fn cleanup(store: &SpillStore) {
        store.clear().unwrap();
        let _ = fs::remove_dir(store.dir());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 check values (zlib polynomial).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn roundtrip_preserves_bytes() {
        let s = SpillStore::new(tmpdir("roundtrip")).unwrap();
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        s.write(BlobId(7), b"meta!", &payload).unwrap();
        assert_eq!(s.read(BlobId(7)).unwrap(), payload);
        let st = s.stats();
        assert_eq!((st.writes, st.reads, st.read_failures), (1, 1, 0));
        assert_eq!(st.bytes_written, 4096);
        assert_eq!(st.bytes_read, 4096);
        cleanup(&s);
    }

    #[test]
    fn empty_payload_and_meta_roundtrip() {
        let s = SpillStore::new(tmpdir("empty")).unwrap();
        s.write(BlobId(0), &[], &[]).unwrap();
        assert_eq!(s.read(BlobId(0)).unwrap(), Vec::<u8>::new());
        let rec = s.recover().unwrap();
        assert_eq!(rec.restorable.len(), 1);
        assert!(rec.restorable[0].meta.is_empty());
        cleanup(&s);
    }

    #[test]
    fn successful_write_leaves_no_tmp() {
        let s = SpillStore::new(tmpdir("atomic")).unwrap();
        s.write(BlobId(1), b"m", &[3u8; 64]).unwrap();
        let names: Vec<String> = fs::read_dir(s.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["blob-1.spill".to_string()]);
        cleanup(&s);
    }

    #[test]
    fn missing_frame_fails_read() {
        let s = SpillStore::new(tmpdir("missing")).unwrap();
        assert!(s.read(BlobId(1)).is_err());
        assert_eq!(s.stats().read_failures, 1);
        cleanup(&s);
    }

    #[test]
    fn corrupt_frame_fails_crc() {
        let s = SpillStore::new(tmpdir("corrupt")).unwrap();
        s.write(BlobId(3), b"spec", &[1, 2, 3, 4, 5, 6, 7, 8])
            .unwrap();
        // Flip one payload byte on disk (not in the trailer).
        let p = s.dir().join("blob-3.spill");
        let mut bytes = fs::read(&p).unwrap();
        let mid = HEADER_LEN + 2;
        bytes[mid] ^= 0xFF;
        fs::write(&p, bytes).unwrap();
        let e = s.read(BlobId(3)).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("CRC"));
        cleanup(&s);
    }

    #[test]
    fn truncated_frame_fails_read() {
        let s = SpillStore::new(tmpdir("truncated")).unwrap();
        s.write(BlobId(4), b"", &[9u8; 100]).unwrap();
        let p = s.dir().join("blob-4.spill");
        let bytes = fs::read(&p).unwrap();
        fs::write(&p, &bytes[..bytes.len() / 2]).unwrap();
        assert!(s.read(BlobId(4)).is_err());
        cleanup(&s);
    }

    #[test]
    fn foreign_file_rejected_by_magic() {
        let s = SpillStore::new(tmpdir("magic")).unwrap();
        fs::write(
            s.dir().join("blob-5.spill"),
            b"definitely not a spill frame, but long enough to parse",
        )
        .unwrap();
        let e = s.read(BlobId(5)).unwrap_err();
        assert!(e.to_string().contains("magic"));
        cleanup(&s);
    }

    #[test]
    fn v1_frame_rejected_by_version() {
        let s = SpillStore::new(tmpdir("v1")).unwrap();
        // A hand-built v1-style frame: old header layout, no trailer.
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.push(1);
        frame.extend_from_slice(&[0u8; 3]);
        frame.extend_from_slice(&8u64.to_le_bytes());
        frame.extend_from_slice(&0u64.to_le_bytes());
        frame.extend_from_slice(&[7u8; 8]);
        fs::write(s.dir().join("blob-6.spill"), frame).unwrap();
        let e = s.read(BlobId(6)).unwrap_err();
        assert!(e.to_string().contains("version"));
        // Recovery sweeps it rather than adopting it.
        let rec = s.recover().unwrap();
        assert!(rec.restorable.is_empty());
        assert_eq!(rec.removed_torn, 1);
        assert!(s.is_empty().unwrap());
        cleanup(&s);
    }

    #[test]
    fn remove_and_clear_leave_no_frames() {
        let s = SpillStore::new(tmpdir("hygiene")).unwrap();
        for i in 0..5u64 {
            s.write(BlobId(i), b"", &[i as u8; 16]).unwrap();
        }
        assert_eq!(s.len().unwrap(), 5);
        s.remove(BlobId(2)).unwrap();
        s.remove(BlobId(2)).unwrap(); // double-remove is a no-op
        assert_eq!(s.len().unwrap(), 4);
        s.clear().unwrap();
        assert!(s.is_empty().unwrap());
        assert_eq!(s.stats().removes, 1);
        cleanup(&s);
    }

    #[test]
    fn poisoned_read_fails_deterministically() {
        let cfg = FaultConfig {
            seed: 42,
            ..FaultConfig::none().with_permanent(0.3)
        };
        let s = SpillStore::new(tmpdir("poison")).unwrap().with_faults(cfg);
        let mut poisoned = 0;
        for i in 0..50u64 {
            s.write(BlobId(i), b"", &[i as u8; 8]).unwrap();
            if s.blob_is_poisoned(BlobId(i)) {
                poisoned += 1;
                let e = s.read(BlobId(i)).unwrap_err();
                assert_eq!(e.kind(), io::ErrorKind::InvalidData);
            } else {
                assert!(s.read(BlobId(i)).is_ok());
            }
        }
        assert!((3..30).contains(&poisoned), "poisoned {poisoned}/50");
        // Pure function: the prediction never disagrees with the read.
        assert_eq!(
            cfg.page_is_poisoned(SPILL_DEVICE, 7),
            s.blob_is_poisoned(BlobId(7))
        );
        cleanup(&s);
    }

    #[test]
    fn overwrite_replaces_frame() {
        let s = SpillStore::new(tmpdir("overwrite")).unwrap();
        s.write(BlobId(9), b"a", &[1u8; 64]).unwrap();
        s.write(BlobId(9), b"b", &[2u8; 32]).unwrap();
        assert_eq!(s.read(BlobId(9)).unwrap(), vec![2u8; 32]);
        assert_eq!(s.len().unwrap(), 1);
        cleanup(&s);
    }

    #[test]
    fn crash_mid_spill_leaves_torn_tmp_and_recovery_sweeps_it() {
        let s = SpillStore::new(tmpdir("crash"))
            .unwrap()
            .with_chaos(ChaosConfig::none().with_crash_spill_write(Some(1)));
        s.write(BlobId(0), b"spec0", &[1u8; 128]).unwrap();
        // Write ordinal 1 dies at the kill-point.
        let e = s.write(BlobId(1), b"spec1", &[2u8; 128]).unwrap_err();
        assert!(e.to_string().contains("crash mid-spill"));
        assert_eq!(s.stats().torn_writes, 1);
        // The .spill namespace never saw the torn frame.
        assert_eq!(s.len().unwrap(), 1);
        assert!(s.dir().join("blob-1.tmp").exists());
        assert!(s.read(BlobId(1)).is_err());
        // The crashed store is dead: later writes fail, and removes no
        // longer touch the directory (a dead process cleans nothing up).
        assert!(s.write(BlobId(2), b"spec2", &[3u8; 64]).is_err());
        s.remove(BlobId(1)).unwrap();
        assert!(s.dir().join("blob-1.tmp").exists());
        // Recovery: the intact frame survives, the torn tmp is deleted,
        // and byte accounting covers exactly the survivors.
        let rec = s.recover().unwrap();
        assert_eq!(rec.removed_tmp, 1);
        assert_eq!(rec.removed_torn, 0);
        assert_eq!(rec.restorable.len(), 1);
        assert_eq!(rec.restorable[0].blob, BlobId(0));
        assert_eq!(rec.restorable[0].meta, b"spec0");
        assert_eq!(rec.bytes_restorable(), 128);
        assert!(!s.dir().join("blob-1.tmp").exists());
        // Idempotent: a second scan finds the same state, removes nothing.
        let rec2 = s.recover().unwrap();
        assert_eq!((rec2.removed_tmp, rec2.removed_torn), (0, 0));
        assert_eq!(rec2.restorable, rec.restorable);
        cleanup(&s);
    }

    #[test]
    fn bit_flipped_frame_fails_read_and_recovery_deletes_it() {
        let s = SpillStore::new(tmpdir("bitflip"))
            .unwrap()
            .with_chaos(ChaosConfig::none().with_bit_flip_frame(Some(0)));
        // The flip happens after the CRC: the write itself "succeeds".
        s.write(BlobId(8), b"spec", &[5u8; 256]).unwrap();
        assert_eq!(s.stats().bit_flips, 1);
        let e = s.read(BlobId(8)).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("CRC"));
        let rec = s.recover().unwrap();
        assert!(rec.restorable.is_empty());
        assert_eq!(rec.removed_torn, 1);
        assert!(s.is_empty().unwrap(), "no torn frame survives recovery");
        cleanup(&s);
    }

    #[test]
    fn recovery_reports_frames_in_blob_order_with_meta() {
        let s = SpillStore::new(tmpdir("recover-order")).unwrap();
        for i in [5u64, 1, 9] {
            s.write(BlobId(i), format!("spec-{i}").as_bytes(), &[i as u8; 32])
                .unwrap();
        }
        // An orphan with an unparsable name is swept too.
        fs::write(s.dir().join("blob-xyz.spill"), b"junk").unwrap();
        let rec = s.recover().unwrap();
        assert_eq!(
            rec.restorable.iter().map(|f| f.blob).collect::<Vec<_>>(),
            vec![BlobId(1), BlobId(5), BlobId(9)]
        );
        assert_eq!(rec.restorable[1].meta, b"spec-5");
        assert_eq!(rec.bytes_restorable(), 96);
        assert_eq!(rec.removed_torn, 1);
        cleanup(&s);
    }

    #[test]
    fn recovery_ignores_foreign_extensions() {
        let s = SpillStore::new(tmpdir("foreign")).unwrap();
        fs::write(s.dir().join("notes.txt"), b"hello").unwrap();
        let rec = s.recover().unwrap();
        assert_eq!(rec, RecoveryReport::default());
        assert!(s.dir().join("notes.txt").exists());
        fs::remove_file(s.dir().join("notes.txt")).unwrap();
        cleanup(&s);
    }
}
