//! The tier-2 spill store backing the Data Store's RESTORABLE phase
//! (DESIGN.md §14).
//!
//! Warm cache entries evicted from memory serialize here in a compact
//! framed format instead of being dropped; a later exact-match lookup
//! re-heats them at disk cost rather than recompute cost. The format is
//! deliberately dumb — magic, version, payload length, checksum, bytes —
//! because entries are opaque `Arc<[u8]>` results: no schema evolution to
//! worry about, only torn writes and bit rot, which the checksum catches.
//!
//! Fault injection reuses the crate's seeded [`FaultConfig`] draws keyed
//! on the reserved [`SPILL_DEVICE`] dataset and the blob id, so tests can
//! predict exactly which tier-2 reads are poisoned without issuing them —
//! the same pure-function contract the page-read injector honors.

use crate::fault::FaultConfig;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use vmqs_core::{BlobId, DatasetId};

/// The reserved dataset key under which tier-2 read faults are drawn:
/// `FaultConfig::page_is_poisoned(SPILL_DEVICE, blob.raw())` decides
/// whether a spill read is permanently unreadable. Real page datasets are
/// small consecutive ids, so the reserved key cannot collide.
pub const SPILL_DEVICE: DatasetId = DatasetId(u64::MAX);

/// File magic: identifies a spill frame (and guards against reading a
/// foreign file dropped into the spill directory).
const MAGIC: [u8; 4] = *b"VMQS";
/// Frame format version.
const VERSION: u8 = 1;
/// Frame header: magic + version + 3 pad bytes + length u64 + checksum u64.
const HEADER_LEN: usize = 4 + 1 + 3 + 8 + 8;

/// Monotone counters for spill-store traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Frames written.
    pub writes: u64,
    /// Payload bytes written.
    pub bytes_written: u64,
    /// Frames read back successfully.
    pub reads: u64,
    /// Payload bytes read back.
    pub bytes_read: u64,
    /// Reads that failed (injected poison, missing file, corrupt frame).
    pub read_failures: u64,
    /// Frames removed.
    pub removes: u64,
}

/// FNV-1a 64-bit over the payload — cheap, dependency-free, and plenty to
/// catch torn writes and injected corruption.
fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// An on-disk tier-2 store for spilled Data Store entries.
///
/// One file per blob under the configured directory. The threaded engine
/// calls [`SpillStore::write`] inside the same critical section that
/// demoted the entry (so a RESTORABLE entry always has an on-disk copy)
/// and [`SpillStore::read`] under the same exclusivity before promoting
/// it back. All methods take `&self`; the store itself keeps no mutable
/// state beyond atomic counters, and relies on the caller for exclusion
/// per blob.
#[derive(Debug)]
pub struct SpillStore {
    dir: PathBuf,
    fault: FaultConfig,
    writes: std::sync::atomic::AtomicU64,
    bytes_written: std::sync::atomic::AtomicU64,
    reads: std::sync::atomic::AtomicU64,
    bytes_read: std::sync::atomic::AtomicU64,
    read_failures: std::sync::atomic::AtomicU64,
    removes: std::sync::atomic::AtomicU64,
}

impl SpillStore {
    /// Opens (creating if needed) a spill store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SpillStore {
            dir,
            fault: FaultConfig::none(),
            writes: Default::default(),
            bytes_written: Default::default(),
            reads: Default::default(),
            bytes_read: Default::default(),
            read_failures: Default::default(),
            removes: Default::default(),
        })
    }

    /// Builder: injects seeded faults into tier-2 reads (permanent faults
    /// drawn on [`SPILL_DEVICE`] × blob id; transient/latency knobs are
    /// ignored here — the restore path has no retry loop, a failed
    /// restore falls back to recomputation).
    pub fn with_faults(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// The directory frames live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> SpillStats {
        use std::sync::atomic::Ordering::Relaxed;
        SpillStats {
            writes: self.writes.load(Relaxed),
            bytes_written: self.bytes_written.load(Relaxed),
            reads: self.reads.load(Relaxed),
            bytes_read: self.bytes_read.load(Relaxed),
            read_failures: self.read_failures.load(Relaxed),
            removes: self.removes.load(Relaxed),
        }
    }

    /// True when a tier-2 read of `blob` would fail with injected poison
    /// — a pure function of the fault seed, so tests and the simulator
    /// can predict restore failures without touching disk.
    pub fn blob_is_poisoned(&self, blob: BlobId) -> bool {
        self.fault.page_is_poisoned(SPILL_DEVICE, blob.raw())
    }

    fn path_of(&self, blob: BlobId) -> PathBuf {
        self.dir.join(format!("blob-{}.spill", blob.raw()))
    }

    /// Serializes `payload` as the frame for `blob`, overwriting any
    /// previous frame.
    pub fn write(&self, blob: BlobId, payload: &[u8]) -> io::Result<()> {
        use std::sync::atomic::Ordering::Relaxed;
        let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
        frame.extend_from_slice(&MAGIC);
        frame.push(VERSION);
        frame.extend_from_slice(&[0u8; 3]);
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        frame.extend_from_slice(&checksum(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let mut f = fs::File::create(self.path_of(blob))?;
        f.write_all(&frame)?;
        self.writes.fetch_add(1, Relaxed);
        self.bytes_written.fetch_add(payload.len() as u64, Relaxed);
        Ok(())
    }

    /// Reads back the frame for `blob`, validating magic, version, length
    /// and checksum. Fails with `InvalidData` on injected poison or a
    /// corrupt frame — both non-transient, so the caller drops the entry
    /// and recomputes.
    pub fn read(&self, blob: BlobId) -> io::Result<Vec<u8>> {
        use std::sync::atomic::Ordering::Relaxed;
        let fail = |msg: String| -> io::Error { io::Error::new(io::ErrorKind::InvalidData, msg) };
        if self.blob_is_poisoned(blob) {
            self.read_failures.fetch_add(1, Relaxed);
            return Err(fail(format!("injected permanent fault: spill read {blob}")));
        }
        let inner = (|| -> io::Result<Vec<u8>> {
            let mut f = fs::File::open(self.path_of(blob))?;
            let mut header = [0u8; HEADER_LEN];
            f.read_exact(&mut header)?;
            if header[..4] != MAGIC {
                return Err(fail(format!("bad spill magic for {blob}")));
            }
            if header[4] != VERSION {
                return Err(fail(format!(
                    "unsupported spill frame version {} for {blob}",
                    header[4]
                )));
            }
            let len = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
            let want = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
            let mut payload = vec![0u8; len as usize];
            f.read_exact(&mut payload)?;
            if checksum(&payload) != want {
                return Err(fail(format!("spill checksum mismatch for {blob}")));
            }
            Ok(payload)
        })();
        match &inner {
            Ok(p) => {
                self.reads.fetch_add(1, Relaxed);
                self.bytes_read.fetch_add(p.len() as u64, Relaxed);
            }
            Err(_) => {
                self.read_failures.fetch_add(1, Relaxed);
            }
        }
        inner
    }

    /// Deletes the frame for `blob`. Missing frames are not an error (the
    /// drop may race a cancelled spill that never wrote one).
    pub fn remove(&self, blob: BlobId) -> io::Result<()> {
        use std::sync::atomic::Ordering::Relaxed;
        match fs::remove_file(self.path_of(blob)) {
            Ok(()) => {
                self.removes.fetch_add(1, Relaxed);
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Number of frames currently on disk.
    pub fn len(&self) -> io::Result<usize> {
        Ok(self.frame_paths()?.len())
    }

    /// True when no frames are on disk.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Removes every frame (end-of-run hygiene; the directory itself
    /// stays, it may be a shared tmpdir).
    pub fn clear(&self) -> io::Result<()> {
        for p in self.frame_paths()? {
            fs::remove_file(p)?;
        }
        Ok(())
    }

    fn frame_paths(&self) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let p = entry?.path();
            if p.extension().is_some_and(|e| e == "spill") {
                out.push(p);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique per-test directory without wall-clock or RNG (banned by the
    /// workspace lints): process id + an atomic counter.
    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("vmqs-spill-{}-{tag}-{n}", std::process::id()))
    }

    fn cleanup(store: &SpillStore) {
        store.clear().unwrap();
        let _ = fs::remove_dir(store.dir());
    }

    #[test]
    fn roundtrip_preserves_bytes() {
        let s = SpillStore::new(tmpdir("roundtrip")).unwrap();
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        s.write(BlobId(7), &payload).unwrap();
        assert_eq!(s.read(BlobId(7)).unwrap(), payload);
        let st = s.stats();
        assert_eq!((st.writes, st.reads, st.read_failures), (1, 1, 0));
        assert_eq!(st.bytes_written, 4096);
        assert_eq!(st.bytes_read, 4096);
        cleanup(&s);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let s = SpillStore::new(tmpdir("empty")).unwrap();
        s.write(BlobId(0), &[]).unwrap();
        assert_eq!(s.read(BlobId(0)).unwrap(), Vec::<u8>::new());
        cleanup(&s);
    }

    #[test]
    fn missing_frame_fails_read() {
        let s = SpillStore::new(tmpdir("missing")).unwrap();
        assert!(s.read(BlobId(1)).is_err());
        assert_eq!(s.stats().read_failures, 1);
        cleanup(&s);
    }

    #[test]
    fn corrupt_frame_fails_checksum() {
        let s = SpillStore::new(tmpdir("corrupt")).unwrap();
        s.write(BlobId(3), &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        // Flip one payload byte on disk.
        let p = s.dir().join("blob-3.spill");
        let mut bytes = fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&p, bytes).unwrap();
        let e = s.read(BlobId(3)).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("checksum"));
        cleanup(&s);
    }

    #[test]
    fn truncated_frame_fails_read() {
        let s = SpillStore::new(tmpdir("truncated")).unwrap();
        s.write(BlobId(4), &[9u8; 100]).unwrap();
        let p = s.dir().join("blob-4.spill");
        let bytes = fs::read(&p).unwrap();
        fs::write(&p, &bytes[..bytes.len() / 2]).unwrap();
        assert!(s.read(BlobId(4)).is_err());
        cleanup(&s);
    }

    #[test]
    fn foreign_file_rejected_by_magic() {
        let s = SpillStore::new(tmpdir("magic")).unwrap();
        fs::write(s.dir().join("blob-5.spill"), b"not a spill frame at all").unwrap();
        let e = s.read(BlobId(5)).unwrap_err();
        assert!(e.to_string().contains("magic"));
        cleanup(&s);
    }

    #[test]
    fn remove_and_clear_leave_no_frames() {
        let s = SpillStore::new(tmpdir("hygiene")).unwrap();
        for i in 0..5u64 {
            s.write(BlobId(i), &[i as u8; 16]).unwrap();
        }
        assert_eq!(s.len().unwrap(), 5);
        s.remove(BlobId(2)).unwrap();
        s.remove(BlobId(2)).unwrap(); // double-remove is a no-op
        assert_eq!(s.len().unwrap(), 4);
        s.clear().unwrap();
        assert!(s.is_empty().unwrap());
        assert_eq!(s.stats().removes, 1);
        cleanup(&s);
    }

    #[test]
    fn poisoned_read_fails_deterministically() {
        let cfg = FaultConfig {
            seed: 42,
            ..FaultConfig::none().with_permanent(0.3)
        };
        let s = SpillStore::new(tmpdir("poison")).unwrap().with_faults(cfg);
        let mut poisoned = 0;
        for i in 0..50u64 {
            s.write(BlobId(i), &[i as u8; 8]).unwrap();
            if s.blob_is_poisoned(BlobId(i)) {
                poisoned += 1;
                let e = s.read(BlobId(i)).unwrap_err();
                assert_eq!(e.kind(), io::ErrorKind::InvalidData);
            } else {
                assert!(s.read(BlobId(i)).is_ok());
            }
        }
        assert!((3..30).contains(&poisoned), "poisoned {poisoned}/50");
        // Pure function: the prediction never disagrees with the read.
        assert_eq!(
            cfg.page_is_poisoned(SPILL_DEVICE, 7),
            s.blob_is_poisoned(BlobId(7))
        );
        cleanup(&s);
    }

    #[test]
    fn overwrite_replaces_frame() {
        let s = SpillStore::new(tmpdir("overwrite")).unwrap();
        s.write(BlobId(9), &[1u8; 64]).unwrap();
        s.write(BlobId(9), &[2u8; 32]).unwrap();
        assert_eq!(s.read(BlobId(9)).unwrap(), vec![2u8; 32]);
        assert_eq!(s.len().unwrap(), 1);
        cleanup(&s);
    }
}
