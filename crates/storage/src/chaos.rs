//! Seeded chaos injection for the failure-containment layer
//! (DESIGN.md §15).
//!
//! Where [`crate::FaultConfig`] models the *storage* failing (bad reads,
//! latency spikes), [`ChaosConfig`] models the *process* failing: worker
//! panics mid-compute, the machine dying mid-spill-write, and silent
//! on-disk corruption. Every decision is a pure function of the seed and
//! stable coordinates (query id, global compute ordinal, spill-write
//! ordinal), so a chaotic run replays exactly under the same seed and
//! both engines (threaded server, virtual-time simulator) draw identical
//! failure plans.
//!
//! Three injection points:
//!
//! * **poison queries** — `query_is_poison(id)` draws per *query id*, so
//!   a poisoned query panics its worker on every attempt. This is what
//!   exercises the quarantine rule: requeue-and-retry cannot save a
//!   deterministic panic, only a bounded quarantine can.
//! * **panic-at-nth-compute** — a one-shot panic at a specific global
//!   compute ordinal; deterministic at one worker, used by the sim
//!   golden and the forced-panic regression tests.
//! * **spill kill-points** — `crash_spill_write` makes the Nth
//!   [`crate::SpillStore::write`] die mid-write (a torn `.tmp`, never
//!   renamed); `bit_flip_frame` flips one payload bit in the Nth frame
//!   *after* its CRC was computed, so the frame lands intact-looking but
//!   fails validation at read or recovery time.

/// Chaos-injection knobs. `Copy` so it can ride inside the (also-`Copy`)
/// simulator configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the poison-query draws.
    pub seed: u64,
    /// Probability that a *query* is poisoned — its compute panics the
    /// worker deterministically on every attempt, in `[0, 1]`.
    pub poison_rate: f64,
    /// Panic the worker on exactly this global compute ordinal
    /// (0-based), once. `None` disables.
    pub panic_at_compute: Option<u64>,
    /// Simulate a crash during the Nth spill write (0-based): the frame
    /// is left as a torn `.tmp` file and the write fails. `None`
    /// disables.
    pub crash_spill_write: Option<u64>,
    /// Flip one payload bit in the Nth spill frame (0-based) after its
    /// checksum was computed, producing an on-disk frame whose CRC
    /// trailer rejects it. `None` disables.
    pub bit_flip_frame: Option<u64>,
}

/// SplitMix64 finalizer (the same mixer the fault injector uses).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const SALT_POISON: u64 = 0x706F_6973_6F6E;

impl ChaosConfig {
    /// No chaos at all (the identity configuration).
    pub fn none() -> Self {
        ChaosConfig {
            seed: 0,
            poison_rate: 0.0,
            panic_at_compute: None,
            crash_spill_write: None,
            bit_flip_frame: None,
        }
    }

    /// True when this configuration injects nothing.
    pub fn is_noop(&self) -> bool {
        self.poison_rate <= 0.0
            && self.panic_at_compute.is_none()
            && self.crash_spill_write.is_none()
            && self.bit_flip_frame.is_none()
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style poison-query rate.
    pub fn with_poison_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "poison rate must lie in [0, 1]"
        );
        self.poison_rate = rate;
        self
    }

    /// Builder-style panic-at-nth-compute override.
    pub fn with_panic_at_compute(mut self, n: Option<u64>) -> Self {
        self.panic_at_compute = n;
        self
    }

    /// Builder-style crash-mid-spill override.
    pub fn with_crash_spill_write(mut self, n: Option<u64>) -> Self {
        self.crash_spill_write = n;
        self
    }

    /// Builder-style frame-bit-flip override.
    pub fn with_bit_flip_frame(mut self, n: Option<u64>) -> Self {
        self.bit_flip_frame = n;
        self
    }

    /// True when the query with raw id `query` is poisoned: its compute
    /// panics the worker on *every* attempt. A pure function of the seed
    /// and the id — requeueing and retrying draws the same verdict, which
    /// is exactly what the quarantine rule exists to contain.
    pub fn query_is_poison(&self, query: u64) -> bool {
        if self.poison_rate <= 0.0 {
            return false;
        }
        let h = mix(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ SALT_POISON
            ^ query.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        ((h >> 11) as f64 / (1u64 << 53) as f64) < self.poison_rate
    }

    /// True when the compute with global ordinal `n` must panic — either
    /// the one-shot `panic_at_compute` ordinal, or the query is poisoned.
    pub fn compute_should_panic(&self, n: u64, query: u64) -> bool {
        self.panic_at_compute == Some(n) || self.query_is_poison(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_noop() {
        assert!(ChaosConfig::none().is_noop());
        assert!(!ChaosConfig::none().query_is_poison(7));
        assert!(!ChaosConfig::none().compute_should_panic(0, 0));
    }

    #[test]
    fn builders_compose() {
        let c = ChaosConfig::none()
            .with_seed(9)
            .with_poison_rate(0.25)
            .with_panic_at_compute(Some(3))
            .with_crash_spill_write(Some(1))
            .with_bit_flip_frame(Some(2));
        assert!(!c.is_noop());
        assert_eq!(c.seed, 9);
        assert_eq!(c.poison_rate, 0.25);
        assert_eq!(c.panic_at_compute, Some(3));
        assert_eq!(c.crash_spill_write, Some(1));
        assert_eq!(c.bit_flip_frame, Some(2));
    }

    #[test]
    #[should_panic(expected = "poison rate")]
    fn out_of_range_poison_rate_rejected() {
        let _ = ChaosConfig::none().with_poison_rate(1.5);
    }

    #[test]
    fn poison_draws_are_deterministic_and_per_query() {
        let c = ChaosConfig::none().with_seed(42).with_poison_rate(0.2);
        let verdicts: Vec<bool> = (0..200).map(|q| c.query_is_poison(q)).collect();
        let again: Vec<bool> = (0..200).map(|q| c.query_is_poison(q)).collect();
        assert_eq!(verdicts, again, "same seed must replay exactly");
        let other = ChaosConfig::none().with_seed(43).with_poison_rate(0.2);
        assert_ne!(
            verdicts,
            (0..200)
                .map(|q| other.query_is_poison(q))
                .collect::<Vec<_>>(),
            "different seeds must differ"
        );
        let poisoned = verdicts.iter().filter(|&&p| p).count();
        // 200 draws at 20%: comfortably within [5%, 40%].
        assert!((10..80).contains(&poisoned), "poisoned {poisoned}/200");
    }

    #[test]
    fn panic_at_compute_is_one_ordinal() {
        let c = ChaosConfig::none().with_panic_at_compute(Some(5));
        assert!(c.compute_should_panic(5, 0));
        assert!(!c.compute_should_panic(4, 0));
        assert!(!c.compute_should_panic(6, 0));
    }

    #[test]
    fn poisoned_query_panics_on_every_attempt() {
        let c = ChaosConfig::none().with_seed(1).with_poison_rate(0.3);
        let victim = (0..1000)
            .find(|&q| c.query_is_poison(q))
            .expect("some query is poisoned at 30%");
        for attempt in 0..4 {
            assert!(
                c.compute_should_panic(attempt * 17, victim),
                "attempt {attempt} must re-draw the same poison verdict"
            );
        }
    }
}
