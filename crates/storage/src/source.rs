//! Data sources: where pages actually come from.
//!
//! The paper's architecture reads datasets from a "disk farm" through data
//! source objects. We provide three sources:
//!
//! * [`SyntheticSource`] — deterministic procedurally generated pages; the
//!   standard source for tests and examples (pixel *values* never influence
//!   scheduling, so synthesizing them preserves all studied behaviour),
//! * [`FileSource`] — pages read from real files on disk (one file per
//!   dataset), for end-to-end runs against actual storage,
//! * [`ThrottledSource`] — a decorator that adds [`DiskModel`]-computed
//!   sleeps, emulating the paper's slow-2002-disk timing on modern
//!   hardware.

use crate::disk::DiskModel;
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;
use vmqs_core::DatasetId;

/// A source of fixed-size pages. Implementations must be thread-safe: the
/// query server issues reads from many query threads concurrently.
pub trait DataSource: Send + Sync {
    /// Reads page `index` of `dataset`; always returns exactly `page_size`
    /// bytes (sources zero-fill beyond end of data).
    fn read_page(
        &self,
        dataset: DatasetId,
        index: u64,
        page_size: usize,
    ) -> std::io::Result<Vec<u8>>;
}

/// Deterministic synthetic pages: byte `i` of page `p` of dataset `d` is a
/// pure function of `(d, p, i)`, so tests can verify reuse paths return
/// byte-identical data to recomputation.
#[derive(Debug, Default)]
pub struct SyntheticSource;

impl SyntheticSource {
    /// Creates the source.
    pub fn new() -> Self {
        SyntheticSource
    }

    /// The deterministic content function (exposed so kernels/tests can
    /// predict page contents without I/O).
    #[inline]
    pub fn byte_at(dataset: DatasetId, page: u64, offset: u64) -> u8 {
        // SplitMix64-style mixing of the coordinates.
        mix(page_base(dataset, page).wrapping_add(offset)) as u8
    }
}

/// Per-page loop-invariant part of the content function: within a page,
/// byte `i` is `mix(page_base + i)`.
#[inline(always)]
fn page_base(dataset: DatasetId, page: u64) -> u64 {
    dataset
        .raw()
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(page.wrapping_mul(0xBF58_476D_1CE4_E5B9))
}

/// SplitMix64 finalizer.
#[inline(always)]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fills `buf[i] = mix(base + i) as u8` with scalar code.
fn fill_page_scalar(base: u64, buf: &mut [u8]) {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = mix(base.wrapping_add(i as u64)) as u8;
    }
}

/// Same fill, compiled with AVX-512 enabled: AVX-512DQ's native 64-bit
/// lane multiply lets the compiler vectorize the SplitMix64 finalizer
/// (~3× on page generation, which dominates cold-read cost). The loop
/// body is identical to [`fill_page_scalar`], so output is byte-identical.
///
/// # Safety
/// Callers must ensure the CPU supports avx512f/dq/bw/vl (checked at the
/// dispatch site with `is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq,avx512bw,avx512vl")]
unsafe fn fill_page_avx512(base: u64, buf: &mut [u8]) {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = mix(base.wrapping_add(i as u64)) as u8;
    }
}

/// Dispatches to the fastest available page fill for this CPU.
fn fill_page(base: u64, buf: &mut [u8]) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::atomic::{AtomicU8, Ordering};
        static AVX512: AtomicU8 = AtomicU8::new(0); // 0 = unknown, 1 = yes, 2 = no
        let state = AVX512.load(Ordering::Relaxed);
        let have = match state {
            1 => true,
            2 => false,
            _ => {
                let have = is_x86_feature_detected!("avx512f")
                    && is_x86_feature_detected!("avx512dq")
                    && is_x86_feature_detected!("avx512bw")
                    && is_x86_feature_detected!("avx512vl");
                AVX512.store(if have { 1 } else { 2 }, Ordering::Relaxed);
                have
            }
        };
        if have {
            // SAFETY: feature support verified above.
            unsafe { fill_page_avx512(base, buf) };
            return;
        }
    }
    fill_page_scalar(base, buf);
}

impl DataSource for SyntheticSource {
    fn read_page(
        &self,
        dataset: DatasetId,
        index: u64,
        page_size: usize,
    ) -> std::io::Result<Vec<u8>> {
        let mut buf = vec![0u8; page_size];
        fill_page(page_base(dataset, index), &mut buf);
        Ok(buf)
    }
}

/// Pages stored in per-dataset files (`<dir>/dataset_<id>.bin`), page `i`
/// at byte offset `i * page_size`. Reads past end-of-file are zero-filled,
/// mirroring a partially materialized slide.
#[derive(Debug)]
pub struct FileSource {
    dir: PathBuf,
    // One shared handle per dataset; positioned reads are serialized per
    // dataset (adequate for tests; the throughput path is the page cache).
    handles: Mutex<HashMap<DatasetId, File>>,
}

impl FileSource {
    /// Opens a source rooted at `dir`.
    pub fn new<P: AsRef<Path>>(dir: P) -> Self {
        FileSource {
            dir: dir.as_ref().to_path_buf(),
            handles: Mutex::new(HashMap::new()),
        }
    }

    /// Path of the backing file for a dataset.
    pub fn dataset_path(&self, dataset: DatasetId) -> PathBuf {
        self.dir.join(format!("dataset_{}.bin", dataset.raw()))
    }

    /// Materializes `pages` pages of synthetic data for `dataset` so the
    /// file source serves exactly what [`SyntheticSource`] would.
    pub fn materialize_synthetic(
        &self,
        dataset: DatasetId,
        pages: u64,
        page_size: usize,
    ) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let mut f = File::create(self.dataset_path(dataset))?;
        let synth = SyntheticSource::new();
        for p in 0..pages {
            let buf = synth.read_page(dataset, p, page_size)?;
            f.write_all(&buf)?;
        }
        Ok(())
    }
}

impl DataSource for FileSource {
    fn read_page(
        &self,
        dataset: DatasetId,
        index: u64,
        page_size: usize,
    ) -> std::io::Result<Vec<u8>> {
        // Poison recovery: the map only caches open handles, so state is
        // valid even if a peer panicked mid-insert; never take readers down.
        let mut handles = match self.handles.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let f = match handles.get_mut(&dataset) {
            Some(f) => f,
            None => {
                let f = File::open(self.dataset_path(dataset))?;
                handles.entry(dataset).or_insert(f)
            }
        };
        let mut buf = vec![0u8; page_size];
        f.seek(SeekFrom::Start(index * page_size as u64))?;
        // Zero-fill on short read (page beyond EOF).
        let mut read = 0;
        while read < page_size {
            match f.read(&mut buf[read..]) {
                Ok(0) => break,
                Ok(n) => read += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(buf)
    }
}

/// Decorator adding [`DiskModel`] latency as real sleeps — lets the
/// threaded engine experience 2002-era I/O costs on modern storage.
pub struct ThrottledSource<S> {
    inner: S,
    model: DiskModel,
    /// Scales sleeps (e.g. `0.01` replays the disk 100× faster, keeping
    /// ratios intact while making tests quick).
    time_scale: f64,
}

impl<S: DataSource> ThrottledSource<S> {
    /// Wraps `inner`, sleeping `model.service_time(page) * time_scale` per
    /// page read.
    pub fn new(inner: S, model: DiskModel, time_scale: f64) -> Self {
        assert!(time_scale >= 0.0);
        ThrottledSource {
            inner,
            model,
            time_scale,
        }
    }
}

impl<S: DataSource> DataSource for ThrottledSource<S> {
    fn read_page(
        &self,
        dataset: DatasetId,
        index: u64,
        page_size: usize,
    ) -> std::io::Result<Vec<u8>> {
        let t = self.model.service_time(page_size as u64) * self.time_scale;
        if t > 0.0 && t.is_finite() {
            std::thread::sleep(Duration::from_secs_f64(t));
        }
        self.inner.read_page(dataset, index, page_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_pages_are_deterministic() {
        let s = SyntheticSource::new();
        let a = s.read_page(DatasetId(1), 7, 256).unwrap();
        let b = s.read_page(DatasetId(1), 7, 256).unwrap();
        assert_eq!(a, b);
        let c = s.read_page(DatasetId(2), 7, 256).unwrap();
        assert_ne!(a, c);
        let d = s.read_page(DatasetId(1), 8, 256).unwrap();
        assert_ne!(a, d);
        assert_eq!(a.len(), 256);
    }

    #[test]
    fn synthetic_bytes_match_content_function() {
        let s = SyntheticSource::new();
        let page = s.read_page(DatasetId(3), 5, 16).unwrap();
        for (i, &b) in page.iter().enumerate() {
            assert_eq!(b, SyntheticSource::byte_at(DatasetId(3), 5, i as u64));
        }
    }

    #[test]
    fn vectorized_fill_matches_byte_at_on_full_pages() {
        // Exercises whichever fill path `read_page` dispatches to on this
        // CPU (AVX-512 where available, scalar otherwise) against the
        // canonical per-byte definition, across sizes spanning all vector
        // remainder shapes.
        let s = SyntheticSource::new();
        for &size in &[1usize, 7, 63, 64, 65, 1000, 65536] {
            let page = s.read_page(DatasetId(11), 42, size).unwrap();
            assert_eq!(page.len(), size);
            for (i, &b) in page.iter().enumerate() {
                assert_eq!(b, SyntheticSource::byte_at(DatasetId(11), 42, i as u64));
            }
        }
    }

    #[test]
    fn file_source_round_trips_synthetic_data() {
        let dir = std::env::temp_dir().join(format!("vmqs_fs_test_{}", std::process::id()));
        let fs = FileSource::new(&dir);
        fs.materialize_synthetic(DatasetId(4), 3, 128).unwrap();
        let synth = SyntheticSource::new();
        for p in 0..3 {
            assert_eq!(
                fs.read_page(DatasetId(4), p, 128).unwrap(),
                synth.read_page(DatasetId(4), p, 128).unwrap()
            );
        }
        // Past-EOF page is zero-filled.
        let z = fs.read_page(DatasetId(4), 99, 128).unwrap();
        assert!(z.iter().all(|&b| b == 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_source_missing_dataset_errors() {
        let dir = std::env::temp_dir().join(format!("vmqs_fs_missing_{}", std::process::id()));
        let fs = FileSource::new(&dir);
        assert!(fs.read_page(DatasetId(9), 0, 64).is_err());
    }

    #[test]
    fn throttled_source_preserves_data() {
        let t = ThrottledSource::new(SyntheticSource::new(), DiskModel::new(0.0, 1e12), 1.0);
        let a = t.read_page(DatasetId(1), 0, 64).unwrap();
        assert_eq!(
            a,
            SyntheticSource::new()
                .read_page(DatasetId(1), 0, 64)
                .unwrap()
        );
    }

    #[test]
    fn throttled_source_sleeps_scaled_time() {
        // 1 ms seek at scale 1.0 → at least ~1 ms for one page.
        let t = ThrottledSource::new(SyntheticSource::new(), DiskModel::new(1e-3, 1e12), 1.0);
        let t0 = vmqs_core::clock::now();
        t.read_page(DatasetId(1), 0, 64).unwrap();
        assert!(t0.elapsed() >= Duration::from_micros(900));
    }
}
