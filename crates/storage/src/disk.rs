//! Disk performance model.
//!
//! The paper ran on an SMP with a locally attached disk farm, with the OS
//! file cache disabled (`directio`) so the Page Space Manager was the only
//! I/O amortization. We model such a device with a simple seek + transfer
//! cost: each merged I/O request (a contiguous run of pages) pays one
//! positioning overhead plus size-proportional transfer time. The model is
//! shared by the discrete-event simulator (virtual time) and by the
//! throttled data source (real sleeps), so both engines see the same disk.

/// Analytic model of one disk (or disk farm treated as one queueing server).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskModel {
    /// Positioning (seek + rotational + request setup) cost per request, in
    /// seconds.
    pub seek_time: f64,
    /// Sequential transfer bandwidth, bytes per second.
    pub bandwidth: f64,
}

impl DiskModel {
    /// Creates a model; panics on non-positive bandwidth or negative seek.
    pub fn new(seek_time: f64, bandwidth: f64) -> Self {
        assert!(seek_time >= 0.0, "negative seek time");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        DiskModel {
            seek_time,
            bandwidth,
        }
    }

    /// A circa-2002 SCSI disk farm as one server: ~8 ms positioning,
    /// ~25 MB/s sustained transfer. The absolute values only set the time
    /// scale of the reproduction; the experiment *shapes* depend on the
    /// CPU:I/O ratios, which are calibrated to the paper (see
    /// `vmqs_microscope::cost`).
    pub fn circa_2002() -> Self {
        DiskModel::new(8e-3, 25.0 * 1024.0 * 1024.0)
    }

    /// An instantaneous disk (for tests isolating CPU behaviour).
    pub fn instantaneous() -> Self {
        DiskModel::new(0.0, f64::MAX)
    }

    /// Service time in seconds for one merged request of `bytes` bytes.
    pub fn service_time(&self, bytes: u64) -> f64 {
        self.seek_time + bytes as f64 / self.bandwidth
    }

    /// Service time for `count` pages of `page_size` bytes read as one run.
    pub fn run_time(&self, count: u64, page_size: u64) -> f64 {
        self.service_time(count * page_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_is_seek_plus_transfer() {
        let d = DiskModel::new(0.01, 1000.0);
        assert!((d.service_time(500) - 0.51).abs() < 1e-12);
        assert!((d.service_time(0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn merged_run_cheaper_than_separate_requests() {
        let d = DiskModel::circa_2002();
        let merged = d.run_time(8, 65536);
        let separate = 8.0 * d.run_time(1, 65536);
        assert!(merged < separate);
    }

    #[test]
    fn instantaneous_disk_near_zero() {
        let d = DiskModel::instantaneous();
        assert!(d.service_time(1 << 30) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        DiskModel::new(0.0, 0.0);
    }
}
