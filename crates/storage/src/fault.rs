//! Deterministic fault injection for data sources.
//!
//! The paper's server was evaluated on a healthy SMP; a production
//! deployment sees disks time out, reads return garbage, and latencies
//! spike. [`FaultInjectingSource`] wraps any [`DataSource`] and injects
//! such failures *deterministically*: every decision is a pure function of
//! `(seed, dataset, page, attempt)`, so a failing run replays exactly
//! under the same seed and tests can sweep fault rates reproducibly.
//!
//! Three failure classes are modeled (see DESIGN.md §8):
//!
//! * **transient** errors (`ErrorKind::Interrupted`) — drawn per read
//!   *attempt*; a retry of the same page may succeed. Stands in for EINTR,
//!   dropped NFS replies, SAN path flaps.
//! * **permanent** errors (`ErrorKind::InvalidData`) — drawn per *page*;
//!   every attempt on a poisoned page fails. Stands in for media errors
//!   and checksum failures. Retrying is pointless and callers are expected
//!   to give up immediately (see [`is_transient`]).
//! * **latency spikes** — drawn per attempt; the read sleeps
//!   [`FaultConfig::latency_spike`] before being served. Stands in for
//!   queue saturation and RAID rebuilds; exercises timeout paths.

use crate::source::DataSource;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use vmqs_core::DatasetId;

/// True when an I/O error is worth retrying: the documented transient
/// kinds (interrupted, would-block, timed-out) — everything else is
/// treated as permanent and fails the read immediately.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Fault-injection knobs. All rates are per-page probabilities in
/// `[0, 1]`; `seed` makes every decision reproducible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability that one read *attempt* fails transiently (retryable).
    pub transient_rate: f64,
    /// Probability that a *page* is permanently unreadable (every attempt
    /// fails; stable across retries).
    pub permanent_rate: f64,
    /// Probability that one read attempt incurs a latency spike.
    pub latency_spike_rate: f64,
    /// Duration of an injected latency spike.
    pub latency_spike: Duration,
    /// Seed for all fault draws.
    pub seed: u64,
}

impl FaultConfig {
    /// No faults at all (the identity configuration).
    pub fn none() -> Self {
        FaultConfig {
            transient_rate: 0.0,
            permanent_rate: 0.0,
            latency_spike_rate: 0.0,
            latency_spike: Duration::ZERO,
            seed: 0,
        }
    }

    /// Transient faults only, at `rate`, under `seed`.
    pub fn transient(rate: f64, seed: u64) -> Self {
        FaultConfig {
            transient_rate: rate,
            seed,
            ..FaultConfig::none()
        }
    }

    /// True when this configuration injects nothing.
    pub fn is_noop(&self) -> bool {
        self.transient_rate <= 0.0 && self.permanent_rate <= 0.0 && self.latency_spike_rate <= 0.0
    }

    /// Builder-style permanent-fault rate.
    pub fn with_permanent(mut self, rate: f64) -> Self {
        self.permanent_rate = rate;
        self
    }

    /// Builder-style latency-spike override.
    pub fn with_spikes(mut self, rate: f64, spike: Duration) -> Self {
        self.latency_spike_rate = rate;
        self.latency_spike = spike;
        self
    }

    /// True when `(dataset, page)` is permanently unreadable under this
    /// configuration — a pure function of the seed, usable by the
    /// simulator and by tests to predict failures without issuing reads.
    pub fn page_is_poisoned(&self, dataset: DatasetId, page: u64) -> bool {
        self.permanent_rate > 0.0
            && draw(self.seed, SALT_PERMANENT, dataset, page, 0) < self.permanent_rate
    }

    /// Number of consecutive transient faults a fresh read of
    /// `(dataset, page)` would hit starting at attempt 0, capped at `max`.
    /// The discrete-event simulator uses this to charge retry latency
    /// without replaying byte-level reads.
    pub fn transient_streak(&self, dataset: DatasetId, page: u64, max: u32) -> u32 {
        if self.transient_rate <= 0.0 {
            return 0;
        }
        (0..max)
            .take_while(|&a| {
                draw(self.seed, SALT_TRANSIENT, dataset, page, a as u64) < self.transient_rate
            })
            .count() as u32
    }
}

/// Counters of injected faults (monotone; read with
/// [`FaultInjectingSource::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Read attempts observed.
    pub reads: u64,
    /// Transient errors injected.
    pub transient: u64,
    /// Permanent errors injected.
    pub permanent: u64,
    /// Latency spikes injected.
    pub spikes: u64,
}

/// SplitMix64 finalizer (the same mixer the synthetic source uses).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic uniform draw in `[0, 1)` from hashed coordinates.
#[inline]
fn draw(seed: u64, salt: u64, dataset: DatasetId, page: u64, attempt: u64) -> f64 {
    let h = mix(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ salt
        ^ mix(dataset.raw().wrapping_add(0xD1B5_4A32_D192_ED03))
        ^ page.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ attempt.wrapping_mul(0x94D0_49BB_1331_11EB));
    // Top 53 bits → exactly representable in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

const SALT_TRANSIENT: u64 = 0x7472_616E_7369;
const SALT_PERMANENT: u64 = 0x7065_726D_616E;
const SALT_SPIKE: u64 = 0x0073_7069_6B65;

/// A [`DataSource`] decorator that injects deterministic faults.
///
/// Thread-safe; the per-page attempt counter is shared across callers, so
/// the *n*-th read of a page draws the *n*-th transient decision no matter
/// which query thread issues it. Total injected-fault counts are therefore
/// deterministic per seed even under concurrency (which page read observes
/// which attempt number depends on thread interleaving, but tests assert
/// aggregate behaviour, never per-thread assignments).
pub struct FaultInjectingSource<S> {
    inner: S,
    cfg: FaultConfig,
    /// Per-page read-attempt counters (transient draws differ per attempt).
    attempts: Mutex<HashMap<(DatasetId, u64), u64>>,
    reads: AtomicU64,
    transient: AtomicU64,
    permanent: AtomicU64,
    spikes: AtomicU64,
}

impl<S: DataSource> FaultInjectingSource<S> {
    /// Wraps `inner` with fault injection per `cfg`.
    pub fn new(inner: S, cfg: FaultConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.transient_rate)
                && (0.0..=1.0).contains(&cfg.permanent_rate)
                && (0.0..=1.0).contains(&cfg.latency_spike_rate),
            "fault rates must lie in [0, 1]"
        );
        FaultInjectingSource {
            inner,
            cfg,
            attempts: Mutex::new(HashMap::new()),
            reads: AtomicU64::new(0),
            transient: AtomicU64::new(0),
            permanent: AtomicU64::new(0),
            spikes: AtomicU64::new(0),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            reads: self.reads.load(Ordering::Relaxed),
            transient: self.transient.load(Ordering::Relaxed),
            permanent: self.permanent.load(Ordering::Relaxed),
            spikes: self.spikes.load(Ordering::Relaxed),
        }
    }

    /// True when `(dataset, page)` is poisoned under this seed (exposed so
    /// tests can predict which queries must fail).
    pub fn page_is_poisoned(&self, dataset: DatasetId, page: u64) -> bool {
        self.cfg.page_is_poisoned(dataset, page)
    }
}

impl<S: DataSource> DataSource for FaultInjectingSource<S> {
    fn read_page(&self, dataset: DatasetId, index: u64, page_size: usize) -> io::Result<Vec<u8>> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let attempt = {
            // Poison recovery: fault bookkeeping must not take workers
            // down with a panicked peer.
            let mut map = match self.attempts.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            let a = map.entry((dataset, index)).or_insert(0);
            let cur = *a;
            *a += 1;
            cur
        };
        if self.page_is_poisoned(dataset, index) {
            self.permanent.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("injected permanent fault: dataset {dataset:?} page {index}"),
            ));
        }
        if self.cfg.latency_spike_rate > 0.0
            && draw(self.cfg.seed, SALT_SPIKE, dataset, index, attempt)
                < self.cfg.latency_spike_rate
        {
            self.spikes.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.cfg.latency_spike);
        }
        if self.cfg.transient_rate > 0.0
            && draw(self.cfg.seed, SALT_TRANSIENT, dataset, index, attempt)
                < self.cfg.transient_rate
        {
            self.transient.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!(
                    "injected transient fault: dataset {dataset:?} page {index} attempt {attempt}"
                ),
            ));
        }
        self.inner.read_page(dataset, index, page_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SyntheticSource;

    fn faulty(cfg: FaultConfig) -> FaultInjectingSource<SyntheticSource> {
        FaultInjectingSource::new(SyntheticSource::new(), cfg)
    }

    #[test]
    fn zero_rates_are_a_passthrough() {
        let s = faulty(FaultConfig::none());
        for p in 0..50 {
            let got = s.read_page(DatasetId(1), p, 128).unwrap();
            let want = SyntheticSource::new()
                .read_page(DatasetId(1), p, 128)
                .unwrap();
            assert_eq!(got, want);
        }
        let st = s.stats();
        assert_eq!(st.reads, 50);
        assert_eq!((st.transient, st.permanent, st.spikes), (0, 0, 0));
    }

    #[test]
    fn transient_faults_are_deterministic_per_seed() {
        let outcomes = |seed: u64| -> Vec<bool> {
            let s = faulty(FaultConfig::transient(0.3, seed));
            (0..200)
                .map(|p| s.read_page(DatasetId(0), p, 64).is_err())
                .collect()
        };
        assert_eq!(outcomes(7), outcomes(7), "same seed must replay exactly");
        assert_ne!(outcomes(7), outcomes(8), "different seeds must differ");
        let errs = outcomes(7).iter().filter(|&&e| e).count();
        // 200 draws at 30%: comfortably within [10%, 50%].
        assert!((20..100).contains(&errs), "observed {errs} faults");
    }

    #[test]
    fn transient_fault_clears_on_retry_attempts() {
        // Rate well below 1: some attempt must eventually succeed, and the
        // attempt counter advances the draw each retry.
        let s = faulty(FaultConfig::transient(0.5, 3));
        for p in 0..20 {
            let mut ok = false;
            for _ in 0..64 {
                if s.read_page(DatasetId(2), p, 32).is_ok() {
                    ok = true;
                    break;
                }
            }
            assert!(ok, "page {p} never cleared its transient fault");
        }
        assert!(s.stats().transient > 0);
    }

    #[test]
    fn rate_one_transient_always_fails() {
        let s = faulty(FaultConfig::transient(1.0, 1));
        for _ in 0..10 {
            let e = s.read_page(DatasetId(0), 0, 32).unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::Interrupted);
            assert!(is_transient(&e));
        }
    }

    #[test]
    fn permanent_faults_persist_across_attempts() {
        let cfg = FaultConfig::none().with_permanent(0.2);
        let cfg = FaultConfig { seed: 11, ..cfg };
        let s = faulty(cfg);
        let mut poisoned = 0;
        for p in 0..100 {
            if s.page_is_poisoned(DatasetId(5), p) {
                poisoned += 1;
                for _ in 0..3 {
                    let e = s.read_page(DatasetId(5), p, 32).unwrap_err();
                    assert_eq!(e.kind(), io::ErrorKind::InvalidData);
                    assert!(!is_transient(&e));
                }
            } else {
                assert!(s.read_page(DatasetId(5), p, 32).is_ok());
            }
        }
        assert!((5..50).contains(&poisoned), "poisoned {poisoned}/100");
        assert_eq!(s.stats().permanent, poisoned * 3);
    }

    #[test]
    fn latency_spikes_delay_reads() {
        let cfg = FaultConfig::none().with_spikes(1.0, Duration::from_millis(5));
        let s = faulty(cfg);
        let t0 = vmqs_core::clock::now();
        s.read_page(DatasetId(0), 0, 32).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(4));
        assert_eq!(s.stats().spikes, 1);
    }

    #[test]
    fn is_transient_classifies_kinds() {
        for k in [
            io::ErrorKind::Interrupted,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::TimedOut,
        ] {
            assert!(is_transient(&io::Error::new(k, "x")), "{k:?}");
        }
        for k in [
            io::ErrorKind::InvalidData,
            io::ErrorKind::NotFound,
            io::ErrorKind::PermissionDenied,
            io::ErrorKind::UnexpectedEof,
        ] {
            assert!(!is_transient(&io::Error::new(k, "x")), "{k:?}");
        }
    }

    #[test]
    #[should_panic(expected = "fault rates")]
    fn out_of_range_rate_rejected() {
        faulty(FaultConfig::transient(1.5, 0));
    }

    #[test]
    fn transient_streak_matches_injected_attempts() {
        // The streak predicate must agree with what the injecting source
        // actually does attempt by attempt.
        let cfg = FaultConfig::transient(0.5, 21);
        let s = faulty(cfg);
        for p in 0..40u64 {
            let streak = cfg.transient_streak(DatasetId(1), p, 16);
            for a in 0..streak {
                assert!(
                    s.read_page(DatasetId(1), p, 32).is_err(),
                    "page {p} attempt {a} inside streak must fail"
                );
            }
            assert!(
                s.read_page(DatasetId(1), p, 32).is_ok(),
                "page {p} attempt {streak} after streak must succeed"
            );
        }
        assert_eq!(FaultConfig::none().transient_streak(DatasetId(0), 0, 8), 0);
        assert_eq!(
            FaultConfig::transient(1.0, 0).transient_streak(DatasetId(0), 0, 8),
            8,
            "rate 1.0 saturates the cap"
        );
    }
}
