//! # vmqs-storage
//!
//! Data sources and the disk performance model backing the Page Space
//! Manager.
//!
//! The paper's evaluation ran against multi-gigabyte digitized slides on a
//! local disk farm with the OS file cache disabled. This crate substitutes
//! that hardware (see DESIGN.md §2):
//!
//! * [`SyntheticSource`] generates deterministic page contents — pixel
//!   values never affect scheduling decisions, so synthetic data preserves
//!   all studied behaviour;
//! * [`FileSource`] serves pages from real files for end-to-end runs;
//! * [`ThrottledSource`] replays 2002-era disk timing via [`DiskModel`];
//! * [`FaultInjectingSource`] injects seeded, deterministic I/O failures
//!   (transient, permanent, latency spikes) for robustness testing;
//! * [`DiskModel`] is also consumed by the discrete-event simulator to
//!   compute virtual-time I/O costs, so both engines share one disk model;
//! * [`SpillStore`] is the Data Store's tier-2 spill target: evicted warm
//!   entries serialize to checksummed frames on disk and re-heat later at
//!   disk cost instead of recompute cost (DESIGN.md §14);
//! * [`ChaosConfig`] injects seeded *process* failures (worker panics,
//!   crash-mid-spill, frame bit flips) for the failure-containment layer
//!   (DESIGN.md §15).

#![warn(missing_docs)]

mod chaos;
mod disk;
mod fault;
mod source;
mod spill;

pub use chaos::ChaosConfig;
pub use disk::DiskModel;
pub use fault::{is_transient, FaultConfig, FaultInjectingSource, FaultStats};
pub use source::{DataSource, FileSource, SyntheticSource, ThrottledSource};
pub use spill::{crc32, RecoveredFrame, RecoveryReport, SpillStats, SpillStore, SPILL_DEVICE};
