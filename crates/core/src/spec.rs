//! The application-developer contract: user-defined query predicates.
//!
//! The middleware of the paper is application-neutral; an application plugs
//! in by implementing four functions over its predicate meta-information
//! (paper §2, Eqs. 1–3 plus `qoutsize`):
//!
//! * `cmp(M_i, M_j)` — is the intermediate result described by `M_i` exactly
//!   the answer for `M_j`? (common-subexpression elimination),
//! * `overlap(M_i, M_j) ∈ [0, 1]` — fraction of `M_j`'s answer derivable
//!   from the result described by `M_i` through the `project` transformation,
//! * `qoutsize(M_i)` — output size in bytes (possibly an estimate),
//! * `qinputsize(M_i)` — input size in bytes, used by the SJF ranking
//!   strategy as a proxy for execution time (paper §4, strategy 6).
//!
//! The data-transforming `project` function itself lives with the execution
//! engines (it needs access to actual bytes); the scheduling layer only needs
//! the four metadata functions above.

/// Predicate meta-information for a schedulable query.
///
/// Implementations must be cheap to clone (they are stored in the scheduling
/// graph, the data store, and workload logs).
pub trait QuerySpec: Clone + Send + Sync + 'static {
    /// Eq. 1: `true` when a result computed for `self` is *exactly* the
    /// answer for `other` (complete reuse / common subexpression).
    fn cmp(&self, other: &Self) -> bool;

    /// Eq. 2: how much of `other`'s answer can be computed from a result for
    /// `self` via the application's `project` transformation. Must lie in
    /// `[0, 1]`; `0` means no reuse (including the case where the
    /// transformation is not possible in this direction, e.g. a
    /// lower-resolution image cannot produce a higher-resolution one).
    fn overlap(&self, other: &Self) -> f64;

    /// Output size in bytes (`qoutsize` of the paper). May be an estimate
    /// for applications whose exact output size is only known at execution
    /// time.
    fn qoutsize(&self) -> u64;

    /// Input size in bytes (`qinputsize`): total size of the stored data
    /// that must be scanned to answer the query from scratch. Used by SJF
    /// as a relative execution-time estimate.
    fn qinputsize(&self) -> u64;

    /// Reusable bytes of a `self`-result when answering `other`; this is the
    /// scheduling-graph edge weight `w_{self,other} = overlap(self, other) *
    /// qoutsize(self)` (paper §4).
    fn reuse_bytes(&self, other: &Self) -> u64 {
        let ov = self.overlap(other);
        debug_assert!((0.0..=1.0).contains(&ov), "overlap out of range: {ov}");
        (ov * self.qoutsize() as f64).round() as u64
    }

    /// Keys of the stored-data chunks this query must scan, used by the
    /// data-driven ChunkBatch strategy to group waiting queries by chunk
    /// affinity (two queries with disjoint *outputs* can still share all
    /// their *input* chunks). Keys must be stable for a given predicate and
    /// globally unique across datasets (mix the dataset id in). The default
    /// reports no chunks, which makes ChunkBatch age-only (FIFO) for
    /// applications that do not opt in.
    fn chunk_keys(&self) -> Vec<u64> {
        Vec::new()
    }
}

/// Minimal [`QuerySpec`] implementation for tests and benchmarks of the
/// scheduling machinery (not part of the public API surface proper).
#[doc(hidden)]
pub mod testutil {
    use super::QuerySpec;

    /// A minimal 1-D interval predicate used by the core crate's own tests:
    /// the "dataset" is the integer line, a query covers `[start, start+len)`
    /// and produces one output byte per covered unit divided by `scale`.
    /// A result at scale `s` can be projected to scale `t` iff `t % s == 0`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct IntervalSpec {
        pub start: u64,
        pub len: u64,
        pub scale: u64,
    }

    impl IntervalSpec {
        pub fn new(start: u64, len: u64, scale: u64) -> Self {
            assert!(scale >= 1);
            IntervalSpec { start, len, scale }
        }

        fn end(&self) -> u64 {
            self.start + self.len
        }

        fn inter_len(&self, other: &Self) -> u64 {
            let lo = self.start.max(other.start);
            let hi = self.end().min(other.end());
            hi.saturating_sub(lo)
        }
    }

    impl crate::spatial::SpatialSpec for IntervalSpec {
        fn region_key(&self) -> (crate::ids::DatasetId, crate::geom::Rect) {
            (
                crate::ids::DatasetId(0),
                crate::geom::Rect::new(self.start as u32, 0, self.len.max(1) as u32, 1),
            )
        }
    }

    impl QuerySpec for IntervalSpec {
        fn cmp(&self, other: &Self) -> bool {
            self == other
        }

        fn overlap(&self, other: &Self) -> f64 {
            if other.len == 0 || !other.scale.is_multiple_of(self.scale) {
                return 0.0;
            }
            let frac = self.inter_len(other) as f64 / other.len as f64;
            frac * (self.scale as f64 / other.scale as f64)
        }

        fn qoutsize(&self) -> u64 {
            self.len / self.scale
        }

        fn qinputsize(&self) -> u64 {
            self.len
        }

        /// One chunk per 64 units of the integer line, independent of
        /// `scale` — two queries at different scales over the same range
        /// scan the same stored chunks.
        fn chunk_keys(&self) -> Vec<u64> {
            if self.len == 0 {
                return Vec::new();
            }
            let first = self.start / 64;
            let last = (self.end() - 1) / 64;
            (first..=last).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::IntervalSpec;
    use super::*;

    #[test]
    fn cmp_is_exact_equality() {
        let a = IntervalSpec::new(0, 100, 2);
        assert!(a.cmp(&a.clone()));
        assert!(!a.cmp(&IntervalSpec::new(0, 100, 4)));
    }

    #[test]
    fn overlap_zero_for_incompatible_scale() {
        let coarse = IntervalSpec::new(0, 100, 4);
        let fine = IntervalSpec::new(0, 100, 2);
        // A coarse result cannot answer a finer query.
        assert_eq!(coarse.overlap(&fine), 0.0);
        // But the fine result can answer the coarse query.
        assert!(fine.overlap(&coarse) > 0.0);
    }

    #[test]
    fn overlap_in_unit_range_and_full_for_identical() {
        let a = IntervalSpec::new(10, 50, 1);
        assert_eq!(a.overlap(&a.clone()), 1.0);
        let b = IntervalSpec::new(35, 50, 1);
        let ov = a.overlap(&b);
        assert!(ov > 0.0 && ov < 1.0);
    }

    #[test]
    fn reuse_bytes_matches_definition() {
        let a = IntervalSpec::new(0, 100, 1); // qoutsize = 100
        let b = IntervalSpec::new(50, 100, 1);
        // overlap(a -> b) = 50/100 = 0.5; reuse = 0.5 * 100 = 50 bytes.
        assert_eq!(a.reuse_bytes(&b), 50);
    }

    #[test]
    fn chunk_keys_cover_the_scanned_range_scale_free() {
        let a = IntervalSpec::new(0, 100, 1); // units [0, 100) → chunks 0, 1
        assert_eq!(a.chunk_keys(), vec![0, 1]);
        let b = IntervalSpec::new(0, 100, 2); // same input chunks, coarser out
        assert_eq!(b.chunk_keys(), a.chunk_keys());
        assert_eq!(IntervalSpec::new(64, 64, 1).chunk_keys(), vec![1]);
        assert!(IntervalSpec::new(10, 0, 1).chunk_keys().is_empty());
    }
}
