//! The single sanctioned wall-clock origin.
//!
//! Every other module reads time through [`now`] (monotonic) or
//! [`unix_now`] (calendar). Calling `Instant::now()` / `SystemTime::now()`
//! anywhere else is forbidden by two independent guards:
//!
//! * `clippy.toml` lists both under `disallowed-methods`, and
//! * `cargo xtask lint` scans for raw call sites (rule `wall-clock`).
//!
//! Funnelling time through one module keeps engine behaviour testable
//! (a future virtual clock swaps one function, not fifty call sites)
//! and keeps wall-clock reads out of conformance surfaces: the
//! simulator and the golden traces must never depend on host time.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Reads the monotonic clock.
///
/// This is the only permitted `Instant::now()` call site in the
/// workspace.
#[allow(clippy::disallowed_methods)] // lint:allow(wall-clock): the origin
pub fn now() -> Instant {
    Instant::now()
}

/// Seconds since the Unix epoch (calendar time, e.g. for report
/// headers). Never used on scheduling or conformance paths.
#[allow(clippy::disallowed_methods)] // lint:allow(wall-clock): the origin
pub fn unix_now() -> f64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic() {
        let a = now();
        let b = now();
        assert!(b >= a);
    }

    #[test]
    fn unix_epoch_sane() {
        // Any real host is past 2020 and before year ~2100.
        let t = unix_now();
        assert!(t > 1.5e9 && t < 4.2e9);
    }
}
