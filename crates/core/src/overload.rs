//! Overload-management policy: bounded admission, per-client token-bucket
//! rate limiting, pressure estimation, and shed-victim selection.
//!
//! Everything in this module is pure and deterministic so the threaded
//! server (real time) and the discrete-event simulator (virtual time) can
//! run the *identical* policy and produce golden-traceable admission /
//! degradation / shed decisions. Time enters only as `f64` seconds from
//! an engine-chosen origin; no wall clock is read here.
//!
//! The decision ladder, applied at submit/arrival time (DESIGN.md §10):
//!
//! 1. **Rate limit** — a token bucket per client; an empty bucket rejects
//!    the query with a `retry_after` hint.
//! 2. **Bounded queue** — `waiting >= max_pending` rejects outright.
//! 3. **Degrade** — pressure at or above `degrade_threshold` downgrades
//!    the query to its cheaper plan (Virtual Microscope: `Average` →
//!    `Subsample`) when the application offers one.
//! 4. **Shed** — pressure at or above `shed_threshold` evicts the
//!    largest-`qinputsize` WAITING queries (newest first on ties) until
//!    pressure falls below the threshold. This mirrors the SJF rationale
//!    in the simulator's `SchedPolicy::IoAware`: under congestion the
//!    biggest jobs hurt everyone else the most.

use crate::ids::QueryId;

/// Overload-management knobs shared by both engines. The default
/// configuration disables every mechanism, so existing workloads are
/// untouched unless a knob is turned.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverloadConfig {
    /// Maximum number of WAITING queries admitted; `0` means unbounded
    /// (admission control off).
    pub max_pending: usize,
    /// Sustained per-client admission rate in queries/second; `0.0`
    /// disables rate limiting. The burst size is `max(rate, 1.0)`.
    pub client_rate: f64,
    /// Pressure level at or above which admissible queries are downgraded
    /// to their cheaper plan. Values above `1.0` (pressure is capped at
    /// `1.0`) disable degradation.
    pub degrade_threshold: f64,
    /// Pressure level at or above which WAITING queries are shed.
    /// Values above `1.0` disable shedding.
    pub shed_threshold: f64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            max_pending: 0,
            client_rate: 0.0,
            degrade_threshold: f64::INFINITY,
            shed_threshold: f64::INFINITY,
        }
    }
}

impl OverloadConfig {
    /// True when any overload mechanism is active. Engines use this to
    /// skip pressure-signal gathering entirely on the default config.
    pub fn enabled(&self) -> bool {
        self.max_pending > 0
            || self.client_rate > 0.0
            || self.degrade_threshold <= 1.0
            || self.shed_threshold <= 1.0
    }

    /// True when degradation can ever trigger.
    pub fn degrades(&self) -> bool {
        self.degrade_threshold <= 1.0
    }

    /// True when shedding can ever trigger.
    pub fn sheds(&self) -> bool {
        self.shed_threshold <= 1.0
    }

    /// Builder-style admission-bound override (`0` = unbounded).
    pub fn with_max_pending(mut self, n: usize) -> Self {
        self.max_pending = n;
        self
    }

    /// Builder-style per-client rate override (queries/second, `0.0` =
    /// off).
    pub fn with_client_rate(mut self, qps: f64) -> Self {
        assert!(qps >= 0.0, "client rate must be non-negative");
        self.client_rate = qps;
        self
    }

    /// Builder-style degradation-threshold override.
    pub fn with_degrade_threshold(mut self, level: f64) -> Self {
        self.degrade_threshold = level;
        self
    }

    /// Builder-style shed-threshold override.
    pub fn with_shed_threshold(mut self, level: f64) -> Self {
        self.shed_threshold = level;
        self
    }
}

/// Instantaneous load inputs for the pressure estimate. `queue_depth`
/// counts the query being admitted; the secondary signals are ratios in
/// `[0, 1]` gathered from the Data Store and Page Space *before* the
/// scheduler lock is taken (one-lock-at-a-time rule).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PressureSignals {
    /// WAITING queries including the one being admitted.
    pub queue_depth: usize,
    /// Admission bound (`OverloadConfig::max_pending`); `0` = unbounded.
    pub max_pending: usize,
    /// Data Store bytes used over budget, in `[0, 1]`.
    pub ds_occupancy: f64,
    /// Page Space miss ratio `misses / (hits + misses)`, in `[0, 1]`.
    pub ps_miss_ratio: f64,
    /// I/O retry ratio `retries / (pages + retries)`, in `[0, 1]`.
    pub retry_ratio: f64,
}

impl PressureSignals {
    /// The pressure level in `[0, 1]`. Queue occupancy is the primary
    /// signal — `queue_depth / max_pending` — amplified by up to 2x when
    /// the Data Store is full and I/O is struggling:
    ///
    /// ```text
    /// level = min(1, queue_fraction * (1 + ds/2 + miss/4 + retry/4))
    /// ```
    ///
    /// With a cold cache and clean I/O the level equals the queue
    /// fraction exactly, which keeps batch-time admission decisions
    /// bit-identical between the server and the simulator. A full Data
    /// Store alone never sheds anything (it is a cache, not a debt);
    /// it only makes a crowded queue count for more.
    pub fn level(&self) -> f64 {
        if self.max_pending == 0 {
            return 0.0;
        }
        let qf = (self.queue_depth as f64 / self.max_pending as f64).clamp(0.0, 1.0);
        let amp = 1.0
            + 0.5 * self.ds_occupancy.clamp(0.0, 1.0)
            + 0.25 * self.ps_miss_ratio.clamp(0.0, 1.0)
            + 0.25 * self.retry_ratio.clamp(0.0, 1.0);
        (qf * amp).min(1.0)
    }
}

/// A deterministic token bucket. Time is `f64` seconds from any fixed
/// origin; the same call sequence yields the same accept/reject decisions
/// in real and virtual time.
#[derive(Clone, Copy, Debug)]
pub struct TokenBucket {
    tokens: f64,
    last: f64,
    rate: f64,
    burst: f64,
}

impl TokenBucket {
    /// A bucket refilling at `rate` tokens/second, starting full with a
    /// burst capacity of `max(rate, 1.0)` (a 1 q/s client may always send
    /// its first query immediately).
    pub fn new(rate: f64) -> Self {
        let burst = rate.max(1.0);
        TokenBucket {
            tokens: burst,
            last: 0.0,
            rate,
            burst,
        }
    }

    fn refill(&mut self, now: f64) {
        if now > self.last {
            self.tokens = (self.tokens + (now - self.last) * self.rate).min(self.burst);
            self.last = now;
        }
    }

    /// Takes one token at time `now` (seconds); `false` means the caller
    /// is over its rate and should be rejected.
    pub fn try_take(&mut self, now: f64) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Seconds from `now` until a token will be available (0 if one
    /// already is). Used for the `retry_after` hint on rejection.
    pub fn time_to_token(&self, now: f64) -> f64 {
        let mut b = *self;
        b.refill(now);
        if b.tokens >= 1.0 || b.rate <= 0.0 {
            0.0
        } else {
            (1.0 - b.tokens) / b.rate
        }
    }
}

/// A [`TokenBucket`] shareable across threads (admission runs on every
/// submitting client thread in the real server).
///
/// The bucket state sits behind the workspace sync facade
/// ([`crate::sync::Mutex`]), so under `--cfg loom` the
/// `token_bucket_admission_cap` model can prove the burst cap holds on
/// every interleaving: refill-and-take is one critical section, never a
/// read-check-write spread over two.
#[derive(Debug)]
pub struct SharedTokenBucket {
    inner: crate::sync::Mutex<TokenBucket>,
}

impl SharedTokenBucket {
    /// A shareable bucket refilling at `rate` tokens/second (see
    /// [`TokenBucket::new`]).
    pub fn new(rate: f64) -> Self {
        SharedTokenBucket {
            inner: crate::sync::Mutex::new(TokenBucket::new(rate)),
        }
    }

    /// Takes one token at time `now` (seconds); `false` means the caller
    /// is over its rate and should be rejected.
    pub fn try_take(&self, now: f64) -> bool {
        self.inner.lock().try_take(now)
    }

    /// Seconds from `now` until a token will be available.
    pub fn time_to_token(&self, now: f64) -> f64 {
        self.inner.lock().time_to_token(now)
    }
}

/// Outcome of the lock-free admission fast path (see
/// [`fast_path_admissible`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FastAdmit {
    /// Admit undegraded; the full ladder would decide identically, so it
    /// need not run.
    Admit,
    /// Reject: the bounded queue is full. Identical to the ladder's
    /// queue-full rejection.
    RejectFull,
    /// The decision may depend on secondary pressure signals or mutable
    /// state (token buckets) — run the full ladder.
    Escalate,
}

/// Decides whether an admission decision can be taken from a queue-depth
/// read alone, with *provably* the same outcome as the full ladder.
///
/// `queue_depth` is the current number of WAITING queries, *excluding*
/// the query being admitted (the level bound adds it back, matching the
/// ladder's `depth + 1` convention).
///
/// The proof obligation is the pressure amplification bound: secondary
/// signals multiply the queue fraction by at most
/// `1 + 0.5 + 0.25 + 0.25 = 2.0` ([`PressureSignals::level`]), so
///
/// ```text
/// level <= 2 * (queue_depth + 1) / max_pending
/// ```
///
/// whatever the Data Store / Page Space state. When that bound is
/// strictly below every active degrade/shed threshold, the ladder cannot
/// degrade or shed either, and plain admission is the unique outcome —
/// no global lock or secondary-signal gathering needed. Rate limiting
/// always escalates (bucket state is mutable), and a near-threshold
/// depth escalates so the exact level decides.
pub fn fast_path_admissible(cfg: &OverloadConfig, queue_depth: usize) -> FastAdmit {
    if cfg.client_rate > 0.0 {
        return FastAdmit::Escalate;
    }
    if cfg.max_pending > 0 && queue_depth >= cfg.max_pending {
        return FastAdmit::RejectFull;
    }
    // With an unbounded queue the level is identically 0, so degrade and
    // shed can never fire regardless of thresholds.
    if cfg.max_pending == 0 {
        return FastAdmit::Admit;
    }
    let mut threshold = f64::INFINITY;
    if cfg.degrades() {
        threshold = threshold.min(cfg.degrade_threshold);
    }
    if cfg.sheds() {
        threshold = threshold.min(cfg.shed_threshold);
    }
    if threshold == f64::INFINITY {
        return FastAdmit::Admit;
    }
    let qf_next = (queue_depth + 1) as f64 / cfg.max_pending as f64;
    if 2.0 * qf_next < threshold {
        FastAdmit::Admit
    } else {
        FastAdmit::Escalate
    }
}

/// Picks the query to shed from the WAITING set: largest `qinputsize`
/// first (the SJF/IoAware rationale — under congestion the biggest I/O
/// jobs delay everyone), breaking ties by latest arrival (shed the
/// newest), then by largest id. Candidates are `(id, qinputsize,
/// arrival_seq)` tuples; returns `None` on an empty set.
pub fn shed_victim<I>(candidates: I) -> Option<QueryId>
where
    I: IntoIterator<Item = (QueryId, u64, u64)>,
{
    candidates
        .into_iter()
        .max_by_key(|&(id, size, arrival)| (size, arrival, id))
        .map(|(id, _, _)| id)
}

/// A coarse `retry_after` estimate for rejected queries: the time to
/// drain the current queue at the observed mean service time, with a
/// floor so clients never busy-spin. Not part of the golden trace.
pub fn retry_after_estimate(queue_depth: usize, threads: usize, mean_service_s: f64) -> f64 {
    let per_slot = queue_depth as f64 / threads.max(1) as f64;
    let service = if mean_service_s > 0.0 {
        mean_service_s
    } else {
        0.05
    };
    (per_slot * service).max(0.01)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_fully_disabled() {
        let c = OverloadConfig::default();
        assert!(!c.enabled());
        assert!(!c.degrades());
        assert!(!c.sheds());
        let s = PressureSignals {
            queue_depth: 1000,
            max_pending: c.max_pending,
            ..Default::default()
        };
        assert_eq!(s.level(), 0.0, "unbounded queue exerts no pressure");
    }

    #[test]
    fn any_knob_enables() {
        assert!(OverloadConfig {
            max_pending: 1,
            ..Default::default()
        }
        .enabled());
        assert!(OverloadConfig {
            client_rate: 0.5,
            ..Default::default()
        }
        .enabled());
        assert!(OverloadConfig {
            degrade_threshold: 0.5,
            ..Default::default()
        }
        .enabled());
        assert!(OverloadConfig {
            shed_threshold: 1.0,
            ..Default::default()
        }
        .enabled());
    }

    #[test]
    fn cold_cache_pressure_equals_queue_fraction() {
        let s = PressureSignals {
            queue_depth: 4,
            max_pending: 8,
            ..Default::default()
        };
        assert!((s.level() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn secondary_signals_amplify_but_cap_at_one() {
        let base = PressureSignals {
            queue_depth: 4,
            max_pending: 8,
            ..Default::default()
        };
        let hot = PressureSignals {
            ds_occupancy: 1.0,
            ps_miss_ratio: 1.0,
            retry_ratio: 1.0,
            ..base
        };
        assert!(hot.level() > base.level());
        assert!((hot.level() - 1.0).abs() < 1e-12, "0.5 * 2.0 caps at 1.0");
        let full = PressureSignals {
            queue_depth: 99,
            max_pending: 8,
            ds_occupancy: 1.0,
            ..base
        };
        assert_eq!(full.level(), 1.0);
    }

    #[test]
    fn full_ds_alone_never_pressures_an_empty_queue() {
        let s = PressureSignals {
            queue_depth: 0,
            max_pending: 8,
            ds_occupancy: 1.0,
            ps_miss_ratio: 1.0,
            retry_ratio: 1.0,
        };
        assert_eq!(s.level(), 0.0);
    }

    #[test]
    fn token_bucket_enforces_sustained_rate() {
        let mut b = TokenBucket::new(2.0);
        // Burst of 2 at t=0, then refill at 2/s.
        assert!(b.try_take(0.0));
        assert!(b.try_take(0.0));
        assert!(!b.try_take(0.0));
        assert!(b.time_to_token(0.0) > 0.0);
        assert!(b.try_take(0.5), "one token refilled after 0.5 s at 2/s");
        assert!(!b.try_take(0.5));
        // Long idle refills to burst, not beyond.
        assert!(b.try_take(100.0));
        assert!(b.try_take(100.0));
        assert!(!b.try_take(100.0));
    }

    #[test]
    fn token_bucket_is_deterministic() {
        let times = [0.0, 0.1, 0.4, 0.4, 1.0, 2.5, 2.5, 2.5];
        let run = || {
            let mut b = TokenBucket::new(1.5);
            times.iter().map(|&t| b.try_take(t)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn token_bucket_ignores_time_going_backwards() {
        let mut b = TokenBucket::new(1.0);
        assert!(b.try_take(5.0));
        // A non-monotone clock sample must not refill or panic.
        assert!(!b.try_take(4.0));
        assert!(b.try_take(6.0));
    }

    #[test]
    fn shed_victim_prefers_largest_then_newest() {
        let c = [
            (QueryId(1), 100, 0),
            (QueryId(2), 300, 1),
            (QueryId(3), 300, 2),
            (QueryId(4), 200, 3),
        ];
        assert_eq!(shed_victim(c), Some(QueryId(3)), "largest size, newest");
        assert_eq!(shed_victim([]), None);
    }

    #[test]
    fn fast_path_rate_limiting_always_escalates() {
        let cfg = OverloadConfig::default().with_client_rate(2.0);
        assert_eq!(fast_path_admissible(&cfg, 0), FastAdmit::Escalate);
    }

    #[test]
    fn fast_path_unbounded_queue_admits() {
        assert_eq!(
            fast_path_admissible(&OverloadConfig::default(), 10_000),
            FastAdmit::Admit
        );
        // Degrade/shed thresholds are irrelevant when level() is pinned
        // to 0 by max_pending == 0.
        let cfg = OverloadConfig::default()
            .with_degrade_threshold(0.1)
            .with_shed_threshold(0.2);
        assert_eq!(fast_path_admissible(&cfg, 10_000), FastAdmit::Admit);
    }

    #[test]
    fn fast_path_rejects_full_queue() {
        let cfg = OverloadConfig::default().with_max_pending(8);
        assert_eq!(fast_path_admissible(&cfg, 8), FastAdmit::RejectFull);
        assert_eq!(fast_path_admissible(&cfg, 9), FastAdmit::RejectFull);
        assert_eq!(fast_path_admissible(&cfg, 7), FastAdmit::Admit);
    }

    #[test]
    fn fast_path_escalates_near_thresholds() {
        let cfg = OverloadConfig::default()
            .with_max_pending(8)
            .with_degrade_threshold(0.5)
            .with_shed_threshold(0.9);
        // depth 0 -> worst-case level 2 * 1/8 = 0.25 < 0.5: fast admit.
        assert_eq!(fast_path_admissible(&cfg, 0), FastAdmit::Admit);
        // depth 1 -> bound 0.5, not strictly below 0.5: escalate.
        assert_eq!(fast_path_admissible(&cfg, 1), FastAdmit::Escalate);
        assert_eq!(fast_path_admissible(&cfg, 7), FastAdmit::Escalate);
    }

    /// The soundness property behind the fast path: whenever it answers
    /// Admit or RejectFull, the full ladder reaches the same decision for
    /// *every* admissible secondary-signal combination.
    #[test]
    fn fast_path_matches_full_ladder_under_any_signals() {
        let signal_grid = [0.0, 0.3, 1.0];
        for max_pending in [0usize, 4, 8, 32] {
            for (dt, st) in [
                (f64::INFINITY, f64::INFINITY),
                (0.5, f64::INFINITY),
                (f64::INFINITY, 0.9),
                (0.5, 0.9),
                (0.2, 0.3),
            ] {
                let cfg = OverloadConfig::default()
                    .with_max_pending(max_pending)
                    .with_degrade_threshold(dt)
                    .with_shed_threshold(st);
                for depth in 0..=40 {
                    let fast = fast_path_admissible(&cfg, depth);
                    for &ds in &signal_grid {
                        for &miss in &signal_grid {
                            for &retry in &signal_grid {
                                // The ladder's decision with these signals.
                                let full_reject = cfg.max_pending > 0 && depth >= cfg.max_pending;
                                let level = PressureSignals {
                                    queue_depth: depth + 1,
                                    max_pending: cfg.max_pending,
                                    ds_occupancy: ds,
                                    ps_miss_ratio: miss,
                                    retry_ratio: retry,
                                }
                                .level();
                                match fast {
                                    FastAdmit::RejectFull => assert!(full_reject),
                                    FastAdmit::Admit => {
                                        assert!(!full_reject);
                                        assert!(
                                            level < cfg.degrade_threshold
                                                && level < cfg.shed_threshold,
                                            "fast admit but ladder would act: \
                                             level {level} cfg {cfg:?} depth {depth}"
                                        );
                                    }
                                    FastAdmit::Escalate => {}
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn retry_after_has_a_floor_and_scales_with_depth() {
        assert!(retry_after_estimate(0, 4, 0.0) >= 0.01);
        let shallow = retry_after_estimate(4, 4, 0.1);
        let deep = retry_after_estimate(16, 4, 0.1);
        assert!(deep > shallow);
    }
}
