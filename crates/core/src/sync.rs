//! Synchronization facade for every concurrency-critical primitive in
//! the workspace.
//!
//! Code that participates in a loom model — the Data Store entry state
//! machine, the Page Space in-flight claim dedup, the metrics registry
//! counters, the overload token bucket, and the engine's lock/condvar
//! fabric — must import its primitives from here instead of `std::sync`
//! or `parking_lot` directly:
//!
//! * In a normal build this re-exports `std::sync::Arc`,
//!   `std::sync::atomic`, and the vendored parking_lot `Mutex` /
//!   `Condvar` / `RwLock` — zero-cost, identical to what the code used
//!   before.
//! * Under `RUSTFLAGS="--cfg loom"` it re-exports the vendored loom
//!   model checker's primitives instead. Outside `loom::model` those
//!   pass through to std, so the whole regular test suite still runs;
//!   inside a model every operation becomes a scheduling point and the
//!   `tests/loom.rs` models explore interleavings exhaustively.
//!
//! The two families expose the same (parking_lot-style, non-poisoning)
//! API, so switching is purely a matter of which `--cfg` is active.

#[cfg(loom)]
pub use loom::sync::{
    Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(not(loom))]
pub use parking_lot::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(not(loom))]
pub use std::sync::Arc;

/// Atomic types and orderings (loom-modeled under `--cfg loom`).
pub mod atomic {
    #[cfg(loom)]
    pub use loom::sync::atomic::{
        fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };

    #[cfg(not(loom))]
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

/// Thread spawn/join routed through the model scheduler under loom.
pub mod thread {
    #[cfg(loom)]
    pub use loom::thread::{spawn, yield_now, JoinHandle};

    #[cfg(not(loom))]
    pub use std::thread::{spawn, yield_now, JoinHandle};
}
