//! Axis-aligned rectangle algebra over image pixel coordinates.
//!
//! Virtual Microscope queries and cached intermediate results are all
//! described by 2-D rectangular regions at the dataset's base resolution.
//! Reuse detection (the `overlap` operator of the paper's Eq. 2/4) and
//! sub-query generation ("compute the portions not answered from cache")
//! reduce to intersection and region subtraction on these rectangles.
//!
//! Rectangles are half-open: a rect with origin `(x, y)` and size `(w, h)`
//! covers pixels with `x <= px < x + w` and `y <= py < y + h`. Empty
//! rectangles (`w == 0 || h == 0`) are permitted and behave as the empty set.

/// A half-open axis-aligned rectangle in base-resolution pixel coordinates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Rect {
    /// Left edge (inclusive).
    pub x: u32,
    /// Top edge (inclusive).
    pub y: u32,
    /// Width in pixels.
    pub w: u32,
    /// Height in pixels.
    pub h: u32,
}

impl Rect {
    /// Creates a rectangle from origin and size.
    #[inline]
    pub const fn new(x: u32, y: u32, w: u32, h: u32) -> Self {
        Rect { x, y, w, h }
    }

    /// Creates a rectangle from inclusive-exclusive edges.
    /// Returns an empty rect when `x1 <= x0` or `y1 <= y0`.
    #[inline]
    pub fn from_edges(x0: u32, y0: u32, x1: u32, y1: u32) -> Self {
        Rect {
            x: x0,
            y: y0,
            w: x1.saturating_sub(x0),
            h: y1.saturating_sub(y0),
        }
    }

    /// The canonical empty rectangle.
    #[inline]
    pub const fn empty() -> Self {
        Rect::new(0, 0, 0, 0)
    }

    /// Right edge (exclusive).
    #[inline]
    pub fn x1(&self) -> u32 {
        self.x + self.w
    }

    /// Bottom edge (exclusive).
    #[inline]
    pub fn y1(&self) -> u32 {
        self.y + self.h
    }

    /// True when the rectangle covers no pixels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.w == 0 || self.h == 0
    }

    /// Number of pixels covered.
    #[inline]
    pub fn area(&self) -> u64 {
        self.w as u64 * self.h as u64
    }

    /// True when `self` fully contains `other` (every pixel of `other` is in
    /// `self`). An empty `other` is contained in everything.
    pub fn contains(&self, other: &Rect) -> bool {
        if other.is_empty() {
            return true;
        }
        if self.is_empty() {
            return false;
        }
        self.x <= other.x && self.y <= other.y && self.x1() >= other.x1() && self.y1() >= other.y1()
    }

    /// True when the pixel `(px, py)` is inside the rectangle.
    #[inline]
    pub fn contains_point(&self, px: u32, py: u32) -> bool {
        px >= self.x && px < self.x1() && py >= self.y && py < self.y1()
    }

    /// Intersection of two rectangles; `None` when they are disjoint (or
    /// either is empty).
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        if self.is_empty() || other.is_empty() {
            return None;
        }
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = self.x1().min(other.x1());
        let y1 = self.y1().min(other.y1());
        if x0 < x1 && y0 < y1 {
            Some(Rect::from_edges(x0, y0, x1, y1))
        } else {
            None
        }
    }

    /// Area of the intersection (0 when disjoint).
    #[inline]
    pub fn intersection_area(&self, other: &Rect) -> u64 {
        self.intersect(other).map_or(0, |r| r.area())
    }

    /// True when the two rectangles share at least one pixel.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.intersect(other).is_some()
    }

    /// Subtracts `other` from `self`, returning the remainder as up to four
    /// disjoint rectangles (top band, bottom band, left band, right band).
    ///
    /// The returned rectangles exactly tile `self \ other`: they are pairwise
    /// disjoint and their total area equals `self.area() -
    /// self.intersection_area(other)`.
    pub fn subtract(&self, other: &Rect) -> Vec<Rect> {
        let inter = match self.intersect(other) {
            Some(i) => i,
            None => {
                return if self.is_empty() {
                    Vec::new()
                } else {
                    vec![*self]
                }
            }
        };
        let mut out = Vec::with_capacity(4);
        // Top band: full width of self, above the intersection.
        if inter.y > self.y {
            out.push(Rect::from_edges(self.x, self.y, self.x1(), inter.y));
        }
        // Bottom band: full width of self, below the intersection.
        if inter.y1() < self.y1() {
            out.push(Rect::from_edges(self.x, inter.y1(), self.x1(), self.y1()));
        }
        // Left band: between the horizontal bands.
        if inter.x > self.x {
            out.push(Rect::from_edges(self.x, inter.y, inter.x, inter.y1()));
        }
        // Right band.
        if inter.x1() < self.x1() {
            out.push(Rect::from_edges(inter.x1(), inter.y, self.x1(), inter.y1()));
        }
        out
    }

    /// Smallest rectangle containing both inputs. Empty inputs are ignored.
    pub fn union_bbox(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect::from_edges(
            self.x.min(other.x),
            self.y.min(other.y),
            self.x1().max(other.x1()),
            self.y1().max(other.y1()),
        )
    }

    /// Translates the rectangle so that `origin` becomes `(0, 0)`.
    ///
    /// Panics in debug builds if the rectangle does not lie fully to the
    /// right/below the origin.
    pub fn relative_to(&self, origin_x: u32, origin_y: u32) -> Rect {
        debug_assert!(self.x >= origin_x && self.y >= origin_y);
        Rect::new(self.x - origin_x, self.y - origin_y, self.w, self.h)
    }
}

/// Subtracts every rectangle in `covers` from `target`, returning a set of
/// disjoint rectangles that exactly tile the uncovered remainder.
///
/// This is the geometric core of sub-query generation: the query window minus
/// all regions satisfied from cached blobs yields the regions for which
/// sub-queries must be issued (Fig. 1 of the paper).
pub fn subtract_all(target: &Rect, covers: &[Rect]) -> Vec<Rect> {
    let mut remainder = if target.is_empty() {
        Vec::new()
    } else {
        vec![*target]
    };
    for c in covers {
        if remainder.is_empty() {
            break;
        }
        let mut next = Vec::with_capacity(remainder.len());
        for piece in &remainder {
            next.extend(piece.subtract(c));
        }
        remainder = next;
    }
    remainder
}

/// Total area of a set of *disjoint* rectangles.
pub fn total_area(rects: &[Rect]) -> u64 {
    rects.iter().map(Rect::area).sum()
}

/// Greedily selects, from `candidates` (cover rectangle, tag), a subset of
/// non-overlapping (against already chosen pieces) clipped covers of
/// `target`, largest intersection first. Returns `(clipped rect, tag index)`
/// pairs whose rects are pairwise disjoint pieces of `target`.
///
/// Used by the Data Store lookup to decide which cached blobs actually
/// contribute to a query when several cached results overlap the same window.
pub fn greedy_cover(target: &Rect, candidates: &[Rect]) -> Vec<(Rect, usize)> {
    // Sort candidate indices by intersection area, descending; stable on tie
    // by index so the selection is deterministic.
    let mut order: Vec<usize> = (0..candidates.len())
        .filter(|&i| target.intersects(&candidates[i]))
        .collect();
    order.sort_by(|&a, &b| {
        let aa = target.intersection_area(&candidates[a]);
        let ab = target.intersection_area(&candidates[b]);
        ab.cmp(&aa).then(a.cmp(&b))
    });

    let mut chosen: Vec<(Rect, usize)> = Vec::new();
    let mut covered: Vec<Rect> = Vec::new();
    for idx in order {
        let clip = match target.intersect(&candidates[idx]) {
            Some(c) => c,
            None => continue,
        };
        // Fragments of this candidate not yet covered by earlier choices.
        for frag in subtract_all(&clip, &covered) {
            covered.push(frag);
            chosen.push((frag, idx));
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_and_area() {
        let r = Rect::new(2, 3, 10, 20);
        assert_eq!(r.x1(), 12);
        assert_eq!(r.y1(), 23);
        assert_eq!(r.area(), 200);
        assert!(!r.is_empty());
        assert!(Rect::empty().is_empty());
        assert_eq!(Rect::from_edges(5, 5, 3, 9), Rect::new(5, 5, 0, 4));
    }

    #[test]
    fn contains_basic() {
        let outer = Rect::new(0, 0, 100, 100);
        let inner = Rect::new(10, 10, 20, 20);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains(&outer));
        assert!(outer.contains(&Rect::empty()));
        assert!(!Rect::empty().contains(&inner));
        assert!(outer.contains_point(0, 0));
        assert!(!outer.contains_point(100, 0));
    }

    #[test]
    fn intersect_disjoint_and_touching() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 0, 10, 10); // shares only an edge
        assert!(a.intersect(&b).is_none());
        let c = Rect::new(5, 5, 10, 10);
        assert_eq!(a.intersect(&c), Some(Rect::new(5, 5, 5, 5)));
        assert_eq!(a.intersection_area(&c), 25);
        assert!(a.intersects(&c));
        assert!(!a.intersects(&b));
    }

    #[test]
    fn intersect_empty_is_none() {
        let a = Rect::new(0, 0, 10, 10);
        assert!(a.intersect(&Rect::empty()).is_none());
        assert!(Rect::empty().intersect(&a).is_none());
    }

    #[test]
    fn subtract_non_overlapping_returns_self() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(50, 50, 5, 5);
        assert_eq!(a.subtract(&b), vec![a]);
    }

    #[test]
    fn subtract_full_cover_returns_empty() {
        let a = Rect::new(2, 2, 5, 5);
        let b = Rect::new(0, 0, 100, 100);
        assert!(a.subtract(&b).is_empty());
    }

    #[test]
    fn subtract_center_hole_yields_four_bands() {
        let a = Rect::new(0, 0, 30, 30);
        let hole = Rect::new(10, 10, 10, 10);
        let parts = a.subtract(&hole);
        assert_eq!(parts.len(), 4);
        assert_eq!(total_area(&parts), a.area() - hole.area());
        // Pieces must be disjoint from each other and from the hole.
        for (i, p) in parts.iter().enumerate() {
            assert!(!p.intersects(&hole));
            for q in &parts[i + 1..] {
                assert!(!p.intersects(q), "{p:?} overlaps {q:?}");
            }
        }
    }

    #[test]
    fn subtract_corner_overlap() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        let parts = a.subtract(&b);
        assert_eq!(total_area(&parts), 100 - 25);
        for p in &parts {
            assert!(a.contains(p));
            assert!(!p.intersects(&b));
        }
    }

    #[test]
    fn subtract_all_multiple_covers() {
        let target = Rect::new(0, 0, 20, 10);
        let covers = [Rect::new(0, 0, 10, 10), Rect::new(10, 0, 5, 10)];
        let rem = subtract_all(&target, &covers);
        assert_eq!(total_area(&rem), 50);
        for r in &rem {
            assert!(target.contains(r));
            for c in &covers {
                assert!(!r.intersects(c));
            }
        }
    }

    #[test]
    fn subtract_all_empty_target() {
        assert!(subtract_all(&Rect::empty(), &[Rect::new(0, 0, 5, 5)]).is_empty());
    }

    #[test]
    fn union_bbox_covers_both() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(20, 5, 10, 10);
        let u = a.union_bbox(&b);
        assert!(u.contains(&a) && u.contains(&b));
        assert_eq!(u, Rect::from_edges(0, 0, 30, 15));
        assert_eq!(a.union_bbox(&Rect::empty()), a);
        assert_eq!(Rect::empty().union_bbox(&b), b);
    }

    #[test]
    fn relative_to_translates() {
        let r = Rect::new(10, 20, 5, 5);
        assert_eq!(r.relative_to(10, 20), Rect::new(0, 0, 5, 5));
        assert_eq!(r.relative_to(5, 15), Rect::new(5, 5, 5, 5));
    }

    #[test]
    fn greedy_cover_prefers_larger_intersections() {
        let target = Rect::new(0, 0, 100, 100);
        let candidates = vec![
            Rect::new(0, 0, 10, 10),   // 100 px
            Rect::new(0, 0, 50, 50),   // 2500 px, should be chosen first
            Rect::new(200, 200, 5, 5), // disjoint
        ];
        let cover = greedy_cover(&target, &candidates);
        assert!(!cover.is_empty());
        assert_eq!(cover[0].1, 1);
        // The small candidate is fully inside the big one, so it contributes
        // no fragments.
        assert!(cover.iter().all(|&(_, i)| i == 1));
        // Chosen fragments are disjoint and within target.
        for (i, (r, _)) in cover.iter().enumerate() {
            assert!(target.contains(r));
            for (s, _) in &cover[i + 1..] {
                assert!(!r.intersects(s));
            }
        }
    }

    #[test]
    fn greedy_cover_combines_partial_candidates() {
        let target = Rect::new(0, 0, 20, 10);
        let candidates = vec![Rect::new(0, 0, 10, 10), Rect::new(10, 0, 10, 10)];
        let cover = greedy_cover(&target, &candidates);
        let covered: u64 = cover.iter().map(|(r, _)| r.area()).sum();
        assert_eq!(covered, 200); // fully covered by the two halves
        let tags: std::collections::HashSet<usize> = cover.iter().map(|&(_, i)| i).collect();
        assert_eq!(tags.len(), 2);
    }
}
