//! Totally-ordered rank values for the scheduling priority queue.
//!
//! Ranks are real-valued (sums of byte counts, possibly scaled by the CF
//! strategy's `α`), but Rust's `f64` is only partially ordered. [`Rank`]
//! wraps a finite `f64` and provides a total order so ranks can key ordered
//! collections. Construction rejects NaN; infinities are clamped so that
//! arithmetic overflow cannot poison the queue.

use std::cmp::Ordering;
use std::fmt;

/// A finite, totally-ordered `f64` rank. Higher rank = scheduled earlier.
#[derive(Clone, Copy, PartialEq)]
pub struct Rank(f64);

impl Rank {
    /// The rank given to nodes with no reuse relationships (and the additive
    /// identity for rank accumulation).
    pub const ZERO: Rank = Rank(0.0);

    /// Creates a rank from a float. NaN is mapped to `0.0` (and flagged in
    /// debug builds); infinities are clamped to `f64::MAX` magnitude.
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            debug_assert!(false, "NaN rank");
            return Rank(0.0);
        }
        Rank(v.clamp(f64::MIN, f64::MAX))
    }

    /// The raw float value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Eq for Rank {}

impl PartialOrd for Rank {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rank {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are guaranteed finite, so partial_cmp cannot fail.
        self.0.partial_cmp(&other.0).unwrap()
    }
}

impl fmt::Debug for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rank({})", self.0)
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<f64> for Rank {
    fn from(v: f64) -> Self {
        Rank::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_like_f64() {
        assert!(Rank::new(2.0) > Rank::new(1.0));
        assert!(Rank::new(-5.0) < Rank::ZERO);
        assert_eq!(Rank::new(3.5), Rank::new(3.5));
    }

    #[test]
    fn clamps_infinities() {
        assert_eq!(Rank::new(f64::INFINITY).value(), f64::MAX);
        assert_eq!(Rank::new(f64::NEG_INFINITY).value(), f64::MIN);
    }

    #[test]
    fn sortable_in_collections() {
        let mut v = [Rank::new(3.0), Rank::new(-1.0), Rank::new(2.0)];
        v.sort();
        assert_eq!(
            v.iter().map(|r| r.value()).collect::<Vec<_>>(),
            vec![-1.0, 2.0, 3.0]
        );
    }
}
