//! Query lifecycle states (paper §4).

use std::fmt;

/// The state component of a scheduling-graph node's `<rank, state>` tuple.
///
/// Transitions follow the paper: a newly inserted query is `Waiting`; the
/// dequeue operation moves it to `Executing`; completion moves it to
/// `Cached` (its result is available for reuse in the Data Store); memory
/// reclamation moves it to `SwappedOut`, at which point the node and its
/// edges are removed from the graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum QueryState {
    /// Queued, not yet scheduled for execution.
    Waiting,
    /// Currently running on a query thread.
    Executing,
    /// Finished; its result is cached in the Data Store.
    Cached,
    /// Result evicted from the Data Store; no longer usable for reuse.
    SwappedOut,
}

impl QueryState {
    /// True for states whose results can (or will) become usable by others:
    /// everything except `SwappedOut`.
    #[inline]
    pub fn in_graph(self) -> bool {
        self != QueryState::SwappedOut
    }

    /// Validates a lifecycle transition, returning `true` when legal.
    ///
    /// `Executing -> Waiting` is the supervision requeue (DESIGN.md §15):
    /// when a worker dies mid-compute, its orphaned query goes back to the
    /// queue for a sibling to retry rather than being lost.
    pub fn can_transition_to(self, next: QueryState) -> bool {
        use QueryState::*;
        matches!(
            (self, next),
            (Waiting, Executing)
                | (Executing, Cached)
                | (Executing, Waiting)
                | (Cached, SwappedOut)
        )
    }
}

impl fmt::Display for QueryState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QueryState::Waiting => "WAITING",
            QueryState::Executing => "EXECUTING",
            QueryState::Cached => "CACHED",
            QueryState::SwappedOut => "SWAPPED_OUT",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::QueryState::*;

    #[test]
    fn legal_transitions() {
        assert!(Waiting.can_transition_to(Executing));
        assert!(Executing.can_transition_to(Cached));
        // Supervision requeue: a dead worker's query goes back to WAITING.
        assert!(Executing.can_transition_to(Waiting));
        assert!(Cached.can_transition_to(SwappedOut));
    }

    #[test]
    fn illegal_transitions() {
        assert!(!Waiting.can_transition_to(Cached));
        assert!(!SwappedOut.can_transition_to(Waiting));
        assert!(!Cached.can_transition_to(Executing));
        assert!(!Cached.can_transition_to(Waiting));
        assert!(!Waiting.can_transition_to(SwappedOut));
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(Waiting.to_string(), "WAITING");
        assert_eq!(SwappedOut.to_string(), "SWAPPED_OUT");
    }

    #[test]
    fn in_graph_excludes_swapped_out() {
        assert!(Waiting.in_graph() && Executing.in_graph() && Cached.in_graph());
        assert!(!SwappedOut.in_graph());
    }
}
