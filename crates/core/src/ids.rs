//! Strongly-typed identifiers used throughout the system.
//!
//! Every entity that crosses a crate boundary (queries, datasets, clients,
//! cached blobs) is addressed by a small copyable newtype over `u64` so that
//! identifiers of different kinds cannot be confused at compile time.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl $name {
            /// Raw numeric value of the identifier.
            #[inline]
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

define_id!(
    /// Identifies one query in the scheduling graph. Sub-queries receive
    /// their own [`QueryId`] distinct from their parent's.
    QueryId,
    "q"
);
define_id!(
    /// Identifies a dataset (e.g. one digitized slide).
    DatasetId,
    "d"
);
define_id!(
    /// Identifies an emulated client session.
    ClientId,
    "c"
);
define_id!(
    /// Identifies an intermediate-result blob held by the Data Store Manager.
    BlobId,
    "b"
);

/// Thread-safe monotone generator for [`QueryId`]s (and other id kinds via
/// [`IdGen::next_raw`]).
///
/// The query server and the discrete-event simulator both need to mint fresh
/// query ids from multiple threads; an atomic counter keeps them unique
/// without locking.
#[derive(Debug)]
pub struct IdGen {
    next: AtomicU64,
}

impl IdGen {
    /// Creates a generator whose first issued id is `first`.
    pub fn new(first: u64) -> Self {
        IdGen {
            next: AtomicU64::new(first),
        }
    }

    /// Returns the next raw id value.
    #[inline]
    pub fn next_raw(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns a fresh [`QueryId`].
    #[inline]
    pub fn next_query(&self) -> QueryId {
        QueryId(self.next_raw())
    }

    /// Returns a fresh [`BlobId`].
    #[inline]
    pub fn next_blob(&self) -> BlobId {
        BlobId(self.next_raw())
    }
}

impl Default for IdGen {
    fn default() -> Self {
        IdGen::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(QueryId(7).to_string(), "q7");
        assert_eq!(DatasetId(1).to_string(), "d1");
        assert_eq!(ClientId(3).to_string(), "c3");
        assert_eq!(BlobId(9).to_string(), "b9");
        assert_eq!(format!("{:?}", QueryId(7)), "q7");
    }

    #[test]
    fn idgen_is_monotone() {
        let g = IdGen::new(10);
        assert_eq!(g.next_query(), QueryId(10));
        assert_eq!(g.next_query(), QueryId(11));
        assert_eq!(g.next_blob(), BlobId(12));
    }

    #[test]
    fn idgen_unique_across_threads() {
        let g = Arc::new(IdGen::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next_raw()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000);
    }

    #[test]
    fn id_from_u64_roundtrip() {
        let q: QueryId = 42u64.into();
        assert_eq!(q.raw(), 42);
    }
}
