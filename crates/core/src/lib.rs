//! # vmqs-core
//!
//! Core scheduling model for the VMQS multi-query scheduler — a Rust
//! reproduction of *"Scheduling Multiple Data Visualization Query Workloads
//! on a Shared Memory Machine"* (Andrade, Kurc, Sussman, Saltz; IPPS 2002).
//!
//! This crate holds everything the scheduling layer needs and nothing it
//! does not:
//!
//! * [`geom`] — rectangle algebra for 2-D query windows and sub-query
//!   generation,
//! * [`spec::QuerySpec`] — the application-developer contract (`cmp`,
//!   `overlap`, `qoutsize`, `qinputsize`; paper §2),
//! * [`graph::SchedulingGraph`] — the priority queue implemented as a
//!   directed reuse graph with incremental re-ranking (paper §4),
//! * [`strategy::Strategy`] — the six ranking strategies (FIFO, MUF, FF,
//!   CF, CNBF, SJF) plus the §6 hybrid extension,
//! * [`stats`] — 95%-trimmed-mean and friends for the evaluation.
//!
//! Execution engines (the real multithreaded server in `vmqs-server` and the
//! discrete-event simulator in `vmqs-sim`) drive this graph; applications
//! (the Virtual Microscope in `vmqs-microscope`) plug in a `QuerySpec`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod geom;
pub mod graph;
pub mod ids;
pub mod overload;
pub mod rank;
pub mod shard;
pub mod spatial;
pub mod spec;
pub mod state;
pub mod stats;
pub mod strategy;
pub mod sync;

pub use geom::Rect;
pub use graph::{Edge, GraphStats, SchedulingGraph};
pub use ids::{BlobId, ClientId, DatasetId, IdGen, QueryId};
pub use overload::{
    fast_path_admissible, retry_after_estimate, shed_victim, FastAdmit, OverloadConfig,
    PressureSignals, SharedTokenBucket, TokenBucket,
};
pub use rank::Rank;
pub use shard::{shard_of_spec, steal_order};
pub use spatial::{GridIndex, SpatialSpec};
pub use spec::QuerySpec;
pub use state::QueryState;
pub use strategy::{RankInputs, Strategy};
