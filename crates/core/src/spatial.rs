//! The Index Manager's spatial index (paper Fig. 1).
//!
//! The paper's architecture includes an Index Manager that locates, for a
//! query predicate, the stored entities intersecting it. For the regular
//! chunk grids of the bundled applications that is closed-form arithmetic,
//! but the *semantic cache* needs a true spatial lookup: "which cached
//! results overlap this window?" A linear scan is fine at the paper's
//! scale (≲ a few hundred cached blobs); [`GridIndex`] provides the
//! sub-linear alternative for larger deployments — a uniform-grid spatial
//! hash over rectangles, returning candidates in deterministic order.

use crate::geom::Rect;
use crate::ids::DatasetId;
use std::collections::HashMap;

/// Predicates with a spatial footprint the Index Manager can index: a
/// dataset plus a bounding rectangle. Two specs can only have nonzero
/// `overlap` if their footprints intersect on the same dataset.
pub trait SpatialSpec: crate::spec::QuerySpec {
    /// The dataset and base-resolution bounding rectangle of this
    /// predicate's result.
    fn region_key(&self) -> (DatasetId, Rect);
}

/// A uniform-grid spatial hash from rectangles to `u64` ids.
///
/// Cell size is fixed at construction; each entry is registered in every
/// cell its rectangle touches. Queries return each matching id exactly
/// once, sorted, so downstream behaviour is deterministic.
#[derive(Debug)]
pub struct GridIndex {
    cell: u32,
    cells: HashMap<(DatasetId, u32, u32), Vec<u64>>,
    entries: HashMap<u64, (DatasetId, Rect)>,
}

impl GridIndex {
    /// Creates an index with the given cell side length in pixels.
    pub fn new(cell_size: u32) -> Self {
        assert!(cell_size > 0, "cell size must be positive");
        GridIndex {
            cell: cell_size,
            cells: HashMap::new(),
            entries: HashMap::new(),
        }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn cell_range(&self, r: &Rect) -> (u32, u32, u32, u32) {
        let c0 = r.x / self.cell;
        let c1 = (r.x1().saturating_sub(1)) / self.cell;
        let r0 = r.y / self.cell;
        let r1 = (r.y1().saturating_sub(1)) / self.cell;
        (c0, c1, r0, r1)
    }

    /// Indexes `id` under `rect` on `dataset`. Panics if `id` is already
    /// present or `rect` is empty.
    pub fn insert(&mut self, id: u64, dataset: DatasetId, rect: Rect) {
        assert!(!rect.is_empty(), "cannot index an empty rectangle");
        let prev = self.entries.insert(id, (dataset, rect));
        assert!(prev.is_none(), "id {id} already indexed");
        let (c0, c1, r0, r1) = self.cell_range(&rect);
        for cy in r0..=r1 {
            for cx in c0..=c1 {
                self.cells.entry((dataset, cx, cy)).or_default().push(id);
            }
        }
    }

    /// Removes `id`; no-op if absent.
    pub fn remove(&mut self, id: u64) {
        let (dataset, rect) = match self.entries.remove(&id) {
            Some(e) => e,
            None => return,
        };
        let (c0, c1, r0, r1) = self.cell_range(&rect);
        for cy in r0..=r1 {
            for cx in c0..=c1 {
                if let Some(v) = self.cells.get_mut(&(dataset, cx, cy)) {
                    v.retain(|&x| x != id);
                    if v.is_empty() {
                        self.cells.remove(&(dataset, cx, cy));
                    }
                }
            }
        }
    }

    /// Ids whose rectangles intersect `probe` on `dataset`, sorted
    /// ascending (each id once).
    pub fn query(&self, dataset: DatasetId, probe: &Rect) -> Vec<u64> {
        if probe.is_empty() {
            return Vec::new();
        }
        let (c0, c1, r0, r1) = self.cell_range(probe);
        let mut out = Vec::new();
        for cy in r0..=r1 {
            for cx in c0..=c1 {
                if let Some(v) = self.cells.get(&(dataset, cx, cy)) {
                    for &id in v {
                        // Confirm actual intersection (grid cells
                        // over-approximate).
                        if self.entries[&id].1.intersects(probe) {
                            out.push(id);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> GridIndex {
        GridIndex::new(64)
    }

    const DS: DatasetId = DatasetId(0);

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut g = idx();
        g.insert(1, DS, Rect::new(0, 0, 10, 10));
        g.insert(2, DS, Rect::new(100, 100, 10, 10));
        assert_eq!(g.len(), 2);
        assert_eq!(g.query(DS, &Rect::new(5, 5, 10, 10)), vec![1]);
        assert_eq!(g.query(DS, &Rect::new(0, 0, 200, 200)), vec![1, 2]);
        g.remove(1);
        assert_eq!(g.query(DS, &Rect::new(0, 0, 200, 200)), vec![2]);
        g.remove(99); // no-op
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn rect_spanning_many_cells_reported_once() {
        let mut g = idx();
        g.insert(7, DS, Rect::new(0, 0, 1000, 1000));
        assert_eq!(g.query(DS, &Rect::new(0, 0, 1000, 1000)), vec![7]);
        assert_eq!(g.query(DS, &Rect::new(500, 500, 10, 10)), vec![7]);
    }

    #[test]
    fn datasets_are_isolated() {
        let mut g = idx();
        g.insert(1, DatasetId(0), Rect::new(0, 0, 50, 50));
        g.insert(2, DatasetId(1), Rect::new(0, 0, 50, 50));
        assert_eq!(g.query(DatasetId(0), &Rect::new(0, 0, 10, 10)), vec![1]);
        assert_eq!(g.query(DatasetId(1), &Rect::new(0, 0, 10, 10)), vec![2]);
    }

    #[test]
    fn touching_edges_do_not_intersect() {
        let mut g = idx();
        g.insert(1, DS, Rect::new(0, 0, 64, 64));
        // Shares only the edge x=64: not a hit.
        assert!(g.query(DS, &Rect::new(64, 0, 64, 64)).is_empty());
    }

    #[test]
    fn empty_probe_returns_nothing() {
        let mut g = idx();
        g.insert(1, DS, Rect::new(0, 0, 50, 50));
        assert!(g.query(DS, &Rect::empty()).is_empty());
    }

    #[test]
    #[should_panic(expected = "already indexed")]
    fn duplicate_id_panics() {
        let mut g = idx();
        g.insert(1, DS, Rect::new(0, 0, 10, 10));
        g.insert(1, DS, Rect::new(20, 20, 10, 10));
    }

    #[test]
    #[should_panic(expected = "empty rectangle")]
    fn empty_rect_rejected() {
        idx().insert(1, DS, Rect::empty());
    }

    #[test]
    fn matches_linear_scan_on_dense_population() {
        let mut g = GridIndex::new(37); // deliberately odd cell size
        let mut rects = Vec::new();
        for i in 0u64..200 {
            let r = Rect::new(
                ((i * 97) % 900) as u32,
                ((i * 61) % 900) as u32,
                ((i * 13) % 80 + 1) as u32,
                ((i * 29) % 80 + 1) as u32,
            );
            g.insert(i, DS, r);
            rects.push(r);
        }
        for probe_i in 0..20u64 {
            let probe = Rect::new(
                ((probe_i * 131) % 800) as u32,
                ((probe_i * 17) % 800) as u32,
                90,
                90,
            );
            let mut expect: Vec<u64> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| r.intersects(&probe))
                .map(|(i, _)| i as u64)
                .collect();
            expect.sort_unstable();
            assert_eq!(g.query(DS, &probe), expect, "probe {probe:?}");
        }
    }
}
