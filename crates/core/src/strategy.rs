//! The six query-ranking strategies of the paper (§4), plus the combined
//! strategy its conclusions propose (§6).
//!
//! A strategy maps a scheduling-graph node — its arrival order, its input
//! size, and the states/weights of its neighbors — to a [`Rank`]; the
//! dequeue operation always picks the WAITING node with the highest rank
//! (ties broken by arrival order, i.e. FIFO is every strategy's tiebreak).

use crate::rank::Rank;
use crate::state::QueryState;
use std::fmt;

/// Per-node inputs to rank computation that do not involve edges.
#[derive(Clone, Copy, Debug)]
pub struct RankInputs {
    /// Monotone arrival sequence number (0 = first query ever submitted).
    pub arrival_seq: u64,
    /// `qinputsize` in bytes — SJF's execution-time estimate.
    pub qinputsize: u64,
    /// Fraction of the query's chunk set that is currently *hot* — touched
    /// by at least one EXECUTING query — in `[0, 1]`. Only the ChunkBatch
    /// strategy reads it; the graph computes it from the chunk keys the
    /// application reports via [`crate::QuerySpec::chunk_keys`].
    pub hot_fraction: f64,
}

/// A ranking strategy. See the paper §4 for the per-strategy intuition.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Strategy {
    /// 1. First-In First-Out: serve queries in arrival order (fairness).
    Fifo,
    /// 2. Most Useful First: `r_i = Σ_{k: e_{i,k}, s_k = WAITING} w_{i,k}` —
    ///    run the query whose result the most waiting bytes depend on.
    Muf,
    /// 3. Farthest First: `r_i = −Σ_{k: e_{k,i}, s_k ∈ {WAITING, EXECUTING}}
    ///    w_{k,i}` — avoid scheduling queries likely to block on unfinished
    ///    dependencies.
    FarthestFirst,
    /// 4. Closest First: `r_i = Σ_{j: e_{j,i}, s_j = CACHED} w_{j,i} + α ·
    ///    Σ_{k: e_{k,i}, s_k = EXECUTING} w_{k,i}` with `0 < α < 1` — chase
    ///    locality with cached (or soon-cached) results.
    ClosestFirst {
        /// Weight for dependencies on still-executing results (paper
        /// hand-tunes this; the evaluation fixes α = 0.2).
        alpha: f64,
    },
    /// 5. Closest and Non-Blocking First: `r_i = Σ_{k: e_{k,i}, s_k =
    ///    CACHED} w_{k,i} − Σ_{j: e_{j,i}, s_j = EXECUTING} w_{j,i}` — locality
    ///    without paying for blocking on in-flight results.
    Cnbf,
    /// 6. Shortest Job First: rank by (negated) estimated execution time,
    ///    estimated by `qinputsize`.
    Sjf,
    /// §6 extension: a weighted combination of SJF and CNBF. The rank is
    /// `cnbf_weight · r_CNBF − sjf_weight · qinputsize`; both terms are in
    /// bytes, so the weights trade reuse-bytes against scan-bytes directly.
    Hybrid {
        /// Multiplier on the CNBF (locality) component.
        cnbf_weight: f64,
        /// Multiplier on the SJF (job length) component.
        sjf_weight: f64,
    },
    /// Data-driven co-scheduling (LifeRaft-style chunk-affinity batching):
    /// `r_i = hot_fraction_i − d · arrival_seq_i`. Waiting queries whose
    /// chunk sets overlap the chunks the EXECUTING queries are touching
    /// *right now* jump the queue, so one cold chunk read feeds a whole
    /// batch of queries while its pages are still resident.
    ///
    /// `d` is the starvation dial, LifeRaft's central throughput/aging
    /// trade-off: with `d = 0` the strategy is pure chunk affinity (ties
    /// broken FIFO, queries on cold chunks can starve under a sustained
    /// hot stream); with `d ≥ 1` an affinity advantage (at most 1.0) can
    /// never outweigh one arrival step, so the order degenerates to exact
    /// FIFO. In between, a waiting query's full-affinity advantage is
    /// overridden once it is younger than a rival by more than `1/d`
    /// arrivals.
    ChunkBatch {
        /// Aging weight `d ∈ [0, ∞)`: 0 = pure affinity, ≥ 1 = pure FIFO.
        starvation_dial: f64,
    },
}

impl Strategy {
    /// The paper's evaluated CF configuration (α = 0.2).
    pub fn closest_first_default() -> Strategy {
        Strategy::ClosestFirst { alpha: 0.2 }
    }

    /// A balanced hybrid (equal byte-for-byte weight on reuse and job size).
    pub fn hybrid_default() -> Strategy {
        Strategy::Hybrid {
            cnbf_weight: 1.0,
            sjf_weight: 1.0,
        }
    }

    /// The evaluated ChunkBatch configuration: a full-affinity advantage is
    /// overridden after waiting 20 arrivals (`d = 0.05`), which keeps
    /// throughput-oriented batching without unbounded starvation.
    pub fn chunk_batch_default() -> Strategy {
        Strategy::ChunkBatch {
            starvation_dial: 0.05,
        }
    }

    /// All six strategies of the paper's evaluation, in presentation order.
    pub fn paper_set() -> [Strategy; 6] {
        [
            Strategy::Fifo,
            Strategy::Muf,
            Strategy::FarthestFirst,
            Strategy::closest_first_default(),
            Strategy::Cnbf,
            Strategy::Sjf,
        ]
    }

    /// Short machine-friendly name (used in experiment CSV output).
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Fifo => "FIFO",
            Strategy::Muf => "MUF",
            Strategy::FarthestFirst => "FF",
            Strategy::ClosestFirst { .. } => "CF",
            Strategy::Cnbf => "CNBF",
            Strategy::Sjf => "SJF",
            Strategy::Hybrid { .. } => "HYBRID",
            Strategy::ChunkBatch { .. } => "CHUNKBATCH",
        }
    }

    /// True when a node's rank never changes after insertion (no dependence
    /// on neighbor states). The graph skips re-ranking neighbors on state
    /// transitions for these strategies.
    pub fn is_static(&self) -> bool {
        matches!(self, Strategy::Fifo | Strategy::Sjf)
    }

    /// Computes the rank of a node.
    ///
    /// `in_edges` iterates `(state of k, w_{k,i})` over edges *into* the
    /// node (`e_{k,i}`: node i can reuse k's result); `out_edges` iterates
    /// `(state of k, w_{i,k})` over edges *out of* the node (`e_{i,k}`:
    /// k can reuse i's result).
    pub fn rank<I, O>(&self, inputs: RankInputs, in_edges: I, out_edges: O) -> Rank
    where
        I: IntoIterator<Item = (QueryState, f64)>,
        O: IntoIterator<Item = (QueryState, f64)>,
    {
        use QueryState::*;
        let v = match *self {
            // Earlier arrivals get strictly higher ranks.
            Strategy::Fifo => -(inputs.arrival_seq as f64),
            Strategy::Muf => out_edges
                .into_iter()
                .filter(|&(s, _)| s == Waiting)
                .map(|(_, w)| w)
                .sum(),
            Strategy::FarthestFirst => -in_edges
                .into_iter()
                .filter(|&(s, _)| s == Waiting || s == Executing)
                .map(|(_, w)| w)
                .sum::<f64>(),
            Strategy::ClosestFirst { alpha } => in_edges
                .into_iter()
                .map(|(s, w)| match s {
                    Cached => w,
                    Executing => alpha * w,
                    _ => 0.0,
                })
                .sum(),
            Strategy::Cnbf => in_edges
                .into_iter()
                .map(|(s, w)| match s {
                    Cached => w,
                    Executing => -w,
                    _ => 0.0,
                })
                .sum(),
            Strategy::Sjf => -(inputs.qinputsize as f64),
            Strategy::Hybrid {
                cnbf_weight,
                sjf_weight,
            } => {
                let cnbf: f64 = in_edges
                    .into_iter()
                    .map(|(s, w)| match s {
                        Cached => w,
                        Executing => -w,
                        _ => 0.0,
                    })
                    .sum();
                cnbf_weight * cnbf - sjf_weight * inputs.qinputsize as f64
            }
            // Affinity with the currently-hot chunk set, aged by arrival
            // order (the WAITING index already breaks exact ties FIFO).
            Strategy::ChunkBatch { starvation_dial } => {
                inputs.hot_fraction - starvation_dial * inputs.arrival_seq as f64
            }
        };
        Rank::new(v)
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::ClosestFirst { alpha } => write!(f, "CF(α={alpha})"),
            Strategy::Hybrid {
                cnbf_weight,
                sjf_weight,
            } => write!(f, "HYBRID(cnbf={cnbf_weight},sjf={sjf_weight})"),
            Strategy::ChunkBatch { starvation_dial } => {
                write!(f, "CHUNKBATCH(dial={starvation_dial})")
            }
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use QueryState::*;

    fn inputs(seq: u64, insize: u64) -> RankInputs {
        RankInputs {
            arrival_seq: seq,
            qinputsize: insize,
            hot_fraction: 0.0,
        }
    }

    fn inputs_hot(seq: u64, hot: f64) -> RankInputs {
        RankInputs {
            arrival_seq: seq,
            qinputsize: 0,
            hot_fraction: hot,
        }
    }

    const NO_EDGES: [(QueryState, f64); 0] = [];

    #[test]
    fn fifo_prefers_earlier_arrival() {
        let s = Strategy::Fifo;
        let r0 = s.rank(inputs(0, 10), NO_EDGES, NO_EDGES);
        let r1 = s.rank(inputs(1, 10), NO_EDGES, NO_EDGES);
        assert!(r0 > r1);
    }

    #[test]
    fn sjf_prefers_smaller_input() {
        let s = Strategy::Sjf;
        let small = s.rank(inputs(5, 100), NO_EDGES, NO_EDGES);
        let big = s.rank(inputs(0, 1000), NO_EDGES, NO_EDGES);
        assert!(small > big);
    }

    #[test]
    fn muf_counts_only_waiting_out_edges() {
        let s = Strategy::Muf;
        let out = [(Waiting, 10.0), (Executing, 100.0), (Cached, 100.0)];
        let r = s.rank(inputs(0, 0), NO_EDGES, out);
        assert_eq!(r.value(), 10.0);
    }

    #[test]
    fn ff_penalizes_waiting_and_executing_in_edges() {
        let s = Strategy::FarthestFirst;
        let ins = [(Waiting, 5.0), (Executing, 7.0), (Cached, 100.0)];
        let r = s.rank(inputs(0, 0), ins, NO_EDGES);
        assert_eq!(r.value(), -12.0);
    }

    #[test]
    fn cf_weights_executing_by_alpha() {
        let s = Strategy::ClosestFirst { alpha: 0.2 };
        let ins = [(Cached, 10.0), (Executing, 10.0), (Waiting, 10.0)];
        let r = s.rank(inputs(0, 0), ins, NO_EDGES);
        assert!((r.value() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn cnbf_subtracts_executing() {
        let s = Strategy::Cnbf;
        let ins = [(Cached, 10.0), (Executing, 4.0), (Waiting, 99.0)];
        let r = s.rank(inputs(0, 0), ins, NO_EDGES);
        assert_eq!(r.value(), 6.0);
    }

    #[test]
    fn hybrid_mixes_cnbf_and_sjf() {
        let s = Strategy::Hybrid {
            cnbf_weight: 1.0,
            sjf_weight: 1.0,
        };
        let ins = [(Cached, 100.0)];
        let r = s.rank(inputs(0, 40), ins, NO_EDGES);
        assert_eq!(r.value(), 60.0);
        // Pure-SJF behaviour when there are no reuse edges.
        let r2 = s.rank(inputs(0, 40), NO_EDGES, NO_EDGES);
        assert_eq!(r2.value(), -40.0);
    }

    #[test]
    fn static_strategies_flagged() {
        assert!(Strategy::Fifo.is_static());
        assert!(Strategy::Sjf.is_static());
        assert!(!Strategy::Muf.is_static());
        assert!(!Strategy::Cnbf.is_static());
        assert!(!Strategy::closest_first_default().is_static());
        assert!(!Strategy::FarthestFirst.is_static());
        assert!(!Strategy::hybrid_default().is_static());
        assert!(!Strategy::chunk_batch_default().is_static());
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Strategy::Fifo.name(), "FIFO");
        assert_eq!(Strategy::closest_first_default().name(), "CF");
        assert_eq!(Strategy::closest_first_default().to_string(), "CF(α=0.2)");
        assert_eq!(Strategy::chunk_batch_default().name(), "CHUNKBATCH");
        assert_eq!(
            Strategy::chunk_batch_default().to_string(),
            "CHUNKBATCH(dial=0.05)"
        );
        assert_eq!(Strategy::paper_set().len(), 6);
    }

    #[test]
    fn chunkbatch_prefers_hot_chunk_affinity() {
        let s = Strategy::chunk_batch_default();
        // Same arrival gap of 1: full affinity beats cold.
        let hot = s.rank(inputs_hot(1, 1.0), NO_EDGES, NO_EDGES);
        let cold = s.rank(inputs_hot(0, 0.0), NO_EDGES, NO_EDGES);
        assert!(hot > cold);
    }

    #[test]
    fn chunkbatch_starvation_dial_ages_cold_queries_past_affinity() {
        let s = Strategy::ChunkBatch {
            starvation_dial: 0.05,
        };
        // A cold query 30 arrivals older (> 1/d = 20) outranks a fully
        // hot newcomer.
        let old_cold = s.rank(inputs_hot(0, 0.0), NO_EDGES, NO_EDGES);
        let new_hot = s.rank(inputs_hot(30, 1.0), NO_EDGES, NO_EDGES);
        assert!(old_cold > new_hot);
        // Within the window (10 < 20 arrivals) affinity still wins.
        let near_hot = s.rank(inputs_hot(10, 1.0), NO_EDGES, NO_EDGES);
        assert!(near_hot > old_cold);
    }

    #[test]
    fn chunkbatch_dial_one_is_exact_fifo() {
        let s = Strategy::ChunkBatch {
            starvation_dial: 1.0,
        };
        let f = Strategy::Fifo;
        for seq in 0..5u64 {
            let hot = s.rank(inputs_hot(seq, 1.0), NO_EDGES, NO_EDGES);
            let next_cold = s.rank(inputs_hot(seq + 1, 0.0), NO_EDGES, NO_EDGES);
            assert!(hot >= next_cold, "dial=1 must never reorder arrivals");
            assert!(
                f.rank(inputs(seq, 0), NO_EDGES, NO_EDGES)
                    > f.rank(inputs(seq + 1, 0), NO_EDGES, NO_EDGES)
            );
        }
    }
}
