//! Shard placement and steal order for the sharded scheduler.
//!
//! The server engine partitions its scheduling graph into one shard per
//! worker (DESIGN.md §12). Two pure functions define the partition:
//!
//! * [`shard_of_spec`] — the *placement function*: a query's home shard
//!   is a hash of its spatial region key (dataset + coarse grid cell of
//!   the region center). Placement is a function of *where the query
//!   looks*, not what it computes, so queries over the same slide region
//!   land on the same shard and their reuse edges stay intra-shard. The
//!   region key ignores the processing op, so degrading a query
//!   (`Average` → `Subsample`) never changes its home shard.
//! * [`steal_order`] — the *victim permutation*: each worker visits the
//!   other shards in a seeded pseudo-random order when it runs dry.
//!   Per-worker seeds decorrelate the permutations so idle workers do
//!   not stampede the same victim, while a fixed configuration seed
//!   keeps the order reproducible run to run.
//!
//! With one worker there is exactly one shard, placement is the constant
//! function, and stealing never happens — the sharded engine collapses
//! to the pre-shard engine, which is what keeps 1-worker golden traces
//! bit-for-bit identical.

use crate::spatial::SpatialSpec;

/// Side, in base-resolution pixels, of the coarse placement grid cell.
///
/// Coarser than the Data Store's lookup index cell (default 512 would
/// also work, but placement wants *stability* under small pans more
/// than discrimination): two interactive queries panning within the
/// same 256px neighborhood keep the same home shard, so their reuse
/// edge is visible to the scheduler.
const PLACEMENT_CELL: u32 = 256;

/// `splitmix64` finalizer: a full-avalanche 64-bit mixer, so adjacent
/// grid cells map to unrelated shards.
#[inline]
fn mix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Home shard of a query: hash of `(dataset, coarse cell of the region
/// center)` modulo `num_shards`.
///
/// Deterministic, ignores the processing op (degradation-stable), and
/// returns 0 for every spec when `num_shards <= 1`.
pub fn shard_of_spec<S: SpatialSpec>(spec: &S, num_shards: usize) -> usize {
    if num_shards <= 1 {
        return 0;
    }
    let (dataset, region) = spec.region_key();
    let cx = (region.x + region.w / 2) / PLACEMENT_CELL;
    let cy = (region.y + region.h / 2) / PLACEMENT_CELL;
    let h = mix(dataset
        .raw()
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(((cx as u64) << 32) | cy as u64));
    (h % num_shards as u64) as usize
}

/// The order in which worker `me` visits other shards when stealing: a
/// seeded Fisher–Yates permutation of every shard except `me`.
///
/// The permutation depends on `(seed, me)` only — deterministic for a
/// fixed configuration seed, different per worker so idle workers fan
/// out over distinct victims.
pub fn steal_order(me: usize, num_shards: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..num_shards).filter(|&s| s != me).collect();
    // LCG (Knuth MMIX constants) seeded per worker; top bits drive the
    // shuffle because LCG low bits have short periods.
    let mut state = mix(seed
        ^ (me as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(1));
    for i in (1..order.len()).rev() {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let j = ((state >> 33) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Rect;
    use crate::ids::DatasetId;
    use crate::spec::QuerySpec;

    /// Minimal spatial spec for placement tests: a dataset + window, with
    /// an `op` field the region key must ignore.
    #[derive(Clone, Copy, Debug, PartialEq)]
    struct TestSpec {
        dataset: DatasetId,
        window: Rect,
        op: u8,
    }

    impl QuerySpec for TestSpec {
        fn cmp(&self, other: &Self) -> bool {
            self == other
        }
        fn overlap(&self, other: &Self) -> f64 {
            if self.dataset == other.dataset {
                self.window.intersection_area(&other.window) as f64
                    / self.window.area().max(1) as f64
            } else {
                0.0
            }
        }
        fn qoutsize(&self) -> u64 {
            self.window.area()
        }
        fn qinputsize(&self) -> u64 {
            self.window.area()
        }
    }

    impl SpatialSpec for TestSpec {
        fn region_key(&self) -> (DatasetId, Rect) {
            (self.dataset, self.window)
        }
    }

    fn spec(dataset: u64, x: u32, y: u32, side: u32, op: u8) -> TestSpec {
        TestSpec {
            dataset: DatasetId(dataset),
            window: Rect::new(x, y, side, side),
            op,
        }
    }

    #[test]
    fn single_shard_is_constant() {
        for d in 0..4 {
            for x in (0..4096).step_by(517) {
                assert_eq!(shard_of_spec(&spec(d, x, x, 64, 0), 1), 0);
            }
        }
    }

    #[test]
    fn placement_is_deterministic_and_in_range() {
        for n in [2usize, 3, 4, 8] {
            for d in 0..3 {
                for x in (0..8192).step_by(311) {
                    let s = spec(d, x, x / 2, 128, 0);
                    let k = shard_of_spec(&s, n);
                    assert!(k < n);
                    assert_eq!(k, shard_of_spec(&s, n), "placement must be pure");
                }
            }
        }
    }

    #[test]
    fn placement_ignores_op() {
        // Degradation changes the op but not the region key, so the home
        // shard must not move.
        for x in (0..4096).step_by(97) {
            let a = spec(1, x, 2 * x, 256, 0);
            let b = TestSpec { op: 1, ..a };
            assert_eq!(shard_of_spec(&a, 8), shard_of_spec(&b, 8));
        }
    }

    #[test]
    fn nearby_queries_share_a_shard() {
        // Small pans within one placement cell keep the home shard, which
        // is what keeps reuse edges intra-shard for interactive streams.
        let base = spec(2, 1024, 1024, 64, 0);
        let panned = spec(2, 1040, 1010, 64, 0);
        assert_eq!(shard_of_spec(&base, 8), shard_of_spec(&panned, 8));
    }

    #[test]
    fn placement_spreads_across_shards() {
        // 16 clients over distinct far-apart regions should not collapse
        // onto one shard.
        let n = 8;
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..16u32 {
            seen.insert(shard_of_spec(
                &spec(i as u64 % 3, i * 2048, i * 1024, 64, 0),
                n,
            ));
        }
        assert!(seen.len() >= 4, "placement too clumped: {seen:?}");
    }

    #[test]
    fn steal_order_is_a_permutation_excluding_self() {
        for n in [1usize, 2, 3, 8] {
            for me in 0..n {
                let order = steal_order(me, n, 42);
                assert_eq!(order.len(), n - 1);
                let mut sorted = order.clone();
                sorted.sort_unstable();
                let expect: Vec<usize> = (0..n).filter(|&s| s != me).collect();
                assert_eq!(sorted, expect);
                // Deterministic under a fixed seed.
                assert_eq!(order, steal_order(me, n, 42));
            }
        }
    }

    #[test]
    fn steal_order_varies_by_worker_and_seed() {
        // Not a hard guarantee for every (n, seed), but it must hold for
        // the defaults we ship; a colliding permutation would mean the
        // per-worker decorrelation is broken.
        let a = steal_order(0, 8, 42);
        let b = steal_order(1, 8, 42);
        let c = steal_order(0, 8, 43);
        assert_ne!(
            a.iter().filter(|&&s| s != 1).collect::<Vec<_>>(),
            b.iter().filter(|&&s| s != 0).collect::<Vec<_>>()
        );
        assert_ne!(a, c);
    }
}
