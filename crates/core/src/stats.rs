//! Summary statistics used by the experimental evaluation.
//!
//! The paper reports the *95%-trimmed mean* of query response times: the
//! mean after discarding the lowest and highest 2.5% of the scores (§5,
//! footnote 3). This module provides that, plus the usual mean/percentile
//! helpers used in EXPERIMENTS.md tables.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// `p%`-trimmed mean: drops the lowest and highest `p/2` percent of the
/// sorted scores and averages the rest. `trimmed_mean(xs, 0.95)` is the
/// paper's 95%-trimmed mean (2.5% trimmed from each tail).
///
/// With fewer than `1 / ((1-keep)/2)` samples nothing is trimmed.
pub fn trimmed_mean(xs: &[f64], keep: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&keep),
        "keep fraction must be in [0,1]"
    );
    assert!(
        xs.iter().all(|x| !x.is_nan()),
        "trimmed_mean: NaN sample rejected"
    );
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let cut = ((1.0 - keep) / 2.0 * sorted.len() as f64).floor() as usize;
    let kept = &sorted[cut..sorted.len() - cut];
    mean(kept)
}

/// The paper's statistic: 95%-trimmed mean.
pub fn trimmed_mean_95(xs: &[f64]) -> f64 {
    trimmed_mean(xs, 0.95)
}

/// Nearest-rank percentile (`q` in `[0, 100]`); `0.0` for an empty slice.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(
        xs.iter().all(|x| !x.is_nan()),
        "percentile: NaN sample rejected"
    );
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Sample standard deviation; `0.0` for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// A compact numeric summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// 95%-trimmed mean (the paper's headline statistic).
    pub trimmed_mean_95: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Summarizes a sample; all fields zero for an empty slice.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                trimmed_mean_95: 0.0,
                min: 0.0,
                median: 0.0,
                max: 0.0,
                std_dev: 0.0,
            };
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Summary {
            n: xs.len(),
            mean: mean(xs),
            trimmed_mean_95: trimmed_mean_95(xs),
            min: sorted[0],
            median: percentile(xs, 50.0),
            max: sorted[sorted.len() - 1],
            std_dev: std_dev(xs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn trimmed_mean_drops_tails() {
        // 40 samples: 38 ones plus two extreme outliers. 2.5% of 40 = 1 from
        // each tail, so both outliers are dropped.
        let mut xs = vec![1.0; 38];
        xs.push(1000.0);
        xs.insert(0, -1000.0);
        assert_eq!(trimmed_mean_95(&xs), 1.0);
        assert_ne!(mean(&xs), 1.0);
    }

    #[test]
    fn trimmed_mean_small_samples_untouched() {
        let xs = [1.0, 2.0, 3.0];
        // 2.5% of 3 floors to 0 → plain mean.
        assert_eq!(trimmed_mean_95(&xs), 2.0);
    }

    #[test]
    fn trimmed_mean_unsorted_input() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(trimmed_mean_95(&xs), 3.0);
    }

    #[test]
    #[should_panic(expected = "keep fraction")]
    fn trimmed_mean_rejects_bad_keep() {
        trimmed_mean(&[1.0], 1.5);
    }

    #[test]
    fn trimmed_mean_empty_and_single() {
        assert_eq!(trimmed_mean(&[], 0.95), 0.0);
        assert_eq!(trimmed_mean(&[7.5], 0.95), 7.5);
        // keep = 0 would trim everything; a singleton still floors to 0 cut.
        assert_eq!(trimmed_mean(&[7.5], 0.0), 7.5);
    }

    #[test]
    #[should_panic(expected = "NaN sample rejected")]
    fn trimmed_mean_rejects_nan() {
        trimmed_mean(&[1.0, f64::NAN, 3.0], 0.95);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[42.0], 0.0), 42.0);
        assert_eq!(percentile(&[42.0], 50.0), 42.0);
        assert_eq!(percentile(&[42.0], 100.0), 42.0);
    }

    #[test]
    #[should_panic(expected = "NaN sample rejected")]
    fn percentile_rejects_nan() {
        percentile(&[f64::NAN], 50.0);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn std_dev_known_value() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        // population sd is 2; sample sd is 2.138...
        assert!((std_dev(&xs) - 2.138089935).abs() < 1e-6);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn summary_fields_consistent() {
        let xs = [3.0, 1.0, 2.0];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.mean, 2.0);
        let empty = Summary::of(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean, 0.0);
    }
}
