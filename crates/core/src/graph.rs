//! The query scheduling graph: a priority queue implemented as a directed
//! graph (paper §4).
//!
//! Vertices are queries annotated with `<rank, state>`; a directed edge
//! `e_{i,j}` with weight `w_{i,j} = overlap(q_i, q_j) · qoutsize(q_i)` means
//! q_j's answer can partially be computed from q_i's result. The dequeue
//! operation returns the WAITING node with the highest rank under the
//! configured [`Strategy`]; graph updates (insertion, state transitions,
//! swap-out) re-rank only the affected neighborhood, mirroring the paper's
//! incremental topological-sort maintenance.

use crate::ids::QueryId;
use crate::rank::Rank;
use crate::spec::QuerySpec;
use crate::state::QueryState;
use crate::strategy::{RankInputs, Strategy};
use std::cmp::Reverse;
use std::collections::{BTreeSet, HashMap};

/// A weighted edge endpoint.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// The peer query on the other end of the edge.
    pub peer: QueryId,
    /// Reusable bytes across this edge (`w` in the paper).
    pub weight: f64,
}

#[derive(Debug)]
struct Node<S> {
    spec: S,
    state: QueryState,
    rank: Rank,
    arrival_seq: u64,
    qinputsize: u64,
    /// Sorted, deduplicated chunk keys of the query's input (the
    /// application's [`QuerySpec::chunk_keys`]); drives ChunkBatch's
    /// hot-chunk affinity.
    chunks: Vec<u64>,
    /// Edges `e_{self,k}`: k can reuse self's result.
    out_edges: Vec<Edge>,
    /// Edges `e_{k,self}`: self can reuse k's result.
    in_edges: Vec<Edge>,
}

/// Ordering key for the WAITING set: max rank first, then earliest arrival
/// (FIFO tie-break), then id for total order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct WaitKey(Rank, Reverse<u64>, QueryId);

/// Operation counters maintained by the graph, exposed for benchmarks and
/// experiment reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Queries ever inserted.
    pub inserted: u64,
    /// Successful dequeue operations.
    pub dequeued: u64,
    /// Nodes removed via swap-out.
    pub swapped_out: u64,
    /// EXECUTING queries sent back to WAITING after their worker died.
    pub requeued: u64,
    /// Directed edges ever created.
    pub edges_created: u64,
    /// Individual node re-rank computations performed.
    pub reranks: u64,
    /// Pairwise overlap evaluations performed during inserts.
    pub overlap_evals: u64,
}

/// The scheduling graph / dynamic priority queue.
///
/// Generic over the application's predicate type `S`; all reuse reasoning
/// goes through the [`QuerySpec`] metadata functions.
#[derive(Debug)]
pub struct SchedulingGraph<S: QuerySpec> {
    strategy: Strategy,
    nodes: HashMap<QueryId, Node<S>>,
    waiting: BTreeSet<WaitKey>,
    arrival_counter: u64,
    stats: GraphStats,
    /// Refcounts of chunk keys touched by EXECUTING nodes — the *hot set*
    /// ChunkBatch ranks affinity against. Maintained on every transition
    /// into/out of EXECUTING; only membership is read, so HashMap iteration
    /// order never leaks into ranks.
    hot_chunks: HashMap<u64, u32>,
}

impl<S: QuerySpec> SchedulingGraph<S> {
    /// Creates an empty graph ranking with `strategy`.
    pub fn new(strategy: Strategy) -> Self {
        SchedulingGraph {
            strategy,
            nodes: HashMap::new(),
            waiting: BTreeSet::new(),
            arrival_counter: 0,
            stats: GraphStats::default(),
            hot_chunks: HashMap::new(),
        }
    }

    /// The ranking strategy in use.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Switches the ranking strategy at runtime, re-ranking every node —
    /// the hook used by the self-tuning controller of the paper's §6
    /// extension (1). `O(V + E)`.
    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.strategy = strategy;
        self.recompute_all_ranks();
    }

    /// Operation counters.
    pub fn stats(&self) -> GraphStats {
        self.stats
    }

    /// Total nodes currently in the graph (all states except swapped-out,
    /// which are removed).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes remain.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of WAITING nodes.
    pub fn waiting_len(&self) -> usize {
        self.waiting.len()
    }

    /// Inserts a new WAITING query, creating edges to every current node
    /// with nonzero reuse in either direction and re-ranking affected
    /// WAITING neighbors (paper §4: steps (1)–(3) of new-query handling).
    ///
    /// Panics if `id` is already present.
    pub fn insert(&mut self, id: QueryId, spec: S) {
        assert!(
            !self.nodes.contains_key(&id),
            "query {id} already in scheduling graph"
        );
        let arrival_seq = self.arrival_counter;
        self.arrival_counter += 1;
        self.stats.inserted += 1;

        let qinputsize = spec.qinputsize();

        // Discover reuse relationships against every existing node.
        let mut new_in: Vec<Edge> = Vec::new();
        let mut new_out: Vec<Edge> = Vec::new();
        let mut touched: Vec<QueryId> = Vec::new();
        // Deterministic peer order: the edge lists built here fix the
        // float-summation order inside `Strategy::rank`, so iterating the
        // node map directly would leak HashMap order into ranks (caught
        // by `xtask lint` rule nondet-iter).
        // lint:sorted: iterated via the sorted id vector below
        let mut peer_ids: Vec<QueryId> = self.nodes.keys().copied().collect();
        peer_ids.sort_unstable();
        for peer_id in peer_ids {
            let peer = &self.nodes[&peer_id];
            self.stats.overlap_evals += 2;
            let w_peer_to_new = peer.spec.reuse_bytes(&spec) as f64;
            let w_new_to_peer = spec.reuse_bytes(&peer.spec) as f64;
            if w_peer_to_new > 0.0 {
                new_in.push(Edge {
                    peer: peer_id,
                    weight: w_peer_to_new,
                });
            }
            if w_new_to_peer > 0.0 {
                new_out.push(Edge {
                    peer: peer_id,
                    weight: w_new_to_peer,
                });
            }
            if w_peer_to_new > 0.0 || w_new_to_peer > 0.0 {
                touched.push(peer_id);
            }
        }
        // The discovery loop above iterates a HashMap, whose order varies
        // between graph instances. Edge order must be deterministic: rank
        // computations sum edge weights in list order, and strategies like
        // CF scale weights by α, making float addition order observable.
        new_in.sort_by_key(|e| e.peer);
        new_out.sort_by_key(|e| e.peer);
        touched.sort_unstable();
        self.stats.edges_created += (new_in.len() + new_out.len()) as u64;

        // Mirror the edges onto the peers.
        for e in &new_in {
            let peer = self.nodes.get_mut(&e.peer).unwrap();
            peer.out_edges.push(Edge {
                peer: id,
                weight: e.weight,
            });
        }
        for e in &new_out {
            let peer = self.nodes.get_mut(&e.peer).unwrap();
            peer.in_edges.push(Edge {
                peer: id,
                weight: e.weight,
            });
        }

        let mut chunks = spec.chunk_keys();
        chunks.sort_unstable();
        chunks.dedup();
        let node = Node {
            spec,
            state: QueryState::Waiting,
            rank: Rank::ZERO, // placeholder; computed below
            arrival_seq,
            qinputsize,
            chunks,
            out_edges: new_out,
            in_edges: new_in,
        };
        self.nodes.insert(id, node);

        // Rank the new node and insert it into the WAITING index.
        let rank = self.compute_rank(id);
        let node = self.nodes.get_mut(&id).unwrap();
        node.rank = rank;
        self.waiting.insert(WaitKey(rank, Reverse(arrival_seq), id));

        // The new edges may change neighbor ranks (e.g. MUF sees a new
        // WAITING dependent).
        if !self.strategy.is_static() {
            for peer in touched {
                self.rerank_if_waiting(peer);
            }
        }
    }

    /// Removes and returns the highest-ranked WAITING query, transitioning
    /// it to EXECUTING and re-ranking affected neighbors. `None` when no
    /// query is waiting.
    pub fn dequeue(&mut self) -> Option<QueryId> {
        let key = *self.waiting.iter().next_back()?;
        self.waiting.remove(&key);
        let id = key.2;
        self.transition(id, QueryState::Executing);
        self.stats.dequeued += 1;
        Some(id)
    }

    /// Highest-ranked WAITING query without dequeuing it.
    pub fn peek(&self) -> Option<(QueryId, Rank)> {
        self.waiting.iter().next_back().map(|k| (k.2, k.0))
    }

    /// The `k` highest-ranked WAITING queries (best first) without
    /// dequeuing them. Used by resource-aware scheduling policies that
    /// choose among the top candidates based on system state (paper §6,
    /// extension (3)).
    pub fn peek_top_k(&self, k: usize) -> Vec<(QueryId, Rank)> {
        self.waiting
            .iter()
            .rev()
            .take(k)
            .map(|key| (key.2, key.0))
            .collect()
    }

    /// Dequeues a *specific* WAITING query (moving it to EXECUTING),
    /// bypassing the rank order. Returns `false` when the query is not
    /// WAITING. Used by scheduling policies that override the top-ranked
    /// pick.
    pub fn dequeue_specific(&mut self, id: QueryId) -> bool {
        match self.nodes.get(&id) {
            Some(n) if n.state == QueryState::Waiting => {
                self.transition(id, QueryState::Executing);
                self.stats.dequeued += 1;
                true
            }
            _ => false,
        }
    }

    /// Marks an EXECUTING query CACHED (its result is now reusable) and
    /// re-ranks affected neighbors.
    pub fn mark_cached(&mut self, id: QueryId) {
        self.transition(id, QueryState::Cached);
    }

    /// Sends an EXECUTING query back to WAITING — the supervision requeue
    /// (DESIGN.md §15): the worker running it died, so the query rejoins
    /// the dequeue index (fresh rank, original arrival order preserved)
    /// for a sibling worker to retry. Returns `false` when the query is
    /// absent or not EXECUTING.
    pub fn requeue(&mut self, id: QueryId) -> bool {
        match self.nodes.get(&id) {
            Some(n) if n.state == QueryState::Executing => {}
            _ => return false,
        }
        self.transition(id, QueryState::Waiting);
        // `transition` maintains the WAITING index only on *exit* from
        // WAITING; re-entry re-ranks and re-inserts here.
        let rank = self.compute_rank(id);
        let node = self.nodes.get_mut(&id).unwrap();
        node.rank = rank;
        let key = WaitKey(rank, Reverse(node.arrival_seq), id);
        self.waiting.insert(key);
        self.stats.requeued += 1;
        true
    }

    /// Removes a CACHED query whose result was evicted (SWAPPED_OUT): the
    /// node and all incident edges leave the graph and former neighbors are
    /// re-ranked (paper §4: "morphological transformation").
    pub fn swap_out(&mut self, id: QueryId) {
        let node = match self.nodes.remove(&id) {
            Some(n) => n,
            None => return,
        };
        debug_assert!(
            node.state == QueryState::Cached,
            "swap_out of non-cached node {id} in state {}",
            node.state
        );
        self.stats.swapped_out += 1;
        if node.state == QueryState::Waiting {
            self.waiting
                .remove(&WaitKey(node.rank, Reverse(node.arrival_seq), id));
        }
        let mut touched: Vec<QueryId> = Vec::new();
        for e in node.in_edges.iter().chain(node.out_edges.iter()) {
            if let Some(peer) = self.nodes.get_mut(&e.peer) {
                peer.in_edges.retain(|pe| pe.peer != id);
                peer.out_edges.retain(|pe| pe.peer != id);
                touched.push(e.peer);
            }
        }
        if !self.strategy.is_static() {
            touched.sort_unstable();
            touched.dedup();
            for peer in touched {
                self.rerank_if_waiting(peer);
            }
        }
    }

    /// Current state of a query, if present.
    pub fn state_of(&self, id: QueryId) -> Option<QueryState> {
        self.nodes.get(&id).map(|n| n.state)
    }

    /// Current rank of a query, if present.
    pub fn rank_of(&self, id: QueryId) -> Option<Rank> {
        self.nodes.get(&id).map(|n| n.rank)
    }

    /// The predicate of a query, if present.
    pub fn spec_of(&self, id: QueryId) -> Option<&S> {
        self.nodes.get(&id).map(|n| &n.spec)
    }

    /// Arrival sequence number of a query, if present.
    pub fn arrival_of(&self, id: QueryId) -> Option<u64> {
        self.nodes.get(&id).map(|n| n.arrival_seq)
    }

    /// Cached `qinputsize` of a query, if present (used by resource-aware
    /// dequeue policies without re-evaluating the spec).
    pub fn qinputsize_of(&self, id: QueryId) -> Option<u64> {
        self.nodes.get(&id).map(|n| n.qinputsize)
    }

    /// Queries whose results this query can reuse (`e_{k,id}`), sorted by
    /// descending weight.
    pub fn reuse_sources(&self, id: QueryId) -> Vec<Edge> {
        let mut v = self
            .nodes
            .get(&id)
            .map(|n| n.in_edges.clone())
            .unwrap_or_default();
        v.sort_by(|a, b| {
            b.weight
                .partial_cmp(&a.weight)
                .unwrap()
                .then(a.peer.cmp(&b.peer))
        });
        v
    }

    /// Queries that can reuse this query's result (`e_{id,k}`), sorted by
    /// descending weight.
    pub fn dependents(&self, id: QueryId) -> Vec<Edge> {
        let mut v = self
            .nodes
            .get(&id)
            .map(|n| n.out_edges.clone())
            .unwrap_or_default();
        v.sort_by(|a, b| {
            b.weight
                .partial_cmp(&a.weight)
                .unwrap()
                .then(a.peer.cmp(&b.peer))
        });
        v
    }

    /// Ids of all queries currently in a given state (unordered).
    pub fn ids_in_state(&self, state: QueryState) -> Vec<QueryId> {
        self.nodes
            .iter()
            .filter(|(_, n)| n.state == state)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Recomputes every node's rank from scratch and rebuilds the WAITING
    /// index. Exists for the incremental-vs-full re-ranking ablation and as
    /// a test oracle; `O(V + E)` per call.
    pub fn recompute_all_ranks(&mut self) {
        // lint:sorted: sorted below so the oracle is order-deterministic
        let mut ids: Vec<QueryId> = self.nodes.keys().copied().collect();
        ids.sort_unstable();
        self.waiting.clear();
        for id in ids {
            let rank = self.compute_rank(id);
            let node = self.nodes.get_mut(&id).unwrap();
            node.rank = rank;
            if node.state == QueryState::Waiting {
                self.waiting
                    .insert(WaitKey(rank, Reverse(node.arrival_seq), id));
            }
        }
    }

    /// Renders the graph in Graphviz DOT format (debugging aid).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph scheduling {\n");
        // lint:sorted: sorted on the next line before rendering
        let mut ids: Vec<&QueryId> = self.nodes.keys().collect();
        ids.sort();
        for id in &ids {
            let n = &self.nodes[id];
            s.push_str(&format!(
                "  \"{id}\" [label=\"{id}\\n{} r={:.0}\"];\n",
                n.state,
                n.rank.value()
            ));
        }
        for id in &ids {
            let n = &self.nodes[id];
            let mut es = n.out_edges.clone();
            es.sort_by_key(|e| e.peer);
            for e in es {
                s.push_str(&format!(
                    "  \"{id}\" -> \"{}\" [label=\"{:.0}\"];\n",
                    e.peer, e.weight
                ));
            }
        }
        s.push_str("}\n");
        s
    }

    /// Internal consistency check (test/debug aid): edge mirroring, WAITING
    /// index membership, and rank agreement with a from-scratch computation.
    pub fn validate(&self) -> Result<(), String> {
        // lint:sorted: order-independent consistency check (the first
        // reported error may vary, but pass/fail cannot)
        for (&id, n) in &self.nodes {
            for e in &n.out_edges {
                let peer = self
                    .nodes
                    .get(&e.peer)
                    .ok_or_else(|| format!("{id} out-edge to missing {}", e.peer))?;
                if !peer
                    .in_edges
                    .iter()
                    .any(|pe| pe.peer == id && pe.weight == e.weight)
                {
                    return Err(format!("edge {id}->{} not mirrored", e.peer));
                }
            }
            let in_wait = self
                .waiting
                .contains(&WaitKey(n.rank, Reverse(n.arrival_seq), id));
            if (n.state == QueryState::Waiting) != in_wait {
                return Err(format!(
                    "node {id} state {} but waiting-set membership {in_wait}",
                    n.state
                ));
            }
            let fresh = self.compute_rank(id);
            if n.state == QueryState::Waiting && fresh != n.rank {
                return Err(format!(
                    "node {id} stale rank {:?} vs fresh {:?}",
                    n.rank, fresh
                ));
            }
        }
        Ok(())
    }

    fn compute_rank(&self, id: QueryId) -> Rank {
        let node = &self.nodes[&id];
        // Affinity with the hot set is only evaluated for ChunkBatch; every
        // other strategy ignores the field.
        let hot_fraction = match self.strategy {
            Strategy::ChunkBatch { .. } if !node.chunks.is_empty() => {
                let hot = node
                    .chunks
                    .iter()
                    .filter(|c| self.hot_chunks.contains_key(c))
                    .count();
                hot as f64 / node.chunks.len() as f64
            }
            _ => 0.0,
        };
        let inputs = RankInputs {
            arrival_seq: node.arrival_seq,
            qinputsize: node.qinputsize,
            hot_fraction,
        };
        let in_edges = node
            .in_edges
            .iter()
            .filter_map(|e| self.nodes.get(&e.peer).map(|p| (p.state, e.weight)));
        let out_edges = node
            .out_edges
            .iter()
            .filter_map(|e| self.nodes.get(&e.peer).map(|p| (p.state, e.weight)));
        self.strategy.rank(inputs, in_edges, out_edges)
    }

    fn rerank_if_waiting(&mut self, id: QueryId) {
        let (old_rank, arrival, is_waiting) = match self.nodes.get(&id) {
            Some(n) => (n.rank, n.arrival_seq, n.state == QueryState::Waiting),
            None => return,
        };
        if !is_waiting {
            return;
        }
        let new_rank = self.compute_rank(id);
        self.stats.reranks += 1;
        if new_rank != old_rank {
            self.waiting
                .remove(&WaitKey(old_rank, Reverse(arrival), id));
            self.waiting.insert(WaitKey(new_rank, Reverse(arrival), id));
            self.nodes.get_mut(&id).unwrap().rank = new_rank;
        }
    }

    fn transition(&mut self, id: QueryId, next: QueryState) {
        let (neighbors, prev) = {
            let node = self
                .nodes
                .get_mut(&id)
                .unwrap_or_else(|| panic!("transition of unknown query {id}"));
            let prev = node.state;
            debug_assert!(
                prev.can_transition_to(next),
                "illegal transition {prev} -> {next} for {id}"
            );
            node.state = next;
            let neighbors: Vec<QueryId> = node
                .in_edges
                .iter()
                .chain(node.out_edges.iter())
                .map(|e| e.peer)
                .collect();
            (neighbors, prev)
        };
        // Leaving WAITING removes the node from the dequeue index.
        if prev == QueryState::Waiting {
            let node = &self.nodes[&id];
            self.waiting
                .remove(&WaitKey(node.rank, Reverse(node.arrival_seq), id));
        }
        // Maintain the hot-chunk refcounts over EXECUTING nodes.
        let hot_changed = (prev == QueryState::Executing) != (next == QueryState::Executing);
        if hot_changed && !self.nodes[&id].chunks.is_empty() {
            let chunks = self.nodes[&id].chunks.clone();
            if next == QueryState::Executing {
                for c in chunks {
                    *self.hot_chunks.entry(c).or_insert(0) += 1;
                }
            } else {
                for c in chunks {
                    if let Some(n) = self.hot_chunks.get_mut(&c) {
                        *n -= 1;
                        if *n == 0 {
                            self.hot_chunks.remove(&c);
                        }
                    }
                }
            }
        }
        if !self.strategy.is_static() {
            if matches!(self.strategy, Strategy::ChunkBatch { .. }) {
                // ChunkBatch ranks depend on the *global* hot set, not on
                // edges: a transition into/out of EXECUTING can change the
                // affinity of any waiting query sharing a chunk.
                if hot_changed {
                    self.rerank_all_waiting();
                }
            } else {
                let mut uniq = neighbors;
                uniq.sort_unstable();
                uniq.dedup();
                for peer in uniq {
                    self.rerank_if_waiting(peer);
                }
            }
        }
    }

    fn rerank_all_waiting(&mut self) {
        // BTreeSet iteration order is deterministic; collect first because
        // re-ranking mutates the set.
        let ids: Vec<QueryId> = self.waiting.iter().map(|k| k.2).collect();
        for id in ids {
            self.rerank_if_waiting(id);
        }
    }

    /// Like [`SchedulingGraph::dequeue`], but with the dequeue-time
    /// producer-affinity override (ROADMAP item 1): when the top-ranked
    /// query could be answered *entirely* by an earlier-arrived query that
    /// is still WAITING (`overlap == 1` on the in-edge), the producer is
    /// dequeued first, so that parallel workers do not pull a consumer
    /// ahead of its producer and duplicate the full computation. The walk
    /// follows producers-of-producers but always strictly decreases the
    /// arrival sequence, so it terminates even on mutual-overlap cliques.
    pub fn dequeue_preferring_producer(&mut self) -> Option<QueryId> {
        let (top, _) = self.peek()?;
        let mut chosen = top;
        while let Some(p) = self.full_coverage_waiting_producer(chosen) {
            chosen = p;
        }
        let ok = self.dequeue_specific(chosen);
        debug_assert!(ok, "peeked/walked node must be dequeueable");
        Some(chosen)
    }

    /// Earliest-arrived WAITING in-edge peer that fully covers `id`'s
    /// answer, if any.
    fn full_coverage_waiting_producer(&self, id: QueryId) -> Option<QueryId> {
        let node = self.nodes.get(&id)?;
        let mut best: Option<(u64, QueryId)> = None;
        for e in &node.in_edges {
            let p = match self.nodes.get(&e.peer) {
                Some(p) => p,
                None => continue,
            };
            if p.state != QueryState::Waiting || p.arrival_seq >= node.arrival_seq {
                continue;
            }
            if p.spec.overlap(&node.spec) < 1.0 {
                continue;
            }
            let key = (p.arrival_seq, e.peer);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(_, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil::IntervalSpec;

    fn q(i: u64) -> QueryId {
        QueryId(i)
    }

    fn graph(strategy: Strategy) -> SchedulingGraph<IntervalSpec> {
        SchedulingGraph::new(strategy)
    }

    #[test]
    fn fifo_dequeues_in_arrival_order() {
        let mut g = graph(Strategy::Fifo);
        g.insert(q(1), IntervalSpec::new(0, 100, 1));
        g.insert(q(2), IntervalSpec::new(500, 100, 1));
        g.insert(q(3), IntervalSpec::new(1000, 100, 1));
        assert_eq!(g.dequeue(), Some(q(1)));
        assert_eq!(g.dequeue(), Some(q(2)));
        assert_eq!(g.dequeue(), Some(q(3)));
        assert_eq!(g.dequeue(), None);
    }

    #[test]
    fn sjf_dequeues_shortest_first() {
        let mut g = graph(Strategy::Sjf);
        g.insert(q(1), IntervalSpec::new(0, 1000, 1));
        g.insert(q(2), IntervalSpec::new(5000, 10, 1));
        g.insert(q(3), IntervalSpec::new(9000, 100, 1));
        assert_eq!(g.dequeue(), Some(q(2)));
        assert_eq!(g.dequeue(), Some(q(3)));
        assert_eq!(g.dequeue(), Some(q(1)));
    }

    #[test]
    fn insert_creates_bidirectional_edges_for_same_scale_overlap() {
        let mut g = graph(Strategy::Muf);
        g.insert(q(1), IntervalSpec::new(0, 100, 1));
        g.insert(q(2), IntervalSpec::new(50, 100, 1));
        let src = g.reuse_sources(q(2));
        assert_eq!(src.len(), 1);
        assert_eq!(src[0].peer, q(1));
        assert_eq!(src[0].weight, 50.0);
        let deps = g.dependents(q(1));
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].peer, q(2));
        g.validate().unwrap();
    }

    #[test]
    fn non_invertible_transform_creates_one_directional_edge() {
        let mut g = graph(Strategy::Muf);
        // Fine result (scale 1) can serve the coarse query (scale 2), not
        // vice versa — like e_{2,4} in Fig. 3 of the paper.
        g.insert(q(1), IntervalSpec::new(0, 100, 1));
        g.insert(q(2), IntervalSpec::new(0, 100, 2));
        assert_eq!(g.reuse_sources(q(2)).len(), 1);
        assert!(g.reuse_sources(q(1)).is_empty());
        assert_eq!(g.dependents(q(1)).len(), 1);
        assert!(g.dependents(q(2)).is_empty());
    }

    #[test]
    fn muf_prefers_most_useful() {
        let mut g = graph(Strategy::Muf);
        // q1 overlaps q3 and q4; q2 overlaps nothing.
        g.insert(q(1), IntervalSpec::new(0, 100, 1));
        g.insert(q(2), IntervalSpec::new(10_000, 100, 1));
        g.insert(q(3), IntervalSpec::new(0, 100, 1));
        g.insert(q(4), IntervalSpec::new(50, 100, 1));
        // q1's result is fully reusable by q3 (identical) and partially by
        // q4; q1 should be dequeued first.
        assert_eq!(g.dequeue(), Some(q(1)));
        g.validate().unwrap();
    }

    #[test]
    fn state_transition_triggers_rerank_for_dynamic_strategy() {
        let mut g = graph(Strategy::Cnbf);
        g.insert(q(1), IntervalSpec::new(0, 100, 1));
        g.insert(q(2), IntervalSpec::new(0, 100, 1));
        // Both ranks start at 0 (no cached/executing neighbors).
        assert_eq!(g.rank_of(q(2)).unwrap().value(), 0.0);
        // Dequeue q1 (FIFO tiebreak); its execution should *lower* q2's
        // CNBF rank (dependency on an executing node).
        assert_eq!(g.dequeue(), Some(q(1)));
        assert!(g.rank_of(q(2)).unwrap().value() < 0.0);
        // Once cached, q2's rank turns positive (reuse available).
        g.mark_cached(q(1));
        assert!(g.rank_of(q(2)).unwrap().value() > 0.0);
        g.validate().unwrap();
    }

    #[test]
    fn cf_alpha_orders_executing_dependencies_between_cached_and_none() {
        let mut g = graph(Strategy::closest_first_default());
        // a will be cached, b executing, then three probes that depend on
        // exactly one of them (or nothing).
        g.insert(q(1), IntervalSpec::new(0, 100, 1));
        g.insert(q(2), IntervalSpec::new(1000, 100, 1));
        assert_eq!(g.dequeue(), Some(q(1)));
        assert_eq!(g.dequeue(), Some(q(2)));
        g.mark_cached(q(1));
        g.insert(q(3), IntervalSpec::new(0, 100, 1)); // depends on cached q1
        g.insert(q(4), IntervalSpec::new(1000, 100, 1)); // depends on executing q2
        g.insert(q(5), IntervalSpec::new(9000, 100, 1)); // depends on nothing
        let r3 = g.rank_of(q(3)).unwrap().value();
        let r4 = g.rank_of(q(4)).unwrap().value();
        let r5 = g.rank_of(q(5)).unwrap().value();
        assert!(r3 > r4 && r4 > r5);
        assert_eq!(g.dequeue(), Some(q(3)));
    }

    #[test]
    fn ff_avoids_dependent_queries() {
        let mut g = graph(Strategy::FarthestFirst);
        g.insert(q(1), IntervalSpec::new(0, 100, 1));
        g.insert(q(2), IntervalSpec::new(0, 100, 1)); // depends on q1 (and vice versa)
        g.insert(q(3), IntervalSpec::new(9000, 100, 1)); // independent
                                                         // q3 has no incoming edges from waiting/executing nodes → rank 0;
                                                         // q1/q2 have negative ranks.
        assert_eq!(g.dequeue(), Some(q(3)));
        g.validate().unwrap();
    }

    #[test]
    fn swap_out_removes_node_and_edges_and_reranks() {
        let mut g = graph(Strategy::Cnbf);
        g.insert(q(1), IntervalSpec::new(0, 100, 1));
        g.insert(q(2), IntervalSpec::new(0, 100, 1));
        assert_eq!(g.dequeue(), Some(q(1)));
        g.mark_cached(q(1));
        assert!(g.rank_of(q(2)).unwrap().value() > 0.0);
        g.swap_out(q(1));
        assert_eq!(g.len(), 1);
        assert!(g.state_of(q(1)).is_none());
        assert!(g.reuse_sources(q(2)).is_empty());
        // With the cached source gone, q2's CNBF rank falls back to 0.
        assert_eq!(g.rank_of(q(2)).unwrap().value(), 0.0);
        g.validate().unwrap();
    }

    #[test]
    fn swap_out_missing_node_is_noop() {
        let mut g = graph(Strategy::Fifo);
        g.insert(q(1), IntervalSpec::new(0, 100, 1));
        g.swap_out(q(99));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn requeue_returns_executing_query_to_the_dequeue_index() {
        let mut g = graph(Strategy::Fifo);
        g.insert(q(1), IntervalSpec::new(0, 100, 1));
        g.insert(q(2), IntervalSpec::new(5000, 100, 1));
        assert_eq!(g.dequeue(), Some(q(1)));
        // The worker running q1 "died": q1 rejoins the queue and, under
        // FIFO, dequeues again ahead of the later-arrived q2.
        assert!(g.requeue(q(1)));
        assert_eq!(g.state_of(q(1)), Some(QueryState::Waiting));
        g.validate().unwrap();
        assert_eq!(g.dequeue(), Some(q(1)));
        assert_eq!(g.dequeue(), Some(q(2)));
        assert_eq!(g.stats().requeued, 1);
    }

    #[test]
    fn requeue_recomputes_rank_against_current_graph() {
        let mut g = graph(Strategy::Cnbf);
        g.insert(q(1), IntervalSpec::new(0, 100, 1));
        g.insert(q(2), IntervalSpec::new(0, 100, 1));
        assert_eq!(g.dequeue(), Some(q(1)));
        assert_eq!(g.dequeue(), Some(q(2)));
        g.mark_cached(q(1));
        // q2 re-enters WAITING with a fresh CNBF rank that sees the now
        // cached q1 (positive), not its stale dequeue-time rank.
        assert!(g.requeue(q(2)));
        assert!(g.rank_of(q(2)).unwrap().value() > 0.0);
        g.validate().unwrap();
    }

    #[test]
    fn requeue_rejects_non_executing_queries() {
        let mut g = graph(Strategy::Fifo);
        g.insert(q(1), IntervalSpec::new(0, 100, 1));
        assert!(!g.requeue(q(1)), "WAITING query cannot be requeued");
        assert!(!g.requeue(q(99)), "unknown query cannot be requeued");
        assert_eq!(g.dequeue(), Some(q(1)));
        g.mark_cached(q(1));
        assert!(!g.requeue(q(1)), "CACHED query cannot be requeued");
        assert_eq!(g.stats().requeued, 0);
    }

    #[test]
    fn requeue_restores_chunkbatch_hot_set_accounting() {
        let mut g = graph(Strategy::chunk_batch_default());
        g.insert(q(1), IntervalSpec::new(0, 100, 1));
        g.insert(q(2), IntervalSpec::new(0, 100, 1));
        assert_eq!(g.dequeue(), Some(q(1)));
        // Requeue drops q1's chunks from the hot set (it is no longer
        // EXECUTING) and the index stays consistent.
        assert!(g.requeue(q(1)));
        g.validate().unwrap();
        assert_eq!(g.dequeue(), Some(q(1)));
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "already in scheduling graph")]
    fn duplicate_insert_panics() {
        let mut g = graph(Strategy::Fifo);
        g.insert(q(1), IntervalSpec::new(0, 100, 1));
        g.insert(q(1), IntervalSpec::new(0, 100, 1));
    }

    #[test]
    fn peek_matches_dequeue() {
        let mut g = graph(Strategy::Sjf);
        g.insert(q(1), IntervalSpec::new(0, 1000, 1));
        g.insert(q(2), IntervalSpec::new(5000, 10, 1));
        let (peeked, _) = g.peek().unwrap();
        assert_eq!(g.dequeue(), Some(peeked));
    }

    #[test]
    fn stats_counters_track_operations() {
        let mut g = graph(Strategy::Muf);
        g.insert(q(1), IntervalSpec::new(0, 100, 1));
        g.insert(q(2), IntervalSpec::new(50, 100, 1));
        g.dequeue();
        let s = g.stats();
        assert_eq!(s.inserted, 2);
        assert_eq!(s.dequeued, 1);
        assert_eq!(s.overlap_evals, 2);
        assert!(s.edges_created >= 2);
    }

    #[test]
    fn recompute_all_matches_incremental() {
        let mut g = graph(Strategy::Cnbf);
        for i in 0..20 {
            g.insert(q(i), IntervalSpec::new((i % 5) * 40, 100, 1 + (i % 2)));
        }
        for _ in 0..5 {
            let id = g.dequeue().unwrap();
            g.mark_cached(id);
        }
        // Only WAITING ranks are maintained incrementally (ranks of nodes
        // already dequeued no longer influence scheduling).
        let waiting: Vec<QueryId> = g.ids_in_state(QueryState::Waiting);
        let incr: Vec<_> = waiting.iter().map(|&i| g.rank_of(i).unwrap()).collect();
        g.recompute_all_ranks();
        let full: Vec<_> = waiting.iter().map(|&i| g.rank_of(i).unwrap()).collect();
        assert_eq!(incr, full);
        g.validate().unwrap();
    }

    #[test]
    fn dot_export_contains_nodes_and_edges() {
        let mut g = graph(Strategy::Fifo);
        g.insert(q(1), IntervalSpec::new(0, 100, 1));
        g.insert(q(2), IntervalSpec::new(50, 100, 1));
        let dot = g.to_dot();
        assert!(dot.contains("\"q1\""));
        assert!(dot.contains("\"q1\" -> \"q2\""));
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn peek_top_k_orders_best_first() {
        let mut g = graph(Strategy::Sjf);
        g.insert(q(1), IntervalSpec::new(0, 1000, 1));
        g.insert(q(2), IntervalSpec::new(5000, 10, 1));
        g.insert(q(3), IntervalSpec::new(9000, 100, 1));
        let top = g.peek_top_k(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, q(2)); // shortest job first
        assert_eq!(top[1].0, q(3));
        assert!(top[0].1 >= top[1].1);
        // k larger than the waiting set is fine.
        assert_eq!(g.peek_top_k(10).len(), 3);
    }

    #[test]
    fn dequeue_specific_overrides_rank_order() {
        let mut g = graph(Strategy::Sjf);
        g.insert(q(1), IntervalSpec::new(0, 1000, 1));
        g.insert(q(2), IntervalSpec::new(5000, 10, 1));
        assert!(g.dequeue_specific(q(1))); // not the top-ranked node
        assert_eq!(g.state_of(q(1)), Some(QueryState::Executing));
        assert_eq!(g.waiting_len(), 1);
        // Not waiting anymore: both re-dequeue and unknown ids fail.
        assert!(!g.dequeue_specific(q(1)));
        assert!(!g.dequeue_specific(q(99)));
        assert_eq!(g.dequeue(), Some(q(2)));
        g.validate().unwrap();
    }

    #[test]
    fn qinputsize_of_exposes_cached_value() {
        let mut g = graph(Strategy::Fifo);
        g.insert(q(1), IntervalSpec::new(0, 123, 1));
        assert_eq!(g.qinputsize_of(q(1)), Some(123));
        assert_eq!(g.qinputsize_of(q(9)), None);
    }

    #[test]
    fn chunkbatch_batches_waiting_queries_on_hot_chunks() {
        let mut g = graph(Strategy::ChunkBatch {
            starvation_dial: 0.0,
        });
        // Two chunk groups far apart; queries arrive interleaved. Tiles
        // within a group share input chunks but have disjoint outputs (no
        // reuse edges), which is exactly the case the paper strategies
        // cannot batch.
        g.insert(q(1), IntervalSpec::new(0, 32, 1)); // group A, chunk 0
        g.insert(q(2), IntervalSpec::new(1000, 32, 1)); // group B
        g.insert(q(3), IntervalSpec::new(32, 32, 1)); // group A, chunk 0
        g.insert(q(4), IntervalSpec::new(1032, 32, 1)); // group B
        assert!(g.reuse_sources(q(3)).is_empty(), "disjoint outputs");
        // FIFO tiebreak dequeues q1; its chunk becomes hot, so q3 (same
        // chunk) must jump ahead of q2 (earlier arrival, cold chunk).
        assert_eq!(g.dequeue(), Some(q(1)));
        assert_eq!(g.dequeue(), Some(q(3)));
        assert_eq!(g.dequeue(), Some(q(2)));
        assert_eq!(g.dequeue(), Some(q(4)));
        g.validate().unwrap();
    }

    #[test]
    fn chunkbatch_hot_set_cools_down_when_execution_finishes() {
        let mut g = graph(Strategy::ChunkBatch {
            starvation_dial: 0.0,
        });
        g.insert(q(1), IntervalSpec::new(0, 32, 1));
        g.insert(q(2), IntervalSpec::new(32, 32, 1)); // same chunk as q1
        assert_eq!(g.dequeue(), Some(q(1)));
        assert!(g.rank_of(q(2)).unwrap().value() > 0.0, "chunk 0 is hot");
        g.mark_cached(q(1));
        assert_eq!(
            g.rank_of(q(2)).unwrap().value(),
            0.0,
            "hot set drops back when the executor finishes"
        );
        g.validate().unwrap();
    }

    #[test]
    fn chunkbatch_starvation_dial_bounds_queue_jumping() {
        let mut g = graph(Strategy::ChunkBatch {
            starvation_dial: 1.0,
        });
        g.insert(q(1), IntervalSpec::new(0, 32, 1));
        g.insert(q(2), IntervalSpec::new(1000, 32, 1)); // cold, earlier
        g.insert(q(3), IntervalSpec::new(32, 32, 1)); // hot, later
        assert_eq!(g.dequeue(), Some(q(1)));
        // dial = 1: affinity can never override arrival order.
        assert_eq!(g.dequeue(), Some(q(2)));
        assert_eq!(g.dequeue(), Some(q(3)));
    }

    #[test]
    fn producer_affinity_dequeues_producer_before_consumer() {
        // SJF ranks the (smaller) consumer above its producer even though
        // the producer fully covers it and arrived first — the out-of-order
        // dequeue that caused duplicate full computes (ROADMAP item 1).
        let mut g = graph(Strategy::Sjf);
        g.insert(q(1), IntervalSpec::new(0, 100, 1)); // producer
        g.insert(q(2), IntervalSpec::new(0, 50, 1)); // consumer, shorter
        assert_eq!(g.peek().unwrap().0, q(2));
        assert_eq!(g.dequeue_preferring_producer(), Some(q(1)));
        assert_eq!(g.dequeue_preferring_producer(), Some(q(2)));
        g.validate().unwrap();
    }

    #[test]
    fn producer_affinity_walks_chains_and_terminates_on_equal_pairs() {
        let mut g = graph(Strategy::Sjf);
        // Identical specs: mutual full-coverage edges. The walk must pick
        // the earliest arrival and stop (arrival strictly decreases).
        g.insert(q(1), IntervalSpec::new(0, 100, 1));
        g.insert(q(2), IntervalSpec::new(0, 100, 1));
        g.insert(q(3), IntervalSpec::new(0, 100, 1));
        assert_eq!(g.dequeue_preferring_producer(), Some(q(1)));
        assert_eq!(g.dequeue_preferring_producer(), Some(q(2)));
        assert_eq!(g.dequeue_preferring_producer(), Some(q(3)));
        assert_eq!(g.dequeue_preferring_producer(), None);
    }

    #[test]
    fn producer_affinity_ignores_partial_coverage() {
        let mut g = graph(Strategy::Sjf);
        g.insert(q(1), IntervalSpec::new(0, 100, 1));
        g.insert(q(2), IntervalSpec::new(50, 60, 1)); // only partly covered
        assert_eq!(g.peek().unwrap().0, q(2));
        // Partial producers are not worth delaying the top pick for.
        assert_eq!(g.dequeue_preferring_producer(), Some(q(2)));
    }

    #[test]
    fn ids_in_state_partitions_nodes() {
        let mut g = graph(Strategy::Fifo);
        for i in 0..6 {
            g.insert(q(i), IntervalSpec::new(i * 1000, 10, 1));
        }
        let a = g.dequeue().unwrap();
        let b = g.dequeue().unwrap();
        g.mark_cached(a);
        assert_eq!(g.ids_in_state(QueryState::Waiting).len(), 4);
        assert_eq!(g.ids_in_state(QueryState::Executing), vec![b]);
        assert_eq!(g.ids_in_state(QueryState::Cached), vec![a]);
    }
}
