//! Volume visualization query predicates.
//!
//! A query renders a 2-D projection of a sub-volume: a rectangular X/Y
//! footprint, a depth range along Z, and a level of detail (every-Nth
//! sampling on X/Y). Two projection operators:
//!
//! * **MIP** (maximum intensity projection) — the brightest voxel along
//!   each ray; the standard first-look rendering in medical/scientific
//!   visualization. Maxima compose, so LOD projection from cached results
//!   is *exact*.
//! * **AvgProj** — mean intensity along each ray (an X-ray-like view).
//!
//! Reuse semantics: a cached projection can contribute to a query with the
//! same operator and the *same depth range* whose LOD is a multiple of the
//! cached one, over the intersection of their footprints — a projection
//! over a different depth range answers a different integral and is not
//! reusable (unlike the 2-D microscope, where any sub-window is).

use crate::dataset::VolumeDataset;
use crate::geom3::Box3;
use vmqs_core::{QuerySpec, Rect};

/// Projection operator along the Z axis.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VolOp {
    /// Maximum intensity projection.
    Mip,
    /// Average intensity projection.
    AvgProj,
}

impl VolOp {
    /// Short name for experiment output.
    pub fn name(self) -> &'static str {
        match self {
            VolOp::Mip => "mip",
            VolOp::AvgProj => "avgproj",
        }
    }
}

/// A volume projection query predicate.
///
/// Construction clips the footprint to the volume, snaps it to LOD
/// alignment (so cached projections at finer LODs project exactly), and
/// clamps the depth range.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VolQuery {
    /// The volume being visualized.
    pub volume: VolumeDataset,
    /// X/Y footprint at base resolution, LOD-aligned.
    pub footprint: Rect,
    /// First depth slice (inclusive).
    pub z0: u32,
    /// Last depth slice (exclusive).
    pub z1: u32,
    /// Level of detail: sample every `lod`-th voxel on X and Y.
    pub lod: u32,
    /// Projection operator.
    pub op: VolOp,
}

impl VolQuery {
    /// Creates a query. Panics when the clipped, aligned footprint or the
    /// depth range is empty, or `lod == 0`.
    pub fn new(
        volume: VolumeDataset,
        footprint: Rect,
        z0: u32,
        z1: u32,
        lod: u32,
        op: VolOp,
    ) -> Self {
        assert!(lod >= 1, "lod must be >= 1");
        let clipped = footprint
            .intersect(&Rect::new(0, 0, volume.width, volume.height))
            .expect("footprint outside volume");
        let x = clipped.x - clipped.x % lod;
        let y = clipped.y - clipped.y % lod;
        let w = (clipped.x1() - x) / lod * lod;
        let h = (clipped.y1() - y) / lod * lod;
        assert!(w > 0 && h > 0, "footprint empty after LOD alignment");
        let z1c = z1.min(volume.depth);
        assert!(z0 < z1c, "empty depth range");
        VolQuery {
            volume,
            footprint: Rect::new(x, y, w, h),
            z0,
            z1: z1c,
            lod,
            op,
        }
    }

    /// The 3-D input box scanned when computing from raw bricks.
    pub fn input_box(&self) -> Box3 {
        Box3::from_footprint(self.footprint, self.z0, self.z1)
    }

    /// Output image dimensions.
    pub fn output_dims(&self) -> (u32, u32) {
        (self.footprint.w / self.lod, self.footprint.h / self.lod)
    }

    /// True when a cached `self` result can contribute to `other`.
    pub fn can_project_to(&self, other: &VolQuery) -> bool {
        self.volume.id == other.volume.id
            && self.op == other.op
            && self.z0 == other.z0
            && self.z1 == other.z1
            && other.lod.is_multiple_of(self.lod)
    }

    /// The part of `target`'s footprint a cached `self` covers, snapped
    /// inward to `target`'s LOD grid.
    pub fn aligned_coverage(&self, target: &VolQuery) -> Option<Rect> {
        if !self.can_project_to(target) {
            return None;
        }
        let inter = self.footprint.intersect(&target.footprint)?;
        let l = target.lod;
        let x0 = inter.x.div_ceil(l) * l;
        let y0 = inter.y.div_ceil(l) * l;
        let x1 = inter.x1() / l * l;
        let y1 = inter.y1() / l * l;
        if x0 < x1 && y0 < y1 {
            Some(Rect::from_edges(x0, y0, x1, y1))
        } else {
            None
        }
    }

    /// Sub-queries for the uncovered footprint remainder.
    pub fn subqueries_for_remainder(&self, covered: &[Rect]) -> Vec<VolQuery> {
        vmqs_core::geom::subtract_all(&self.footprint, covered)
            .into_iter()
            .filter(|r| r.w >= self.lod && r.h >= self.lod)
            .map(|r| VolQuery::new(self.volume, r, self.z0, self.z1, self.lod, self.op))
            .collect()
    }
}

impl vmqs_core::SpatialSpec for VolQuery {
    fn region_key(&self) -> (vmqs_core::DatasetId, Rect) {
        (self.volume.id, self.footprint)
    }
}

impl QuerySpec for VolQuery {
    fn cmp(&self, other: &Self) -> bool {
        self.volume.id == other.volume.id
            && self.op == other.op
            && self.lod == other.lod
            && self.footprint == other.footprint
            && self.z0 == other.z0
            && self.z1 == other.z1
    }

    /// Eq. 4 transposed to the volume application: footprint area ratio
    /// times LOD ratio, zero unless operator and depth range match.
    fn overlap(&self, other: &Self) -> f64 {
        if !self.can_project_to(other) {
            return 0.0;
        }
        let inter = self.footprint.intersection_area(&other.footprint);
        if inter == 0 {
            return 0.0;
        }
        (inter as f64 / other.footprint.area() as f64) * (self.lod as f64 / other.lod as f64)
    }

    fn qoutsize(&self) -> u64 {
        let (w, h) = self.output_dims();
        w as u64 * h as u64 // one byte per output pixel
    }

    fn qinputsize(&self) -> u64 {
        self.volume.input_bytes(&self.input_box())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmqs_core::DatasetId;

    fn vol() -> VolumeDataset {
        VolumeDataset::new(DatasetId(0), 400, 400, 200)
    }

    fn q(x: u32, y: u32, side: u32, z0: u32, z1: u32, lod: u32, op: VolOp) -> VolQuery {
        VolQuery::new(vol(), Rect::new(x, y, side, side), z0, z1, lod, op)
    }

    #[test]
    fn constructor_aligns_and_clamps() {
        let v = q(13, 7, 100, 0, 500, 4, VolOp::Mip);
        assert_eq!(v.footprint.x % 4, 0);
        assert_eq!(v.footprint.w % 4, 0);
        assert_eq!(v.z1, 200); // clamped to depth
        assert_eq!(v.input_box().d, 200);
    }

    #[test]
    #[should_panic(expected = "empty depth range")]
    fn empty_depth_rejected() {
        q(0, 0, 100, 300, 500, 1, VolOp::Mip);
    }

    #[test]
    fn cmp_requires_full_equality() {
        let a = q(0, 0, 100, 0, 100, 2, VolOp::Mip);
        assert!(a.cmp(&a.clone()));
        assert!(!a.cmp(&q(0, 0, 100, 0, 100, 2, VolOp::AvgProj)));
        assert!(!a.cmp(&q(0, 0, 100, 0, 120, 2, VolOp::Mip)));
        assert!(!a.cmp(&q(0, 0, 100, 0, 100, 4, VolOp::Mip)));
    }

    #[test]
    fn overlap_requires_same_depth_range() {
        let a = q(0, 0, 100, 0, 100, 2, VolOp::Mip);
        let same = q(50, 0, 100, 0, 100, 2, VolOp::Mip);
        assert!(a.overlap(&same) > 0.0);
        // Different depth: projections are over different integrals.
        let deeper = q(50, 0, 100, 0, 150, 2, VolOp::Mip);
        assert_eq!(a.overlap(&deeper), 0.0);
        let shifted = q(50, 0, 100, 50, 150, 2, VolOp::Mip);
        assert_eq!(a.overlap(&shifted), 0.0);
    }

    #[test]
    fn overlap_lod_directionality() {
        let fine = q(0, 0, 100, 0, 100, 2, VolOp::Mip);
        let coarse = q(0, 0, 100, 0, 100, 4, VolOp::Mip);
        assert!(fine.overlap(&coarse) > 0.0);
        assert_eq!(coarse.overlap(&fine), 0.0);
        assert!((fine.overlap(&fine) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn qoutsize_and_qinputsize() {
        let v = q(0, 0, 80, 0, 80, 2, VolOp::Mip);
        assert_eq!(v.qoutsize(), 40 * 40);
        // 80x80x80 box over 40-bricks: 2x2x2 bricks.
        assert_eq!(v.qinputsize(), 8 * 65536);
    }

    #[test]
    fn aligned_coverage_and_subqueries() {
        let cached = q(0, 0, 200, 0, 100, 2, VolOp::Mip);
        let target = q(100, 0, 200, 0, 100, 4, VolOp::Mip);
        let cov = cached.aligned_coverage(&target).unwrap();
        assert_eq!(cov, Rect::new(100, 0, 100, 200));
        let subs = target.subqueries_for_remainder(&[cov]);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].footprint, Rect::new(200, 0, 100, 200));
        assert_eq!(subs[0].z0, 0);
        assert_eq!(subs[0].z1, 100);
    }
}
