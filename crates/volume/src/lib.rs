//! # vmqs-volume
//!
//! The second data-analysis application the paper's conclusions call for
//! (§6, extension (2): "additional data analysis applications (e.g.,
//! scientific visualization of 3-dimensional datasets)").
//!
//! A 3-D scalar volume — 4 GiB per dataset, partitioned into cubic bricks
//! of one 64 KB page each — is visualized by **projection queries**:
//! maximum-intensity (MIP) or average-intensity projections of a
//! footprint × depth-slab sub-volume at a level of detail. The predicate
//! implements [`vmqs_core::QuerySpec`] with an Eq.-4-style overlap index,
//! so the *unchanged* scheduling graph, ranking strategies, Data Store,
//! and Page Space serve this application too; [`VolSimApp`] plugs it into
//! the discrete-event simulator through the same
//! [`vmqs_sim::SimApplication`] interface the microscope uses, and
//! [`VolExecutor`] runs it on the *real* multithreaded server through
//! [`vmqs_server::AppExecutor`].
//!
//! Notable semantic contrast with the 2-D microscope: a cached projection
//! is only reusable for queries over the **same depth range** (a
//! projection over different depths answers a different integral), so the
//! reuse graph is sparser and depth-stepping clients periodically break
//! locality — a different stress pattern for the ranking strategies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod dataset;
mod executor;
mod geom3;
mod image;
pub mod kernels;
mod query;
mod workload;

pub use app::{VolCostModel, VolSimApp};
pub use dataset::{VolumeDataset, BRICK_SIDE, PAGE_SIZE};
pub use executor::VolExecutor;
pub use geom3::Box3;
pub use image::GrayImage;
pub use query::{VolOp, VolQuery};
pub use workload::{generate_volume, run_volume_sim, VolWorkloadConfig};
