//! The volume application's cost model and [`SimApplication`] adapter —
//! plugging the §6 3-D visualization application into the same simulated
//! middleware the Virtual Microscope runs on.

use crate::query::{VolOp, VolQuery};
use vmqs_core::geom::subtract_all;
use vmqs_core::Rect;
use vmqs_pagespace::PageKey;
use vmqs_sim::{ReusePlan, SimApplication};
use vmqs_storage::DiskModel;

/// CPU cost rates for the projection kernels, in seconds per input byte.
///
/// There are no paper-reported ratios for this application (it is future
/// work in the paper); we parameterize MIP as I/O-leaning (a compare per
/// voxel) and average projection as balanced (accumulate + divide),
/// creating the same two contrasting regimes the VM evaluation used.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VolCostModel {
    /// CPU seconds per input byte for MIP.
    pub mip_per_byte: f64,
    /// CPU seconds per input byte for average projection.
    pub avgproj_per_byte: f64,
    /// CPU seconds per reused output byte for `project`.
    pub project_per_byte: f64,
    /// Fixed per-query planning overhead.
    pub planning_overhead: f64,
}

impl VolCostModel {
    /// Calibrates against a disk model (ratios relative to streaming I/O
    /// time, like [`vmqs_microscope::VmCostModel::calibrated`]).
    pub fn calibrated(disk: &DiskModel) -> Self {
        let io = 1.0 / disk.bandwidth;
        VolCostModel {
            mip_per_byte: 0.15 * io,
            avgproj_per_byte: 1.0 * io,
            project_per_byte: 0.01 * io,
            planning_overhead: 1e-4,
        }
    }

    /// CPU seconds for `input_bytes` under `op`.
    pub fn compute_time(&self, op: VolOp, input_bytes: u64) -> f64 {
        let per = match op {
            VolOp::Mip => self.mip_per_byte,
            VolOp::AvgProj => self.avgproj_per_byte,
        };
        per * input_bytes as f64
    }
}

/// Volume visualization adapter for the discrete-event simulator.
#[derive(Clone, Copy, Debug)]
pub struct VolSimApp {
    /// CPU cost rates.
    pub cost: VolCostModel,
}

impl VolSimApp {
    /// Creates the adapter.
    pub fn new(cost: VolCostModel) -> Self {
        VolSimApp { cost }
    }
}

impl SimApplication for VolSimApp {
    type Spec = VolQuery;

    fn plan(&self, target: &VolQuery, cached: &[VolQuery]) -> ReusePlan {
        let mut covered: Vec<Rect> = Vec::new();
        let mut reused_px: u64 = 0;
        let l2 = target.lod as u64 * target.lod as u64;
        for src in cached {
            let cov = match src.aligned_coverage(target) {
                Some(c) => c,
                None => continue,
            };
            for frag in subtract_all(&cov, &covered) {
                reused_px += frag.area() / l2;
                covered.push(frag);
            }
        }

        let mut pages = Vec::new();
        let mut input_bytes = 0u64;
        for sub in target.subqueries_for_remainder(&covered) {
            let bricks = sub.volume.bricks_intersecting(&sub.input_box());
            input_bytes += bricks.len() as u64 * crate::dataset::PAGE_SIZE as u64;
            pages.extend(bricks.into_iter().map(|i| PageKey::new(sub.volume.id, i)));
        }

        let (w, h) = target.output_dims();
        let total_px = w as u64 * h as u64;
        ReusePlan {
            covered_fraction: if total_px == 0 {
                0.0
            } else {
                reused_px as f64 / total_px as f64
            },
            reused_bytes: reused_px, // one byte per output pixel
            pages,
            input_bytes,
        }
    }

    fn compute_seconds(&self, spec: &VolQuery, input_bytes: u64) -> f64 {
        self.cost.compute_time(spec.op, input_bytes)
    }

    fn project_seconds(&self, reused_bytes: u64) -> f64 {
        self.cost.project_per_byte * reused_bytes as f64
    }

    fn planning_seconds(&self) -> f64 {
        self.cost.planning_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::VolumeDataset;
    use vmqs_core::{DatasetId, QuerySpec};

    fn app() -> VolSimApp {
        VolSimApp::new(VolCostModel::calibrated(&DiskModel::circa_2002()))
    }

    fn vol() -> VolumeDataset {
        VolumeDataset::large(DatasetId(0))
    }

    fn q(x: u32, y: u32, side: u32, z0: u32, z1: u32, lod: u32, op: VolOp) -> VolQuery {
        VolQuery::new(vol(), Rect::new(x, y, side, side), z0, z1, lod, op)
    }

    #[test]
    fn plan_without_cache_scans_whole_box() {
        let t = q(0, 0, 512, 0, 256, 2, VolOp::Mip);
        let plan = app().plan(&t, &[]);
        assert_eq!(plan.covered_fraction, 0.0);
        assert_eq!(plan.input_bytes, t.qinputsize());
        assert!(!plan.pages.is_empty());
    }

    #[test]
    fn plan_full_cover_from_finer_lod() {
        let t = q(0, 0, 512, 0, 256, 4, VolOp::Mip);
        let cached = q(0, 0, 1024, 0, 256, 2, VolOp::Mip);
        let plan = app().plan(&t, &[cached]);
        assert!((plan.covered_fraction - 1.0).abs() < 1e-9);
        assert!(plan.pages.is_empty());
        assert_eq!(plan.reused_bytes, t.qoutsize());
    }

    #[test]
    fn plan_ignores_depth_mismatched_candidates() {
        let t = q(0, 0, 512, 0, 256, 2, VolOp::Mip);
        let wrong_depth = q(0, 0, 1024, 0, 512, 2, VolOp::Mip);
        let plan = app().plan(&t, &[wrong_depth]);
        assert_eq!(plan.covered_fraction, 0.0);
        assert_eq!(plan.input_bytes, t.qinputsize());
    }

    #[test]
    fn cost_regimes_contrast() {
        let a = app();
        assert!(
            a.cost.compute_time(VolOp::AvgProj, 1 << 20)
                > 3.0 * a.cost.compute_time(VolOp::Mip, 1 << 20)
        );
    }
}
