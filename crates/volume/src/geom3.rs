//! Axis-aligned boxes in 3-D voxel coordinates.
//!
//! Volume queries select a rectangular footprint on the X/Y plane and a
//! depth range along Z; internally that is an axis-aligned box. Half-open
//! on every axis, mirroring [`vmqs_core::Rect`].

use vmqs_core::Rect;

/// A half-open axis-aligned box of voxels.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Box3 {
    /// Left edge.
    pub x: u32,
    /// Top edge.
    pub y: u32,
    /// Front edge (depth).
    pub z: u32,
    /// Width (X extent).
    pub w: u32,
    /// Height (Y extent).
    pub h: u32,
    /// Depth (Z extent).
    pub d: u32,
}

impl Box3 {
    /// Creates a box from origin and size.
    pub const fn new(x: u32, y: u32, z: u32, w: u32, h: u32, d: u32) -> Self {
        Box3 { x, y, z, w, h, d }
    }

    /// Builds a box from an X/Y footprint and a Z range `[z0, z1)`.
    pub fn from_footprint(footprint: Rect, z0: u32, z1: u32) -> Self {
        Box3 {
            x: footprint.x,
            y: footprint.y,
            z: z0,
            w: footprint.w,
            h: footprint.h,
            d: z1.saturating_sub(z0),
        }
    }

    /// The X/Y footprint.
    pub fn footprint(&self) -> Rect {
        Rect::new(self.x, self.y, self.w, self.h)
    }

    /// Exclusive right edge.
    pub fn x1(&self) -> u32 {
        self.x + self.w
    }

    /// Exclusive bottom edge.
    pub fn y1(&self) -> u32 {
        self.y + self.h
    }

    /// Exclusive back edge.
    pub fn z1(&self) -> u32 {
        self.z + self.d
    }

    /// True when the box contains no voxels.
    pub fn is_empty(&self) -> bool {
        self.w == 0 || self.h == 0 || self.d == 0
    }

    /// Voxel count.
    pub fn volume(&self) -> u64 {
        self.w as u64 * self.h as u64 * self.d as u64
    }

    /// Intersection; `None` when disjoint or either is empty.
    pub fn intersect(&self, other: &Box3) -> Option<Box3> {
        if self.is_empty() || other.is_empty() {
            return None;
        }
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let z0 = self.z.max(other.z);
        let x1 = self.x1().min(other.x1());
        let y1 = self.y1().min(other.y1());
        let z1 = self.z1().min(other.z1());
        if x0 < x1 && y0 < y1 && z0 < z1 {
            Some(Box3::new(x0, y0, z0, x1 - x0, y1 - y0, z1 - z0))
        } else {
            None
        }
    }

    /// True when every voxel of `other` lies in `self`.
    pub fn contains(&self, other: &Box3) -> bool {
        if other.is_empty() {
            return true;
        }
        !self.is_empty()
            && self.x <= other.x
            && self.y <= other.y
            && self.z <= other.z
            && self.x1() >= other.x1()
            && self.y1() >= other.y1()
            && self.z1() >= other.z1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_roundtrip() {
        let b = Box3::from_footprint(Rect::new(2, 3, 10, 20), 5, 9);
        assert_eq!(b, Box3::new(2, 3, 5, 10, 20, 4));
        assert_eq!(b.footprint(), Rect::new(2, 3, 10, 20));
        assert_eq!(b.volume(), 10 * 20 * 4);
        assert_eq!((b.x1(), b.y1(), b.z1()), (12, 23, 9));
    }

    #[test]
    fn inverted_z_range_is_empty() {
        let b = Box3::from_footprint(Rect::new(0, 0, 5, 5), 9, 4);
        assert!(b.is_empty());
        assert_eq!(b.volume(), 0);
    }

    #[test]
    fn intersect_behaviour() {
        let a = Box3::new(0, 0, 0, 10, 10, 10);
        let b = Box3::new(5, 5, 5, 10, 10, 10);
        assert_eq!(a.intersect(&b), Some(Box3::new(5, 5, 5, 5, 5, 5)));
        // Disjoint along Z only.
        let c = Box3::new(0, 0, 10, 10, 10, 5);
        assert_eq!(a.intersect(&c), None);
        assert!(a.intersect(&Box3::new(0, 0, 0, 0, 5, 5)).is_none());
    }

    #[test]
    fn contains_behaviour() {
        let outer = Box3::new(0, 0, 0, 10, 10, 10);
        assert!(outer.contains(&Box3::new(2, 2, 2, 3, 3, 3)));
        assert!(!outer.contains(&Box3::new(8, 8, 8, 5, 5, 5)));
        assert!(outer.contains(&Box3::new(0, 0, 0, 0, 0, 0)));
        assert!(outer.contains(&outer));
    }
}
