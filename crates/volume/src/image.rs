//! Grayscale projection images (one byte per pixel).

/// A dense row-major grayscale image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GrayImage {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Row-major samples, `width * height` bytes.
    pub data: Vec<u8>,
}

impl GrayImage {
    /// Creates a black image.
    pub fn new(width: u32, height: u32) -> Self {
        GrayImage {
            width,
            height,
            data: vec![0; width as usize * height as usize],
        }
    }

    #[inline]
    fn offset(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height, "pixel out of bounds");
        y as usize * self.width as usize + x as usize
    }

    /// Reads pixel `(x, y)`.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> u8 {
        self.data[self.offset(x, y)]
    }

    /// Writes pixel `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, v: u8) {
        let o = self.offset(x, y);
        self.data[o] = v;
    }

    /// Writes the image as a binary PGM (P5) file.
    pub fn write_pgm<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        write!(f, "P5\n{} {}\n255\n", self.width, self.height)?;
        f.write_all(&self.data)?;
        f.flush()
    }

    /// Copies a block from `src` at `(sx, sy)` into `self` at `(dx, dy)`.
    #[allow(clippy::too_many_arguments)]
    pub fn blit(&mut self, dx: u32, dy: u32, src: &GrayImage, sx: u32, sy: u32, w: u32, h: u32) {
        assert!(
            dx + w <= self.width && dy + h <= self.height,
            "dst out of bounds"
        );
        assert!(
            sx + w <= src.width && sy + h <= src.height,
            "src out of bounds"
        );
        for row in 0..h {
            let so = src.offset(sx, sy + row);
            let doff = self.offset(dx, dy + row);
            self.data[doff..doff + w as usize].copy_from_slice(&src.data[so..so + w as usize]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut img = GrayImage::new(3, 2);
        img.set(2, 1, 99);
        assert_eq!(img.get(2, 1), 99);
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.data.len(), 6);
    }

    #[test]
    fn pgm_roundtrip_header_and_bytes() {
        let mut img = GrayImage::new(2, 1);
        img.set(0, 0, 9);
        img.set(1, 0, 200);
        let path = std::env::temp_dir().join(format!("vmqs_pgm_{}.pgm", std::process::id()));
        img.write_pgm(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..11], b"P5\n2 1\n255\n");
        assert_eq!(&bytes[11..], &[9, 200]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn blit_copies_block() {
        let mut src = GrayImage::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                src.set(x, y, (10 * y + x) as u8);
            }
        }
        let mut dst = GrayImage::new(4, 4);
        dst.blit(0, 0, &src, 2, 2, 2, 2);
        assert_eq!(dst.get(0, 0), 22);
        assert_eq!(dst.get(1, 1), 33);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn blit_bounds_checked() {
        let src = GrayImage::new(2, 2);
        let mut dst = GrayImage::new(2, 2);
        dst.blit(1, 1, &src, 0, 0, 2, 2);
    }
}
