//! Real threaded execution of volume queries: the [`AppExecutor`]
//! implementation that lets the §6 volume application run on the *actual*
//! multithreaded query server (`vmqs-server`), not just the simulator.

use crate::image::GrayImage;
use crate::kernels::{compute_from_bricks, project};
use crate::query::VolQuery;
use std::sync::Arc;
use vmqs_core::geom::subtract_all;
use vmqs_core::{QuerySpec, Rect};
use vmqs_server::{AppExecutor, AppOutcome, PageSpaceSession};

/// Volume application executor for [`vmqs_server::QueryServer`].
#[derive(Clone, Copy, Debug, Default)]
pub struct VolExecutor;

impl AppExecutor for VolExecutor {
    type Spec = VolQuery;

    fn output_dims(&self, spec: &VolQuery) -> (u32, u32) {
        spec.output_dims()
    }

    fn output_len(&self, spec: &VolQuery) -> usize {
        spec.qoutsize() as usize
    }

    fn execute(
        &self,
        spec: &VolQuery,
        sources: &[(VolQuery, Arc<[u8]>)],
        ps: &PageSpaceSession<'_>,
    ) -> std::io::Result<AppOutcome> {
        let (w, h) = spec.output_dims();
        let mut out = GrayImage::new(w, h);
        let mut covered: Vec<Rect> = Vec::new();
        let mut reused_px: u64 = 0;

        // Project cached projections (exact for both operators).
        for (src_spec, bytes) in sources {
            let cov = match src_spec.aligned_coverage(spec) {
                Some(c) => c,
                None => continue,
            };
            let fresh = subtract_all(&cov, &covered);
            if fresh.is_empty() {
                continue;
            }
            let (sw, sh) = src_spec.output_dims();
            let src_img = GrayImage {
                width: sw,
                height: sh,
                data: bytes.to_vec(),
            };
            project(&mut out, spec, src_spec, &src_img);
            let l2 = spec.lod as u64 * spec.lod as u64;
            for f in fresh {
                reused_px += f.area() / l2;
                covered.push(f);
            }
        }

        // Compute uncovered footprint remainders from raw bricks.
        let mut pages_requested = 0u64;
        let mut subqueries = 0u64;
        for sub in spec.subqueries_for_remainder(&covered) {
            subqueries += 1;
            let bricks = sub.volume.bricks_intersecting(&sub.input_box());
            pages_requested += bricks.len() as u64;
            ps.fetch_pages(sub.volume.id, &bricks)?;
            let mut io_err = None;
            let img = compute_from_bricks(&sub, |idx| match ps.read_page(sub.volume.id, idx) {
                Ok(p) => p,
                Err(e) => {
                    io_err = Some(e);
                    Arc::new(vec![0; crate::dataset::PAGE_SIZE])
                }
            });
            if let Some(e) = io_err {
                return Err(e);
            }
            let ox = (sub.footprint.x - spec.footprint.x) / spec.lod;
            let oy = (sub.footprint.y - spec.footprint.y) / spec.lod;
            let (sw, sh) = sub.output_dims();
            out.blit(ox, oy, &img, 0, 0, sw, sh);
        }

        let total_px = w as u64 * h as u64;
        Ok(AppOutcome {
            bytes: out.data,
            reused_bytes: reused_px, // one byte per output pixel
            covered_fraction: if total_px == 0 {
                0.0
            } else {
                reused_px as f64 / total_px as f64
            },
            pages_requested,
            subqueries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::VolumeDataset;
    use crate::kernels::reference_render;
    use crate::query::VolOp;
    use vmqs_core::DatasetId;
    use vmqs_server::{AnswerPath, QueryServer, ServerConfig};
    use vmqs_storage::SyntheticSource;

    fn vol() -> VolumeDataset {
        VolumeDataset::new(DatasetId(4), 240, 240, 120)
    }

    fn server() -> QueryServer<VolExecutor> {
        QueryServer::with_app(
            ServerConfig::small().with_threads(2),
            VolExecutor,
            Arc::new(SyntheticSource::new()),
        )
    }

    fn q(x: u32, y: u32, side: u32, z0: u32, z1: u32, lod: u32, op: VolOp) -> VolQuery {
        VolQuery::new(vol(), Rect::new(x, y, side, side), z0, z1, lod, op)
    }

    #[test]
    fn volume_queries_run_on_real_threads_and_match_reference() {
        let s = server();
        for op in [VolOp::Mip, VolOp::AvgProj] {
            let spec = q(10, 10, 120, 20, 80, 2, op);
            let res = s.submit(spec).wait().unwrap();
            assert_eq!(res.width, 60);
            assert_eq!(*res.image, reference_render(&spec).data, "op {op:?}");
            assert_eq!(res.record.path, AnswerPath::FullCompute);
        }
        s.shutdown();
    }

    #[test]
    fn exact_and_partial_reuse_on_real_server() {
        let s = server();
        let base = q(0, 0, 160, 0, 60, 2, VolOp::Mip);
        s.submit(base).wait().unwrap();
        // Identical repeat: exact hit.
        let repeat = s.submit(base).wait().unwrap();
        assert_eq!(repeat.record.path, AnswerPath::ExactHit);
        // Overlapping footprint, same depth: partial reuse, exact pixels.
        let pan = q(80, 0, 160, 0, 60, 2, VolOp::Mip);
        let res = s.submit(pan).wait().unwrap();
        assert_eq!(res.record.path, AnswerPath::PartialReuse);
        assert!(res.record.covered_fraction > 0.3);
        assert_eq!(*res.image, reference_render(&pan).data);
        // Different depth range: no reuse possible.
        let deeper = q(0, 0, 160, 0, 100, 2, VolOp::Mip);
        let res2 = s.submit(deeper).wait().unwrap();
        assert_eq!(res2.record.path, AnswerPath::FullCompute);
        assert_eq!(*res2.image, reference_render(&deeper).data);
        s.shutdown();
    }

    #[test]
    fn lod_projection_reuse_on_real_server_is_exact() {
        let s = server();
        let fine = q(0, 0, 160, 0, 60, 1, VolOp::AvgProj);
        s.submit(fine).wait().unwrap();
        let coarse = q(0, 0, 160, 0, 60, 4, VolOp::AvgProj);
        let res = s.submit(coarse).wait().unwrap();
        assert_eq!(res.record.path, AnswerPath::PartialReuse);
        assert_eq!(res.record.covered_fraction, 1.0);
        assert_eq!(res.record.pages_requested, 0);
        assert_eq!(*res.image, reference_render(&coarse).data);
        s.shutdown();
    }

    #[test]
    fn concurrent_volume_batch_all_correct() {
        let s = server();
        let specs: Vec<VolQuery> = (0..8)
            .map(|i| {
                q(
                    (i % 4) * 40,
                    (i / 4) * 60,
                    80,
                    0,
                    40 + (i % 2) * 20,
                    2,
                    VolOp::Mip,
                )
            })
            .collect();
        let handles = s.submit_batch(specs.clone());
        for (h, spec) in handles.into_iter().zip(specs) {
            let res = h.wait().unwrap();
            assert_eq!(*res.image, reference_render(&spec).data, "{spec:?}");
        }
        s.shutdown();
    }
}
