//! Volume datasets and their on-disk brick layout.
//!
//! A 3-D scalar volume (one byte per voxel) is regularly partitioned into
//! cubic **bricks**, one brick per 64 KB storage page — the 3-D analogue
//! of the Virtual Microscope's chunked slides. 40³ voxels = 64 000 bytes
//! fit one page.

use crate::geom3::Box3;
use vmqs_core::DatasetId;
use vmqs_storage::{DataSource, SyntheticSource};

/// Page size shared with the rest of the system (64 KB).
pub const PAGE_SIZE: usize = 65536;
/// Brick side length: the largest cube of 1-byte voxels fitting one page
/// (40³ = 64 000 ≤ 65 536).
pub const BRICK_SIDE: u32 = 40;

/// One scalar volume: dimensions plus derived brick-grid layout. Brick
/// index equals the page index holding it (slab-major, then row-major).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VolumeDataset {
    /// Dataset identity (shares the id space with all other datasets).
    pub id: DatasetId,
    /// X extent in voxels.
    pub width: u32,
    /// Y extent in voxels.
    pub height: u32,
    /// Z extent in voxels.
    pub depth: u32,
}

impl VolumeDataset {
    /// Creates a dataset descriptor. Panics on zero dimensions.
    pub fn new(id: DatasetId, width: u32, height: u32, depth: u32) -> Self {
        assert!(
            width > 0 && height > 0 && depth > 0,
            "degenerate volume dimensions"
        );
        VolumeDataset {
            id,
            width,
            height,
            depth,
        }
    }

    /// A large evaluation volume: 2048×2048×1024 voxels = 4 GiB raw — the
    /// same order of magnitude as the paper's slide corpus.
    pub fn large(id: DatasetId) -> Self {
        VolumeDataset::new(id, 2048, 2048, 1024)
    }

    /// Bricks along X.
    pub fn brick_cols(&self) -> u32 {
        self.width.div_ceil(BRICK_SIDE)
    }

    /// Bricks along Y.
    pub fn brick_rows(&self) -> u32 {
        self.height.div_ceil(BRICK_SIDE)
    }

    /// Bricks along Z.
    pub fn brick_slabs(&self) -> u32 {
        self.depth.div_ceil(BRICK_SIDE)
    }

    /// Total bricks (= pages).
    pub fn brick_count(&self) -> u64 {
        self.brick_cols() as u64 * self.brick_rows() as u64 * self.brick_slabs() as u64
    }

    /// The full-volume box.
    pub fn bounds(&self) -> Box3 {
        Box3::new(0, 0, 0, self.width, self.height, self.depth)
    }

    /// The voxel box covered by brick `index` (clipped at the far faces).
    pub fn brick_box(&self, index: u64) -> Box3 {
        debug_assert!(index < self.brick_count());
        let per_slab = self.brick_cols() as u64 * self.brick_rows() as u64;
        let bz = (index / per_slab) as u32;
        let rem = index % per_slab;
        let by = (rem / self.brick_cols() as u64) as u32;
        let bx = (rem % self.brick_cols() as u64) as u32;
        let x = bx * BRICK_SIDE;
        let y = by * BRICK_SIDE;
        let z = bz * BRICK_SIDE;
        Box3::new(
            x,
            y,
            z,
            BRICK_SIDE.min(self.width - x),
            BRICK_SIDE.min(self.height - y),
            BRICK_SIDE.min(self.depth - z),
        )
    }

    /// Brick index containing voxel `(x, y, z)`.
    pub fn brick_at(&self, x: u32, y: u32, z: u32) -> u64 {
        debug_assert!(x < self.width && y < self.height && z < self.depth);
        let per_slab = self.brick_cols() as u64 * self.brick_rows() as u64;
        (z / BRICK_SIDE) as u64 * per_slab
            + (y / BRICK_SIDE) as u64 * self.brick_cols() as u64
            + (x / BRICK_SIDE) as u64
    }

    /// Indices of all bricks intersecting `region` (clipped to the
    /// volume), in index order — the I/O set of a query.
    pub fn bricks_intersecting(&self, region: &Box3) -> Vec<u64> {
        let clipped = match region.intersect(&self.bounds()) {
            Some(c) => c,
            None => return Vec::new(),
        };
        let c0 = clipped.x / BRICK_SIDE;
        let c1 = (clipped.x1() - 1) / BRICK_SIDE;
        let r0 = clipped.y / BRICK_SIDE;
        let r1 = (clipped.y1() - 1) / BRICK_SIDE;
        let s0 = clipped.z / BRICK_SIDE;
        let s1 = (clipped.z1() - 1) / BRICK_SIDE;
        let per_slab = self.brick_cols() as u64 * self.brick_rows() as u64;
        let mut out = Vec::new();
        for s in s0..=s1 {
            for r in r0..=r1 {
                for c in c0..=c1 {
                    out.push(s as u64 * per_slab + r as u64 * self.brick_cols() as u64 + c as u64);
                }
            }
        }
        out
    }

    /// `qinputsize` for a box: bytes of the bricks intersecting it.
    pub fn input_bytes(&self, region: &Box3) -> u64 {
        self.bricks_intersecting(region).len() as u64 * PAGE_SIZE as u64
    }

    /// Byte offset of voxel `(x, y, z)` within its brick's page (x fastest,
    /// then y, then z, over the clipped brick dimensions).
    pub fn offset_in_brick(&self, x: u32, y: u32, z: u32) -> usize {
        let b = self.brick_box(self.brick_at(x, y, z));
        ((z - b.z) as usize * b.h as usize + (y - b.y) as usize) * b.w as usize + (x - b.x) as usize
    }

    /// Ground-truth voxel value of the deterministic synthetic volume —
    /// what [`SyntheticSource`] stores at `(x, y, z)`.
    pub fn synthetic_voxel(&self, x: u32, y: u32, z: u32) -> u8 {
        let page = self.brick_at(x, y, z);
        SyntheticSource::byte_at(self.id, page, self.offset_in_brick(x, y, z) as u64)
    }

    /// Reads one voxel through a [`DataSource`] (test helper).
    pub fn read_voxel<D: DataSource>(
        &self,
        source: &D,
        x: u32,
        y: u32,
        z: u32,
    ) -> std::io::Result<u8> {
        let page = source.read_page(self.id, self.brick_at(x, y, z), PAGE_SIZE)?;
        Ok(page[self.offset_in_brick(x, y, z)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vol() -> VolumeDataset {
        VolumeDataset::new(DatasetId(5), 100, 90, 85)
    }

    #[test]
    fn brick_grid_dimensions() {
        let v = vol();
        assert_eq!(v.brick_cols(), 3); // ceil(100/40)
        assert_eq!(v.brick_rows(), 3); // ceil(90/40)
        assert_eq!(v.brick_slabs(), 3); // ceil(85/40)
        assert_eq!(v.brick_count(), 27);
    }

    #[test]
    fn brick_box_clips_at_far_faces() {
        let v = vol();
        assert_eq!(v.brick_box(0), Box3::new(0, 0, 0, 40, 40, 40));
        // Last brick: x=80 (w 20), y=80 (h 10), z=80 (d 5).
        assert_eq!(v.brick_box(26), Box3::new(80, 80, 80, 20, 10, 5));
    }

    #[test]
    fn brick_at_inverts_brick_box() {
        let v = vol();
        for idx in [0u64, 4, 13, 26] {
            let b = v.brick_box(idx);
            assert_eq!(v.brick_at(b.x, b.y, b.z), idx);
            assert_eq!(v.brick_at(b.x1() - 1, b.y1() - 1, b.z1() - 1), idx);
        }
    }

    #[test]
    fn bricks_intersecting_straddles_boundaries() {
        let v = vol();
        assert_eq!(
            v.bricks_intersecting(&Box3::new(0, 0, 0, 10, 10, 10)),
            vec![0]
        );
        // Crosses brick boundaries on all three axes: 2x2x2 bricks.
        let ids = v.bricks_intersecting(&Box3::new(35, 35, 35, 10, 10, 10));
        assert_eq!(ids.len(), 8);
        // Out of bounds clips to nothing.
        assert!(v
            .bricks_intersecting(&Box3::new(500, 0, 0, 10, 10, 10))
            .is_empty());
    }

    #[test]
    fn input_bytes_counts_bricks() {
        let v = vol();
        assert_eq!(v.input_bytes(&Box3::new(0, 0, 0, 1, 1, 1)), 65536);
        assert_eq!(v.input_bytes(&Box3::new(35, 35, 35, 10, 10, 10)), 8 * 65536);
    }

    #[test]
    fn synthetic_voxel_matches_data_source() {
        let v = vol();
        let src = SyntheticSource::new();
        for &(x, y, z) in &[
            (0, 0, 0),
            (39, 39, 39),
            (40, 0, 0),
            (99, 89, 84),
            (50, 45, 42),
        ] {
            assert_eq!(
                v.synthetic_voxel(x, y, z),
                v.read_voxel(&src, x, y, z).unwrap(),
                "voxel ({x},{y},{z})"
            );
        }
    }

    #[test]
    fn offset_in_brick_layout() {
        let v = vol();
        assert_eq!(v.offset_in_brick(0, 0, 0), 0);
        assert_eq!(v.offset_in_brick(1, 0, 0), 1);
        assert_eq!(v.offset_in_brick(0, 1, 0), 40);
        assert_eq!(v.offset_in_brick(0, 0, 1), 1600);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_dim_rejected() {
        VolumeDataset::new(DatasetId(0), 10, 0, 10);
    }

    #[test]
    fn large_volume_is_multi_gb() {
        let v = VolumeDataset::large(DatasetId(0));
        assert!(v.brick_count() * PAGE_SIZE as u64 > 4_000_000_000);
    }
}
