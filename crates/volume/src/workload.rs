//! Emulated-client workloads for the volume application: scientists
//! exploring 3-D datasets — panning over a depth slab, changing level of
//! detail, and occasionally stepping to a different depth.

use crate::app::VolSimApp;
use crate::dataset::VolumeDataset;
use crate::query::{VolOp, VolQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vmqs_core::{ClientId, DatasetId, Rect};
use vmqs_sim::ClientStream;

/// Configuration of the volume workload.
#[derive(Clone, Debug)]
pub struct VolWorkloadConfig {
    /// The volumes being explored.
    pub datasets: Vec<VolumeDataset>,
    /// Clients per dataset.
    pub clients_per_dataset: Vec<usize>,
    /// Queries per client.
    pub queries_per_client: usize,
    /// Output image side in pixels.
    pub output_side: u32,
    /// Allowed levels of detail.
    pub lods: Vec<u32>,
    /// Depth-slab thickness in voxels.
    pub slab_depth: u32,
    /// Projection operator.
    pub op: VolOp,
    /// Probability of continuing the current session.
    pub session_continue: f64,
    /// RNG seed.
    pub seed: u64,
}

impl VolWorkloadConfig {
    /// A paper-style setup: two 4 GiB volumes, 8 clients split 5/3, 16
    /// queries each, 256×256 outputs.
    pub fn standard(op: VolOp, seed: u64) -> Self {
        VolWorkloadConfig {
            datasets: vec![
                VolumeDataset::large(DatasetId(10)),
                VolumeDataset::large(DatasetId(11)),
            ],
            clients_per_dataset: vec![5, 3],
            queries_per_client: 16,
            output_side: 256,
            lods: vec![1, 2, 4],
            slab_depth: 128,
            op,
            session_continue: 0.7,
            seed,
        }
    }
}

struct Session {
    center: (u32, u32),
    z0: u32,
    lod_idx: usize,
}

/// Generates per-client query streams; deterministic per seed.
pub fn generate_volume(cfg: &VolWorkloadConfig) -> Vec<ClientStream<VolQuery>> {
    assert_eq!(cfg.datasets.len(), cfg.clients_per_dataset.len());
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5a5a_5a5a);

    // Shared hotspots: (x, y, depth slab start), 3 per dataset.
    let hotspots: Vec<Vec<(u32, u32, u32)>> = cfg
        .datasets
        .iter()
        .map(|d| {
            (0..3)
                .map(|_| {
                    (
                        rng.gen_range(0..d.width),
                        rng.gen_range(0..d.height),
                        rng.gen_range(0..d.depth.saturating_sub(cfg.slab_depth).max(1)),
                    )
                })
                .collect()
        })
        .collect();

    let mut streams = Vec::new();
    let mut client_id = 100u64; // distinct from VM clients in mixed runs
    for (d_idx, (&n, dataset)) in cfg
        .clients_per_dataset
        .iter()
        .zip(cfg.datasets.iter())
        .enumerate()
    {
        for _ in 0..n {
            let mut s = new_session(&mut rng, cfg, &hotspots[d_idx]);
            let mut queries = Vec::new();
            for _ in 0..cfg.queries_per_client {
                if !rng.gen_bool(cfg.session_continue) {
                    s = new_session(&mut rng, cfg, &hotspots[d_idx]);
                } else {
                    mutate(&mut rng, cfg, dataset, &mut s);
                }
                queries.push(query_for(cfg, dataset, &s));
            }
            streams.push(ClientStream {
                client: ClientId(client_id),
                queries,
            });
            client_id += 1;
        }
    }
    streams
}

fn new_session(rng: &mut StdRng, cfg: &VolWorkloadConfig, hotspots: &[(u32, u32, u32)]) -> Session {
    let (x, y, z0) = hotspots[rng.gen_range(0..hotspots.len())];
    Session {
        center: (x, y),
        z0,
        lod_idx: rng.gen_range(0..cfg.lods.len()),
    }
}

fn mutate(rng: &mut StdRng, cfg: &VolWorkloadConfig, dataset: &VolumeDataset, s: &mut Session) {
    match rng.gen_range(0..5u32) {
        0 | 1 => {
            // Pan on the projection plane.
            let lod = cfg.lods[s.lod_idx];
            let step = (cfg.output_side * lod / 4).max(1) as i64;
            s.center.0 = (s.center.0 as i64 + rng.gen_range(-step..=step)).max(0) as u32;
            s.center.1 = (s.center.1 as i64 + rng.gen_range(-step..=step)).max(0) as u32;
        }
        2 => s.lod_idx = s.lod_idx.saturating_sub(1),
        3 => s.lod_idx = (s.lod_idx + 1).min(cfg.lods.len() - 1),
        _ => {
            // Step to a different depth slab (breaks projection reuse, as
            // it must).
            let max_z0 = dataset.depth.saturating_sub(cfg.slab_depth).max(1);
            s.z0 = (s.z0 + cfg.slab_depth / 2) % max_z0;
        }
    }
}

fn query_for(cfg: &VolWorkloadConfig, dataset: &VolumeDataset, s: &Session) -> VolQuery {
    let lod = cfg.lods[s.lod_idx];
    let side = cfg.output_side * lod;
    let max_x = dataset.width.saturating_sub(side);
    let max_y = dataset.height.saturating_sub(side);
    let x = s.center.0.saturating_sub(side / 2).min(max_x);
    let y = s.center.1.saturating_sub(side / 2).min(max_y);
    let z1 = (s.z0 + cfg.slab_depth).min(dataset.depth);
    VolQuery::new(
        *dataset,
        Rect::new(x, y, side.min(dataset.width), side.min(dataset.height)),
        s.z0,
        z1,
        lod,
        cfg.op,
    )
}

/// Convenience: run a volume workload through the simulator with the
/// volume adapter.
pub fn run_volume_sim(
    cfg: vmqs_sim::SimConfig,
    cost: crate::app::VolCostModel,
    workload: Vec<ClientStream<VolQuery>>,
) -> vmqs_sim::SimReport<VolQuery> {
    vmqs_sim::run_sim_app(cfg, VolSimApp::new(cost), workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmqs_core::QuerySpec;

    #[test]
    fn workload_shape_and_validity() {
        let cfg = VolWorkloadConfig::standard(VolOp::Mip, 7);
        let streams = generate_volume(&cfg);
        assert_eq!(streams.len(), 8);
        for s in &streams {
            assert_eq!(s.queries.len(), 16);
            for q in &s.queries {
                assert_eq!(q.output_dims(), (256, 256));
                assert!(q.z1 > q.z0);
                assert!(q.z1 <= q.volume.depth);
                assert!(cfg.lods.contains(&q.lod));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = VolWorkloadConfig::standard(VolOp::AvgProj, 3);
        assert_eq!(
            generate_volume(&cfg)
                .iter()
                .flat_map(|s| &s.queries)
                .collect::<Vec<_>>(),
            generate_volume(&cfg)
                .iter()
                .flat_map(|s| &s.queries)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn workload_has_cross_client_overlap() {
        let cfg = VolWorkloadConfig::standard(VolOp::Mip, 42);
        let streams = generate_volume(&cfg);
        let mut overlaps = 0;
        for (i, a) in streams.iter().enumerate() {
            for b in &streams[i + 1..] {
                for qa in &a.queries {
                    for qb in &b.queries {
                        if qa.overlap(qb) > 0.0 {
                            overlaps += 1;
                        }
                    }
                }
            }
        }
        assert!(overlaps > 10, "cross-client overlaps: {overlaps}");
    }

    #[test]
    fn volume_sim_end_to_end() {
        let cfg = VolWorkloadConfig::standard(VolOp::Mip, 1);
        let streams = generate_volume(&cfg);
        let total: usize = streams.iter().map(|s| s.queries.len()).sum();
        let sim_cfg = vmqs_sim::SimConfig::paper_baseline();
        let cost = crate::app::VolCostModel::calibrated(&sim_cfg.disk);
        let report = run_volume_sim(sim_cfg, cost, streams);
        assert_eq!(report.records.len(), total);
        assert!(report.average_overlap() > 0.0, "volume sessions must reuse");
        assert!(report.makespan > 0.0);
    }

    #[test]
    fn volume_sim_caching_matters() {
        let cfg = VolWorkloadConfig::standard(VolOp::AvgProj, 5);
        let streams = generate_volume(&cfg);
        let base = vmqs_sim::SimConfig::paper_baseline();
        let cost = crate::app::VolCostModel::calibrated(&base.disk);
        let with = run_volume_sim(base.with_ds_budget(128 << 20), cost, streams.clone());
        let without = run_volume_sim(base.with_ds_budget(0), cost, streams);
        assert!(with.makespan < without.makespan);
    }
}
