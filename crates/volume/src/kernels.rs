//! Projection kernels: MIP and average-intensity projection along Z, the
//! LOD `project` transformation, and the ground-truth reference renderer.
//!
//! Ray semantics: an output pixel at LOD `L` is the projection (max or
//! mean) of the single voxel column at its sample point `(footprint.x +
//! ox·L, footprint.y + oy·L)` over the query's depth range. LOD-alignment
//! of footprints guarantees a coarser query's sample columns are a subset
//! of any compatible finer cached result's, so the `project`
//! transformation — picking every `(L/l)`-th cached pixel — is *exact*
//! for both operators.

use crate::image::GrayImage;
use crate::query::{VolOp, VolQuery};
use vmqs_core::Rect;

/// Accumulator for per-brick projection: tracks, per output pixel, the
/// running max (MIP) or running sum and slice count (AvgProj) over the
/// depth slices seen so far.
#[derive(Debug)]
pub struct ProjAccumulator {
    width: u32,
    height: u32,
    op: VolOp,
    max: Vec<u8>,
    sums: Vec<u64>,
    counts: Vec<u32>,
}

impl ProjAccumulator {
    /// Creates a zeroed accumulator for `query`'s output.
    pub fn new(query: &VolQuery) -> Self {
        let (w, h) = query.output_dims();
        let n = w as usize * h as usize;
        ProjAccumulator {
            width: w,
            height: h,
            op: query.op,
            max: vec![0; n],
            sums: vec![0; n],
            counts: vec![0; n],
        }
    }

    /// Folds in the voxels of one brick: every sample column of `query`
    /// passing through `brick ∩ query.input_box()` contributes its voxels
    /// in that depth interval.
    pub fn accumulate_brick(&mut self, query: &VolQuery, brick: crate::geom3::Box3, data: &[u8]) {
        let inter = match query.input_box().intersect(&brick) {
            Some(i) => i,
            None => return,
        };
        let l = query.lod;
        let fp = query.footprint;
        // Output pixels whose sample column lies inside the intersection's
        // footprint (fp.x is LOD-aligned).
        let ox0 = (inter.x - fp.x).div_ceil(l);
        let ox1 = (inter.x1() - 1 - fp.x) / l;
        let oy0 = (inter.y - fp.y).div_ceil(l);
        let oy1 = (inter.y1() - 1 - fp.y) / l;
        for oy in oy0..=oy1 {
            let by = fp.y + oy * l;
            for ox in ox0..=ox1 {
                let bx = fp.x + ox * l;
                let pix = (oy * self.width + ox) as usize;
                for z in inter.z..inter.z1() {
                    let off = ((z - brick.z) as usize * brick.h as usize + (by - brick.y) as usize)
                        * brick.w as usize
                        + (bx - brick.x) as usize;
                    let v = data[off];
                    match self.op {
                        VolOp::Mip => self.max[pix] = self.max[pix].max(v),
                        VolOp::AvgProj => {
                            self.sums[pix] += v as u64;
                            self.counts[pix] += 1;
                        }
                    }
                }
            }
        }
    }

    /// Produces the output image.
    pub fn finalize(self) -> GrayImage {
        let mut img = GrayImage::new(self.width, self.height);
        match self.op {
            VolOp::Mip => img.data.copy_from_slice(&self.max),
            VolOp::AvgProj => {
                for (pix, v) in img.data.iter_mut().enumerate() {
                    if self.counts[pix] > 0 {
                        *v = (self.sums[pix] / self.counts[pix] as u64) as u8;
                    }
                }
            }
        }
        img
    }
}

/// Computes a query's full output from its bricks, fetching each needed
/// brick's page via `fetch(brick_index)`.
pub fn compute_from_bricks<F>(query: &VolQuery, mut fetch: F) -> GrayImage
where
    F: FnMut(u64) -> std::sync::Arc<Vec<u8>>,
{
    let mut acc = ProjAccumulator::new(query);
    for idx in query.volume.bricks_intersecting(&query.input_box()) {
        let brick = query.volume.brick_box(idx);
        let page = fetch(idx);
        acc.accumulate_brick(query, brick, &page);
    }
    acc.finalize()
}

/// The LOD `project` transformation: fills the part of `target`'s output
/// derivable from `src_query`'s cached output. Returns the covered
/// footprint rectangle (target-LOD-aligned), or `None`. Exact for both
/// operators (sample columns coincide).
pub fn project(
    out: &mut GrayImage,
    target: &VolQuery,
    src_query: &VolQuery,
    src_img: &GrayImage,
) -> Option<Rect> {
    let coverage = src_query.aligned_coverage(target)?;
    let tl = target.lod;
    let sl = src_query.lod;
    debug_assert_eq!(src_img.width, src_query.output_dims().0);
    for by in (coverage.y..coverage.y1()).step_by(tl as usize) {
        let oy = (by - target.footprint.y) / tl;
        let sy = (by - src_query.footprint.y) / sl;
        for bx in (coverage.x..coverage.x1()).step_by(tl as usize) {
            let ox = (bx - target.footprint.x) / tl;
            let sx = (bx - src_query.footprint.x) / sl;
            out.set(ox, oy, src_img.get(sx, sy));
        }
    }
    Some(coverage)
}

/// Reference renderer: computes the projection directly from the
/// synthetic ground-truth voxel function.
pub fn reference_render(query: &VolQuery) -> GrayImage {
    let (w, h) = query.output_dims();
    let mut img = GrayImage::new(w, h);
    let fp = query.footprint;
    for oy in 0..h {
        let by = fp.y + oy * query.lod;
        for ox in 0..w {
            let bx = fp.x + ox * query.lod;
            let v = match query.op {
                VolOp::Mip => (query.z0..query.z1)
                    .map(|z| query.volume.synthetic_voxel(bx, by, z))
                    .max()
                    .unwrap_or(0),
                VolOp::AvgProj => {
                    let sum: u64 = (query.z0..query.z1)
                        .map(|z| query.volume.synthetic_voxel(bx, by, z) as u64)
                        .sum();
                    (sum / (query.z1 - query.z0) as u64) as u8
                }
            };
            img.set(ox, oy, v);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{VolumeDataset, PAGE_SIZE};
    use std::sync::Arc;
    use vmqs_core::DatasetId;
    use vmqs_storage::{DataSource, SyntheticSource};

    fn vol() -> VolumeDataset {
        VolumeDataset::new(DatasetId(2), 120, 120, 100)
    }

    fn fetch(q: &VolQuery) -> impl FnMut(u64) -> Arc<Vec<u8>> + '_ {
        let src = SyntheticSource::new();
        let id = q.volume.id;
        move |idx| Arc::new(src.read_page(id, idx, PAGE_SIZE).unwrap())
    }

    fn q(x: u32, y: u32, side: u32, z0: u32, z1: u32, lod: u32, op: VolOp) -> VolQuery {
        VolQuery::new(vol(), Rect::new(x, y, side, side), z0, z1, lod, op)
    }

    #[test]
    fn mip_matches_reference_single_brick() {
        let query = q(0, 0, 32, 0, 32, 2, VolOp::Mip);
        assert_eq!(
            compute_from_bricks(&query, fetch(&query)),
            reference_render(&query)
        );
    }

    #[test]
    fn mip_matches_reference_across_brick_boundaries() {
        // Straddles brick boundaries on all three axes.
        let query = q(30, 30, 24, 30, 60, 2, VolOp::Mip);
        assert_eq!(
            compute_from_bricks(&query, fetch(&query)),
            reference_render(&query)
        );
    }

    #[test]
    fn avgproj_matches_reference_across_brick_boundaries() {
        let query = q(30, 30, 24, 20, 70, 4, VolOp::AvgProj);
        assert_eq!(
            compute_from_bricks(&query, fetch(&query)),
            reference_render(&query)
        );
    }

    #[test]
    fn project_lod_change_is_exact_for_both_ops() {
        for op in [VolOp::Mip, VolOp::AvgProj] {
            let cached = q(0, 0, 80, 0, 50, 2, op);
            let cached_img = compute_from_bricks(&cached, fetch(&cached));
            let target = q(0, 0, 80, 0, 50, 8, op);
            let (w, h) = target.output_dims();
            let mut out = GrayImage::new(w, h);
            let cov = project(&mut out, &target, &cached, &cached_img).unwrap();
            assert_eq!(cov, target.footprint);
            assert_eq!(out, reference_render(&target), "op {op:?}");
        }
    }

    #[test]
    fn project_refuses_depth_mismatch() {
        let cached = q(0, 0, 80, 0, 50, 2, VolOp::Mip);
        let cached_img = compute_from_bricks(&cached, fetch(&cached));
        let target = q(0, 0, 80, 0, 60, 4, VolOp::Mip);
        let (w, h) = target.output_dims();
        let mut out = GrayImage::new(w, h);
        assert!(project(&mut out, &target, &cached, &cached_img).is_none());
    }

    #[test]
    fn project_plus_subqueries_reconstruct_full_output() {
        let cached = q(0, 0, 60, 10, 40, 2, VolOp::Mip);
        let cached_img = compute_from_bricks(&cached, fetch(&cached));
        let target = q(20, 0, 80, 10, 40, 2, VolOp::Mip);
        let (w, h) = target.output_dims();
        let mut out = GrayImage::new(w, h);
        let cov = project(&mut out, &target, &cached, &cached_img).unwrap();
        for sub in target.subqueries_for_remainder(&[cov]) {
            let img = compute_from_bricks(&sub, fetch(&sub));
            let ox = (sub.footprint.x - target.footprint.x) / target.lod;
            let oy = (sub.footprint.y - target.footprint.y) / target.lod;
            let (sw, sh) = sub.output_dims();
            out.blit(ox, oy, &img, 0, 0, sw, sh);
        }
        assert_eq!(out, reference_render(&target));
    }

    #[test]
    fn mip_dominates_avgproj_pixelwise() {
        // The max along a ray is >= the mean along it.
        let mip = q(0, 0, 40, 0, 40, 4, VolOp::Mip);
        let avg = q(0, 0, 40, 0, 40, 4, VolOp::AvgProj);
        let m = reference_render(&mip);
        let a = reference_render(&avg);
        for (x, y) in (0..10).flat_map(|y| (0..10).map(move |x| (x, y))) {
            assert!(m.get(x, y) >= a.get(x, y));
        }
    }
}
