//! A minimal Rust lexer for the static analysis suite.
//!
//! Produces two views of a source file in one pass:
//!
//! * a token stream (identifiers, punctuation, literals, lifetimes) with
//!   line numbers, for the syntax-aware rules (lock-order, phase
//!   transitions, event parity, item/function segmentation), and
//! * *sanitized lines*: the original lines with comment text and
//!   string/char-literal *contents* blanked to spaces (delimiters kept),
//!   so the line-oriented legacy rules stop false-positiving on rule
//!   patterns that appear inside strings or comments.
//!
//! The lexer understands line comments, nested block comments, string
//! and byte-string literals with escapes, raw strings (`r#"…"#`, any
//! number of `#`s), char literals, lifetimes, and numeric literals. It
//! does not expand macros or resolve paths — the rules that need
//! structure work on the token stream at item granularity.

/// Token classification — only as fine as the rules need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `let`, `self`, field names, …).
    Ident,
    /// Single punctuation character (`.`, `:`, `{`, …). Multi-character
    /// operators arrive as consecutive tokens.
    Punct,
    /// String/char/numeric literal. String and char contents are
    /// dropped; numeric text is kept (tuple indices like `gate.0`).
    Lit,
    /// A lifetime (`'a`) — distinct from char literals.
    Lifetime,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    /// Token text. Empty for string/char literals.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
}

impl Tok {
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }
}

/// Lexer output: the token stream plus the sanitized line view.
pub struct Lexed {
    pub tokens: Vec<Tok>,
    /// Source lines with comments and literal contents blanked.
    pub code_lines: Vec<String>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}
fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lexes `src`, producing tokens and sanitized lines. Invalid UTF-8 is
/// not expected (callers read with `read_to_string`); non-ASCII bytes
/// inside identifiers or literals are passed through untouched.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out: Vec<u8> = b.to_vec(); // sanitized copy, blanked in place
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    // Blanks out[lo..hi], preserving newlines so line structure holds.
    let blank = |out: &mut Vec<u8>, lo: usize, hi: usize| {
        for x in &mut out[lo..hi] {
            if *x != b'\n' {
                *x = b' ';
            }
        }
    };

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                blank(&mut out, start, i);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'"' => {
                let (end, nl) = scan_string(b, i, 0);
                blank(&mut out, i + 1, end.saturating_sub(1).max(i + 1));
                tokens.push(Tok {
                    kind: TokKind::Lit,
                    text: String::new(),
                    line,
                });
                line += nl;
                i = end;
            }
            b'r' | b'b' if raw_or_byte_string(b, i).is_some() => {
                let (body_start, hashes) = raw_or_byte_string(b, i).unwrap();
                if hashes == usize::MAX {
                    // b"…" — ordinary escaped string with a prefix.
                    let (end, nl) = scan_string(b, body_start, 0);
                    blank(&mut out, body_start + 1, end.saturating_sub(1));
                    tokens.push(Tok {
                        kind: TokKind::Lit,
                        text: String::new(),
                        line,
                    });
                    line += nl;
                    i = end;
                } else {
                    // r##"…"## — find the matching close quote + hashes.
                    let (end, nl) = scan_raw(b, body_start, hashes);
                    blank(&mut out, body_start + 1, end.saturating_sub(1 + hashes));
                    tokens.push(Tok {
                        kind: TokKind::Lit,
                        text: String::new(),
                        line,
                    });
                    line += nl;
                    i = end;
                }
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let mut j = i + 1;
                if j < b.len() && is_ident_start(b[j]) && b[j] != b'\\' {
                    let mut k = j + 1;
                    while k < b.len() && is_ident_cont(b[k]) {
                        k += 1;
                    }
                    if k < b.len() && b[k] == b'\'' && k == j + 1 {
                        // 'x' — a one-char literal, not a lifetime.
                        blank(&mut out, i + 1, k);
                        tokens.push(Tok {
                            kind: TokKind::Lit,
                            text: String::new(),
                            line,
                        });
                        i = k + 1;
                    } else {
                        // 'abc — lifetime (or loop label).
                        tokens.push(Tok {
                            kind: TokKind::Lifetime,
                            text: String::from_utf8_lossy(&b[i..k]).into_owned(),
                            line,
                        });
                        i = k;
                    }
                } else {
                    // '\n' / '\'' / '\u{…}' — escaped char literal.
                    j = i + 1;
                    while j < b.len() {
                        if b[j] == b'\\' {
                            j += 2;
                        } else if b[j] == b'\'' {
                            j += 1;
                            break;
                        } else {
                            j += 1;
                        }
                    }
                    blank(&mut out, i + 1, j.saturating_sub(1).max(i + 1));
                    tokens.push(Tok {
                        kind: TokKind::Lit,
                        text: String::new(),
                        line,
                    });
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() && (is_ident_cont(b[i])) {
                    i += 1;
                }
                // Float part: `1.5`, `1.5e-3` — but not `1.max(2)` or `0..n`.
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && is_ident_cont(b[i]) {
                        i += 1;
                    }
                    if i + 1 < b.len()
                        && (b[i] == b'-' || b[i] == b'+')
                        && i > start
                        && (b[i - 1] == b'e' || b[i - 1] == b'E')
                    {
                        i += 1;
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                tokens.push(Tok {
                    kind: TokKind::Lit,
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                    line,
                });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_cont(b[i]) {
                    i += 1;
                }
                tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                    line,
                });
            }
            _ => {
                tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }

    let code_lines = String::from_utf8_lossy(&out)
        .lines()
        .map(|l| l.to_string())
        .collect();
    Lexed { tokens, code_lines }
}

/// Scans an ordinary (escaped) string literal starting at the opening
/// quote `b[start]`. Returns (index past the closing quote, newlines
/// crossed).
fn scan_string(b: &[u8], start: usize, _hashes: usize) -> (usize, usize) {
    let mut i = start + 1;
    let mut nl = 0usize;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, nl),
            b'\n' => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, nl)
}

/// Scans a raw string whose body starts at the opening quote
/// `b[start]`, closed by `"` followed by `hashes` `#`s.
fn scan_raw(b: &[u8], start: usize, hashes: usize) -> (usize, usize) {
    let mut i = start + 1;
    let mut nl = 0usize;
    while i < b.len() {
        if b[i] == b'\n' {
            nl += 1;
            i += 1;
        } else if b[i] == b'"'
            && b[i + 1..].len() >= hashes
            && b[i + 1..i + 1 + hashes].iter().all(|&c| c == b'#')
        {
            return (i + 1 + hashes, nl);
        } else {
            i += 1;
        }
    }
    (i, nl)
}

/// Detects `r"`, `r#"`, `b"`, `br#"` … prefixes at `b[i]`. Returns the
/// index of the opening quote and the hash count (`usize::MAX` marks a
/// plain `b"…"` escaped string). `None` when `b[i]` starts an ordinary
/// identifier like `r` or `broker`.
fn raw_or_byte_string(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    let mut raw = false;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        raw = true;
        j += 1;
    }
    if j == i {
        return None;
    }
    if raw {
        let mut hashes = 0usize;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j < b.len() && b[j] == b'"' {
            return Some((j, hashes));
        }
        None
    } else if j < b.len() && b[j] == b'"' {
        Some((j, usize::MAX))
    } else {
        None
    }
}

/// A function item found in the token stream.
#[derive(Clone, Debug)]
pub struct FnItem {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token-index range of the body `{ … }`, inclusive of both braces.
    pub body: (usize, usize),
}

/// Finds every `fn` item (free functions, methods, nested fns) in the
/// token stream. Trait method *declarations* (`fn f();`) have no body
/// and are skipped. Bodies of nested fns are contained in their parent's
/// range; [`direct_range_excludes`] lets a caller walk a function's own
/// code without descending into nested items.
pub fn fn_items(tokens: &[Tok]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") && i + 1 < tokens.len() && tokens[i + 1].kind == TokKind::Ident
        {
            let name = tokens[i + 1].text.clone();
            let line = tokens[i].line;
            // Scan to the body `{` (or `;` for a bodiless declaration) at
            // bracket-neutral depth. Generics/params/return types contain
            // no top-level braces.
            let mut j = i + 2;
            let mut paren = 0i32;
            let mut bracket = 0i32;
            let mut body_start = None;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.kind == TokKind::Punct {
                    match t.text.as_bytes().first() {
                        Some(b'(') => paren += 1,
                        Some(b')') => paren -= 1,
                        Some(b'[') => bracket += 1,
                        Some(b']') => bracket -= 1,
                        Some(b'{') if paren == 0 && bracket == 0 => {
                            body_start = Some(j);
                            break;
                        }
                        Some(b';') if paren == 0 && bracket == 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            if let Some(bs) = body_start {
                let mut depth = 0i32;
                let mut k = bs;
                while k < tokens.len() {
                    if tokens[k].is_punct('{') {
                        depth += 1;
                    } else if tokens[k].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                out.push(FnItem {
                    name,
                    line,
                    body: (bs, k.min(tokens.len().saturating_sub(1))),
                });
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

/// The token-index ranges of `item`'s *nested* fn bodies — sub-ranges a
/// walker over `item` should skip so a nested fn's code is not attributed
/// to its parent.
pub fn nested_bodies(items: &[FnItem], item: &FnItem) -> Vec<(usize, usize)> {
    items
        .iter()
        .filter(|o| o.body.0 > item.body.0 && o.body.1 <= item.body.1)
        .map(|o| o.body)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let a = \"Instant::now()\"; // Instant::now()\nlet b = 1;";
        let lx = lex(src);
        assert!(!lx.code_lines[0].contains("Instant"));
        assert!(lx.code_lines[0].contains("let a ="));
        assert!(lx.code_lines[1].contains("let b = 1;"));
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = "let s = r#\"x.lock()\"#; let c = '\\n'; let lt: &'a str = \"\";";
        let lx = lex(src);
        assert!(!lx.code_lines[0].contains("lock"));
        let lifetimes: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 1);
        assert_eq!(lifetimes[0].text, "'a");
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still */ fn f() {}";
        let lx = lex(src);
        assert!(lx.tokens[0].is_ident("fn"));
    }

    #[test]
    fn token_lines_survive_multiline_strings() {
        let src = "let s = \"a\nb\nc\";\nfn g() {}";
        let lx = lex(src);
        let f = fn_items(&lx.tokens);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].name, "g");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn fn_items_found_with_generics_and_nesting() {
        let src = "impl<T: Clone> S<T> {\n  fn outer<A: Fn(u8) -> u8>(x: A) -> Vec<u8> {\n    fn inner() {}\n    inner()\n  }\n}\nfn decl_only();";
        let lx = lex(src);
        let items = fn_items(&lx.tokens);
        let names: Vec<_> = items.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        let nested = nested_bodies(&items, &items[0]);
        assert_eq!(nested.len(), 1);
    }

    #[test]
    fn tuple_index_is_a_literal_token() {
        let lx = lex("gate.0.lock()");
        let kinds: Vec<_> = lx.tokens.iter().map(|t| (t.kind, t.text.clone())).collect();
        assert_eq!(kinds[0], (TokKind::Ident, "gate".into()));
        assert_eq!(kinds[2], (TokKind::Lit, "0".into()));
        assert_eq!(kinds[4], (TokKind::Ident, "lock".into()));
    }
}
