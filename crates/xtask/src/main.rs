//! Workspace task runner: the static analysis suite.
//!
//! ```text
//! cargo xtask analyze [workspace-root] [--format text|json]
//!                     [--baseline path] [--strict-baseline]
//!                     [--write-baseline] [--out path]
//! cargo xtask lint [workspace-root]        # back-compat alias
//! ```
//!
//! `analyze` lexes every Rust source under `crates/`, `src/`, `tests/`,
//! and `examples/` (token stream + sanitized lines; see `lexer`) and
//! runs eight rules over the workspace:
//!
//! * the five ported line rules — `wall-clock`, `nondet-iter`,
//!   `hot-unwrap`, `guard-across-io`, `safety-comment` (plus
//!   `forbid-unsafe` per crate) — now blind to string/comment text;
//! * `lock-order` — static lock-acquisition-order analysis against
//!   `docs/lock-order.md` with depth-1 call propagation and cycle
//!   detection (production sources under `crates/*/src/`);
//! * `phase-transition` — `EntryState` atomic-phase conformance against
//!   `docs/phase-transitions.md`, cross-validated with the loom models;
//! * `event-parity` — server/sim `EventKind` construction parity.
//!
//! Diagnostics carry reorder-stable fingerprints. With `--baseline`,
//! findings listed in the baseline file are suppressed (ratcheted, not
//! ignored: stale entries are reported, and fail the run under
//! `--strict-baseline` — the CI honesty job). Exit is non-zero on any
//! new finding. The seeded-violation fixtures under
//! `crates/xtask/fixtures/` are exercised only by the unit tests, which
//! double as mutation validation: deleting a rule's core check makes
//! its fixture test fail.

mod diag;
mod lexer;
mod rules;

use diag::{apply_baseline, disambiguate, parse_baseline, to_json, Diagnostic};
use rules::{event_parity, fenced_block, legacy, lock_order, phase, SourceFile};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Build outputs, VCS metadata, and the seeded-violation lint
            // fixtures (scanned by the unit tests instead) are out of
            // scope.
            if name == "target" || name == "fixtures" || name == ".git" {
                continue;
            }
            rust_files_under(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Reads and lexes every workspace source file.
fn collect_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        rust_files_under(&root.join(top), &mut files);
    }
    if files.is_empty() {
        return Err(format!(
            "no Rust sources under {} — wrong workspace root?",
            root.display()
        ));
    }
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let content =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        out.push(SourceFile::new(&rel, &content));
    }
    Ok(out)
}

/// Runs every rule; returns diagnostics sorted by (file, line, rule).
fn analyze(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let files = collect_sources(root)?;
    let mut diags: Vec<Diagnostic> = Vec::new();

    // Line rules, every scanned file.
    for f in &files {
        diags.extend(legacy::check_file(legacy::FileCtx::for_path(&f.rel), f));
        if f.rel.starts_with("crates/") && f.rel.ends_with("/src/lib.rs") {
            diags.extend(legacy::check_forbid(&f.rel, &f.raw_lines.join("\n")));
        }
    }

    // Lock-order: production sources only (crates/*/src/**) — loom
    // models and integration tests construct scratch locks whose
    // classes are meaningless to the declared hierarchy.
    let lock_md = std::fs::read_to_string(root.join("docs/lock-order.md"))
        .map_err(|e| format!("read docs/lock-order.md: {e}"))?;
    let lock_spec = lock_order::LockSpec::parse(&fenced_block(&lock_md, "lock-order")?)?;
    let prod: Vec<&SourceFile> = files
        .iter()
        .filter(|f| f.rel.starts_with("crates/") && f.rel.contains("/src/"))
        .collect();
    diags.extend(lock_order::check(&lock_spec, &prod));

    // Phase-transition conformance.
    let phase_md = std::fs::read_to_string(root.join("docs/phase-transitions.md"))
        .map_err(|e| format!("read docs/phase-transitions.md: {e}"))?;
    let phase_spec = phase::PhaseSpec::parse(&fenced_block(&phase_md, "phase-transitions")?)?;
    let loom = files.iter().find(|f| f.rel == "tests/loom.rs");
    diags.extend(phase::check(
        &phase_spec,
        "docs/phase-transitions.md",
        &files,
        loom,
    ));

    // Server/sim event parity.
    if let Some(obs) = files.iter().find(|f| f.rel == "crates/obs/src/event.rs") {
        let server: Vec<&SourceFile> = files
            .iter()
            .filter(|f| f.rel.starts_with("crates/server/src/"))
            .collect();
        let sim: Vec<&SourceFile> = files
            .iter()
            .filter(|f| f.rel.starts_with("crates/sim/src/"))
            .collect();
        diags.extend(event_parity::check(obs, &server, &sim));
    }

    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    disambiguate(&mut diags);
    Ok(diags)
}

struct Cli {
    root: PathBuf,
    format: String,
    baseline: Option<PathBuf>,
    strict_baseline: bool,
    write_baseline: bool,
    out: Option<PathBuf>,
}

fn parse_cli(args: &[String], default_baseline: bool) -> Result<Cli, String> {
    let mut cli = Cli {
        root: PathBuf::from("."),
        format: "text".into(),
        baseline: None,
        strict_baseline: false,
        write_baseline: false,
        out: None,
    };
    let mut it = args.iter().peekable();
    let mut saw_root = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                if v != "text" && v != "json" {
                    return Err(format!("--format must be text or json, got {v:?}"));
                }
                cli.format = v.clone();
            }
            "--baseline" => {
                cli.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?));
            }
            "--strict-baseline" => cli.strict_baseline = true,
            "--write-baseline" => cli.write_baseline = true,
            "--out" => cli.out = Some(PathBuf::from(it.next().ok_or("--out needs a path")?)),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            root if !saw_root => {
                cli.root = PathBuf::from(root);
                saw_root = true;
            }
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
    }
    if cli.baseline.is_none() && default_baseline && cli.root.join("lint-baseline.json").is_file() {
        cli.baseline = Some(PathBuf::from("lint-baseline.json"));
    }
    Ok(cli)
}

fn run(cli: &Cli) -> Result<bool, String> {
    let diags = analyze(&cli.root)?;

    let baseline_path = cli.baseline.as_ref().map(|p| {
        if p.is_absolute() {
            p.clone()
        } else {
            cli.root.join(p)
        }
    });

    if cli.write_baseline {
        let path = baseline_path.ok_or("--write-baseline requires --baseline <path>")?;
        let text = diag::write_baseline(&diags, &[]);
        std::fs::write(&path, text).map_err(|e| format!("write {}: {e}", path.display()))?;
        eprintln!(
            "xtask analyze: wrote {} entr{} to {} — add a justification note to each",
            diags.len(),
            if diags.len() == 1 { "y" } else { "ies" },
            path.display()
        );
        return Ok(true);
    }

    let baseline = match &baseline_path {
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| format!("read baseline {}: {e}", p.display()))?;
            parse_baseline(&text)?
        }
        None => Vec::new(),
    };
    let (new, stale) = apply_baseline(&diags, &baseline);

    match cli.format.as_str() {
        "json" => {
            let owned: Vec<Diagnostic> = new.iter().map(|d| (*d).clone()).collect();
            let json = to_json(&owned);
            match &cli.out {
                Some(p) => {
                    std::fs::write(p, &json).map_err(|e| format!("write {}: {e}", p.display()))?
                }
                None => print!("{json}"),
            }
        }
        _ => {
            for d in &new {
                eprintln!("{d}");
            }
        }
    }
    for s in &stale {
        eprintln!(
            "xtask analyze: stale baseline entry {} [{}] {} — finding no longer exists; \
             remove it from the baseline",
            s.fingerprint, s.rule, s.note
        );
    }
    let suppressed = diags.len() - new.len();
    eprintln!(
        "xtask analyze: {} new finding(s), {suppressed} baselined, {} stale baseline entr{}",
        new.len(),
        stale.len(),
        if stale.len() == 1 { "y" } else { "ies" },
    );
    let stale_fails = cli.strict_baseline && !stale.is_empty();
    Ok(new.is_empty() && !stale_fails)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => ("", &args[..]),
    };
    // `lint` is the historical entry point: text output, picking up
    // `lint-baseline.json` from the workspace root when present.
    let parsed = match cmd {
        "analyze" => parse_cli(rest, false),
        "lint" => parse_cli(rest, true),
        _ => {
            eprintln!(
                "usage: cargo xtask analyze [root] [--format text|json] [--baseline path] \
                 [--strict-baseline] [--write-baseline] [--out path]\n       cargo xtask lint [root]"
            );
            return ExitCode::FAILURE;
        }
    };
    match parsed.and_then(|cli| run(&cli)) {
        Ok(true) => {
            eprintln!("xtask {cmd}: clean");
            ExitCode::SUCCESS
        }
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask {cmd}: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fixture(name: &str) -> String {
        let p = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name);
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
    }

    fn fixture_file(name: &str) -> SourceFile {
        SourceFile::new(name, &fixture(name))
    }

    fn rules_of(v: &[Diagnostic]) -> Vec<&'static str> {
        v.iter().map(|d| d.rule).collect()
    }

    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf()
    }

    // ---- ported line-rule fixtures -----------------------------------

    #[test]
    fn wall_clock_fixture_fires() {
        let v = legacy::check_file(legacy::FileCtx::default(), &fixture_file("wall_clock.rs"));
        assert_eq!(rules_of(&v), ["wall-clock", "wall-clock"]);
        // The marked site and the test-module site stay quiet.
        assert!(v.iter().all(|x| x.line < 20), "{v:?}");
    }

    #[test]
    fn nondet_iter_fixture_fires() {
        let ctx = legacy::FileCtx {
            surface: true,
            ..legacy::FileCtx::default()
        };
        let f = fixture_file("nondet_iter.rs");
        let v = legacy::check_file(ctx, &f);
        assert_eq!(rules_of(&v), ["nondet-iter", "nondet-iter"]);
        // ...but not on a non-surface file.
        assert!(legacy::check_file(legacy::FileCtx::default(), &f).is_empty());
    }

    #[test]
    fn hot_unwrap_fixture_fires() {
        let ctx = legacy::FileCtx {
            hot_path: true,
            ..legacy::FileCtx::default()
        };
        let f = fixture_file("unwrap_hot.rs");
        let v = legacy::check_file(ctx, &f);
        assert_eq!(rules_of(&v), ["hot-unwrap", "hot-unwrap"]);
        assert!(legacy::check_file(legacy::FileCtx::default(), &f).is_empty());
    }

    #[test]
    fn guard_across_io_fixture_fires() {
        let ctx = legacy::FileCtx {
            hot_path: true,
            ..legacy::FileCtx::default()
        };
        let f = fixture_file("guard_across_io.rs");
        let v = legacy::check_file(ctx, &f);
        assert_eq!(rules_of(&v), ["guard-across-io", "guard-across-io"]);
        assert!(v[0].message.contains("`g`"), "{:?}", v[0]);
        assert!(v[1].message.contains("`ds`"), "{:?}", v[1]);
        assert!(legacy::check_file(legacy::FileCtx::default(), &f).is_empty());
    }

    #[test]
    fn missing_safety_fixture_fires() {
        let v = legacy::check_file(
            legacy::FileCtx::default(),
            &fixture_file("missing_safety.rs"),
        );
        assert_eq!(rules_of(&v), ["safety-comment"]);
    }

    #[test]
    fn clean_fixture_is_clean() {
        let ctx = legacy::FileCtx {
            surface: true,
            hot_path: true,
            ..legacy::FileCtx::default()
        };
        let v = legacy::check_file(ctx, &fixture_file("clean.rs"));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn string_literal_fixture_is_clean() {
        // Rule patterns inside strings, raw strings, and comments — the
        // regex linter used to flag these; the lexer view must not.
        let ctx = legacy::FileCtx {
            surface: true,
            hot_path: true,
            ..legacy::FileCtx::default()
        };
        let v = legacy::check_file(ctx, &fixture_file("strings_clean.rs"));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn forbid_rule() {
        assert_eq!(
            rules_of(&legacy::check_forbid(
                "crates/demo/src/lib.rs",
                "pub fn f() {}"
            )),
            ["forbid-unsafe"]
        );
        assert!(legacy::check_forbid(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}"
        )
        .is_empty());
        // Allowlisted unsafe crate.
        assert!(legacy::check_forbid("crates/storage/src/lib.rs", "pub fn f() {}").is_empty());
    }

    #[test]
    fn clock_origin_exempt() {
        let ctx = legacy::FileCtx {
            clock_origin: true,
            ..legacy::FileCtx::default()
        };
        let f = SourceFile::new("clock.rs", "pub fn now() { Instant::now(); }");
        assert!(legacy::check_file(ctx, &f).is_empty());
    }

    // ---- lock-order fixtures -----------------------------------------

    fn fixture_lock_spec() -> lock_order::LockSpec {
        lock_order::LockSpec::parse(&[
            (1, "class admission 10 admission".into()),
            (2, "class quarantine 20 quarantine".into()),
            (3, "class shard.state 30 state".into()),
            (4, "class store 40 store".into()),
            (5, "class metrics 60 metrics".into()),
        ])
        .unwrap()
    }

    #[test]
    fn lock_order_bad_fixture_fires() {
        let v = lock_order::check(&fixture_lock_spec(), &[&fixture_file("lock_order_bad.rs")]);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|d| d.rule == "lock-order"));
        assert!(
            v.iter()
                .any(|d| d.message.contains("`inverted`") && d.message.contains("ascending")),
            "{v:?}"
        );
        assert!(
            v.iter().any(|d| d.message.contains("same-shard-only")),
            "{v:?}"
        );
        assert!(
            v.iter()
                .any(|d| d.message.contains("via call to `lock_admission_inner`")),
            "{v:?}"
        );
        // Each diagnostic names the file and a real line.
        assert!(v
            .iter()
            .all(|d| d.file == "lock_order_bad.rs" && d.line > 0));
    }

    #[test]
    fn lock_order_clean_fixture_is_clean() {
        let v = lock_order::check(
            &fixture_lock_spec(),
            &[&fixture_file("lock_order_clean.rs")],
        );
        assert!(v.is_empty(), "{v:?}");
    }

    // ---- phase-transition fixtures -----------------------------------

    fn fixture_phase_spec() -> phase::PhaseSpec {
        let block: Vec<(usize, String)> = "\
transition publish cas Accumulating Full SeqCst
transition force_swap_out store * SwappedOut Release
model publish fixture_publish_model
model force_swap_out fixture_swap_model
"
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.to_string()))
        .collect();
        phase::PhaseSpec::parse(&block).unwrap()
    }

    fn fixture_loom() -> SourceFile {
        SourceFile::new(
            "tests/loom.rs",
            "fn fixture_publish_model() { loom::model(|| { s.publish(); }); }\n\
             fn fixture_swap_model() { loom::model(|| { s.force_swap_out(); }); }\n",
        )
    }

    #[test]
    fn phase_bad_fixture_fires() {
        let v = phase::check(
            &fixture_phase_spec(),
            "docs/phase-transitions.md",
            &[fixture_file("phase_bad.rs")],
            Some(&fixture_loom()),
        );
        assert!(
            v.iter().any(|d| d.rule == "phase-transition"
                && d.file == "phase_bad.rs"
                && d.message.contains("undeclared phase transition")
                && d.message.contains("`abort`")),
            "{v:?}"
        );
    }

    #[test]
    fn phase_clean_fixture_is_clean() {
        let v = phase::check(
            &fixture_phase_spec(),
            "docs/phase-transitions.md",
            &[fixture_file("phase_clean.rs")],
            Some(&fixture_loom()),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    // ---- event-parity fixtures ---------------------------------------

    #[test]
    fn event_parity_bad_fixture_fires() {
        let enum_f = fixture_file("parity_events.rs");
        let server = fixture_file("parity_server_bad.rs");
        let sim = fixture_file("parity_sim.rs");
        let v = event_parity::check(&enum_f, &[&server], &[&sim]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "event-parity");
        assert_eq!(v[0].file, "parity_server_bad.rs");
        assert!(v[0].message.contains("server engine"), "{}", v[0].message);
        assert!(v[0].line > 0);
    }

    #[test]
    fn event_parity_clean_fixture_is_clean() {
        let enum_f = fixture_file("parity_events.rs");
        let server = fixture_file("parity_server_clean.rs");
        let sim = fixture_file("parity_sim.rs");
        let v = event_parity::check(&enum_f, &[&server], &[&sim]);
        assert!(v.is_empty(), "{v:?}");
    }

    // ---- fingerprint stability ---------------------------------------

    /// Decodes permutation `n` of `0..k` (factorial number system).
    fn nth_permutation(mut n: usize, k: usize) -> Vec<usize> {
        let mut pool: Vec<usize> = (0..k).collect();
        let mut out = Vec::with_capacity(k);
        for i in (1..=k).rev() {
            let fact: usize = (1..i).product();
            let idx = n / fact;
            n %= fact;
            out.push(pool.remove(idx));
        }
        out
    }

    proptest! {
        /// Reordering unrelated items must not change a finding's
        /// fingerprint — otherwise the ratchet baseline churns on every
        /// refactor.
        #[test]
        fn fingerprints_stable_under_reordering(perm in 0usize..24) {
            const BLOCKS: [&str; 4] = [
                "fn alpha() { let x = 1; }",
                "fn beta() -> u32 { 2 }",
                "fn gamma() { let t = Instant::now(); }",
                "fn delta(v: &mut Vec<u8>) { v.clear(); }",
            ];
            let canonical = {
                let src = BLOCKS.join("\n");
                let f = SourceFile::new("p.rs", &src);
                let v = legacy::check_file(legacy::FileCtx::default(), &f);
                prop_assert_eq!(v.len(), 1);
                v[0].fingerprint.clone()
            };
            let order = nth_permutation(perm, 4);
            let src: String = order
                .iter()
                .map(|&i| BLOCKS[i])
                .collect::<Vec<_>>()
                .join("\n");
            let f = SourceFile::new("p.rs", &src);
            let v = legacy::check_file(legacy::FileCtx::default(), &f);
            prop_assert_eq!(v.len(), 1);
            prop_assert_eq!(&v[0].fingerprint, &canonical);
        }
    }

    // ---- whole-workspace ratchet -------------------------------------

    /// The real workspace, checked exactly the way CI checks it: every
    /// finding is either fixed or justified in lint-baseline.json, and
    /// no baseline entry is stale.
    #[test]
    fn workspace_matches_baseline() {
        let root = workspace_root();
        let diags = analyze(&root).unwrap();
        let text = std::fs::read_to_string(root.join("lint-baseline.json")).unwrap();
        let baseline = parse_baseline(&text).unwrap();
        let (new, stale) = apply_baseline(&diags, &baseline);
        assert!(new.is_empty(), "new findings: {new:#?}");
        assert!(stale.is_empty(), "stale baseline entries: {stale:#?}");
        // The acceptance bar: a small, justified baseline.
        assert!(
            baseline.len() <= 5,
            "baseline too large: {}",
            baseline.len()
        );
        assert!(
            baseline.iter().all(|b| !b.note.is_empty()),
            "every baseline entry needs a justification note"
        );
    }
}
