//! Workspace task runner.
//!
//! ```text
//! cargo xtask lint [workspace-root]
//! ```
//!
//! `lint` runs the determinism and safety lints that clippy cannot
//! express, using a hand-rolled line scanner (no external parser — the
//! build image is offline). Five rules:
//!
//! * **wall-clock** — `Instant::now()` / `SystemTime::now()` are
//!   forbidden everywhere except the `vmqs_core::clock` origin.
//!   Mirrors `clippy.toml`'s `disallowed-methods` so the rule also
//!   holds on builds that don't run clippy. Escape hatch:
//!   `// lint:allow(wall-clock): <why>` within three lines above.
//! * **nondet-iter** — on deterministic surfaces (ranking and
//!   conformance-trace modules), iterating a `HashMap`/`HashSet`
//!   declared in the same file is forbidden: iteration order would
//!   leak host randomness into ranked output and golden traces. Use a
//!   `BTreeMap`, sort before emitting, or justify with
//!   `// lint:sorted: <why order cannot escape>`.
//! * **hot-unwrap** — `.unwrap()` / `.expect(` are forbidden on the
//!   server worker and submit paths (outside `#[cfg(test)]`): a panic
//!   there poisons no lock (parking_lot) and strands every queued
//!   query. Convert to a typed `ServerError` or justify with
//!   `// lint:allow(unwrap): <why unreachable>`.
//! * **guard-across-io** — on the same hot-path files, a lock guard
//!   bound by `let g = ….lock();` / `.read();` / `.write();` must not
//!   remain in scope across a page read or kernel call (`read_page`,
//!   `fetch_pages`, `.execute(`, `session_for`): one stalled I/O would
//!   serialize every worker behind the guard — the contention the
//!   sharded scheduler exists to avoid (DESIGN.md §12). The guard's
//!   extent is tracked line-based: until `drop(g)` or the first dedent
//!   below the binding. Drop the guard first, clone what you need out,
//!   or justify with `// lint:allow(guard-across-io): <why>`.
//! * **safety-comment** — every `unsafe` block/fn/impl needs a
//!   `SAFETY:` (or rustdoc `# Safety`) comment within five lines
//!   above, and every non-`unsafe`-using crate must carry
//!   `#![forbid(unsafe_code)]` in its `lib.rs`.
//!
//! Exit status is non-zero when any rule fires; each violation prints
//! as `path:line: [rule] message`. The seeded-violation fixtures under
//! `crates/xtask/fixtures/` are scanned only by the unit tests, which
//! assert that every rule both fires on its fixture and stays quiet on
//! the clean one.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files on the deterministic surface: ranking decisions and
/// conformance-trace output. Iteration order here is observable in
/// golden traces, so rule `nondet-iter` applies.
const SURFACE_FILES: &[&str] = &[
    "crates/core/src/rank.rs",
    "crates/core/src/graph.rs",
    "crates/core/src/strategy.rs",
    "crates/obs/src/event.rs",
    "crates/obs/src/metrics.rs",
    "crates/obs/src/timeline.rs",
];

/// Files on the server hot path: the worker loop and the submit path.
/// Rule `hot-unwrap` applies.
const HOT_PATH_FILES: &[&str] = &["crates/server/src/engine.rs", "crates/server/src/pages.rs"];

/// The sanctioned wall-clock origin — exempt from rule `wall-clock`.
const CLOCK_ORIGIN: &str = "crates/core/src/clock.rs";

/// Crates allowed to contain `unsafe` (and therefore exempt from the
/// `#![forbid(unsafe_code)]` requirement): only the storage layer's
/// AVX-512 page fill.
const UNSAFE_CRATES: &[&str] = &["crates/storage"];

#[derive(Debug, PartialEq)]
struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Per-file lint configuration, derived from the workspace-relative
/// path (and constructed directly by the fixture tests).
#[derive(Clone, Copy, Default)]
struct FileCtx<'a> {
    rel: &'a str,
    surface: bool,
    hot_path: bool,
    clock_origin: bool,
}

impl<'a> FileCtx<'a> {
    fn for_path(rel: &'a str) -> Self {
        FileCtx {
            rel,
            surface: SURFACE_FILES.contains(&rel),
            hot_path: HOT_PATH_FILES.contains(&rel),
            clock_origin: rel == CLOCK_ORIGIN,
        }
    }
}

/// True when `lines[idx]` or any of the `window` lines above it
/// contains `marker`.
fn marked(lines: &[&str], idx: usize, marker: &str, window: usize) -> bool {
    let lo = idx.saturating_sub(window);
    lines[lo..=idx].iter().any(|l| l.contains(marker))
}

/// Strips `//` comments so commented-out code never trips a rule.
/// (Line-based: does not attempt string-literal awareness, which the
/// codebase's style makes a non-issue.)
fn code_of(line: &str) -> &str {
    match line.find("//") {
        Some(p) => &line[..p],
        None => line,
    }
}

fn lint_file(ctx: FileCtx<'_>, content: &str) -> Vec<Violation> {
    let lines: Vec<&str> = content.lines().collect();
    let mut out = Vec::new();
    let push = |out: &mut Vec<Violation>, idx: usize, rule: &'static str, message: String| {
        out.push(Violation {
            file: ctx.rel.to_string(),
            line: idx + 1,
            rule,
            message,
        });
    };

    // Everything after `#[cfg(test)]` is test code: hot-path panics
    // there are fine, as is reading the real clock to time a test.
    let test_start = lines
        .iter()
        .position(|l| l.trim() == "#[cfg(test)]")
        .unwrap_or(lines.len());

    // ---- wall-clock ---------------------------------------------------
    if !ctx.clock_origin {
        for (i, line) in lines.iter().enumerate().take(test_start) {
            let code = code_of(line);
            if (code.contains("Instant::now()") || code.contains("SystemTime::now()"))
                && !marked(&lines, i, "lint:allow(wall-clock)", 3)
            {
                push(
                    &mut out,
                    i,
                    "wall-clock",
                    "raw clock read; route through vmqs_core::clock (see clippy.toml)".into(),
                );
            }
        }
    }

    // ---- nondet-iter --------------------------------------------------
    if ctx.surface {
        // Pass 1: names declared with a HashMap/HashSet type anywhere in
        // the file (fields and annotated locals).
        let mut hash_names: Vec<String> = Vec::new();
        for line in &lines {
            let code = code_of(line);
            let mut rest = code;
            while let Some(p) = rest.find("Hash") {
                let after = &rest[p..];
                if after.starts_with("HashMap<") || after.starts_with("HashSet<") {
                    // Walk back over `name:` / `name :` before the type.
                    let before = rest[..p].trim_end();
                    if let Some(b) = before.strip_suffix(':') {
                        let name: String = b
                            .trim_end()
                            .chars()
                            .rev()
                            .take_while(|c| c.is_alphanumeric() || *c == '_')
                            .collect::<Vec<_>>()
                            .into_iter()
                            .rev()
                            .collect();
                        if !name.is_empty() && !hash_names.contains(&name) {
                            hash_names.push(name);
                        }
                    }
                }
                rest = &rest[p + 4..];
            }
        }
        // Pass 2: iteration over any such name.
        const ITER_CALLS: &[&str] = &[".iter()", ".keys()", ".values()", ".into_iter()", ".drain("];
        for (i, line) in lines.iter().enumerate().take(test_start) {
            let code = code_of(line);
            for name in &hash_names {
                // Method-style iteration (`x.keys()`, `self.x.drain(..)`)
                // or a for-loop whose iterated expression names `x`.
                let method = ITER_CALLS
                    .iter()
                    .any(|c| code.contains(&format!("{name}{c}")));
                let for_loop = code.contains("for ")
                    && code
                        .find(" in ")
                        .is_some_and(|p| code[p + 4..].contains(name.as_str()));
                let iterated = method || for_loop;
                if iterated && !marked(&lines, i, "lint:sorted", 3) {
                    push(
                        &mut out,
                        i,
                        "nondet-iter",
                        format!(
                            "iterating hash-ordered `{name}` on a deterministic surface; \
                             use BTreeMap/BTreeSet, sort first, or justify with `// lint:sorted:`"
                        ),
                    );
                }
            }
        }
    }

    // ---- hot-unwrap ---------------------------------------------------
    if ctx.hot_path {
        for (i, line) in lines.iter().enumerate().take(test_start) {
            let code = code_of(line);
            if (code.contains(".unwrap()") || code.contains(".expect("))
                && !marked(&lines, i, "lint:allow(unwrap)", 3)
            {
                push(
                    &mut out,
                    i,
                    "hot-unwrap",
                    "panic on the worker/submit path; return a typed ServerError \
                     or justify with `// lint:allow(unwrap):`"
                        .into(),
                );
            }
        }
    }

    // ---- guard-across-io ----------------------------------------------
    if ctx.hot_path {
        const IO_MARKERS: &[&str] = &["read_page(", "fetch_pages(", ".execute(", "session_for("];
        for (i, line) in lines.iter().enumerate().take(test_start) {
            let code = code_of(line);
            let trimmed = code.trim_start();
            let Some(rest) = trimmed.strip_prefix("let ") else {
                continue;
            };
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            // Only bindings whose value IS the guard: `let g = x.lock();`.
            // A trailing method call (`x.lock().stats();`) drops the
            // temporary at the end of the statement.
            let end = code.trim_end();
            let is_guard = end.ends_with(".lock();")
                || end.ends_with(".read();")
                || end.ends_with(".write();");
            if name.is_empty() || !is_guard || marked(&lines, i, "lint:allow(guard-across-io)", 3) {
                continue;
            }
            let indent = line.len() - line.trim_start().len();
            let dropper = format!("drop({name})");
            for (j, later) in lines.iter().enumerate().take(test_start).skip(i + 1) {
                let lcode = code_of(later);
                if lcode.trim().is_empty() {
                    continue;
                }
                let lindent = later.len() - later.trim_start().len();
                if lindent < indent || lcode.contains(&dropper) {
                    break;
                }
                if IO_MARKERS.iter().any(|m| lcode.contains(m)) {
                    push(
                        &mut out,
                        j,
                        "guard-across-io",
                        format!(
                            "I/O or kernel call while guard `{name}` (taken at line {}) is \
                             held; drop it first or justify with \
                             `// lint:allow(guard-across-io):`",
                            i + 1
                        ),
                    );
                    break;
                }
            }
        }
    }

    // ---- safety-comment -----------------------------------------------
    for (i, line) in lines.iter().enumerate() {
        let code = code_of(line).trim_start();
        let starts_unsafe = code.contains("unsafe fn ")
            || code.contains("unsafe impl ")
            || code.contains("unsafe {");
        if starts_unsafe && !marked(&lines, i, "SAFETY:", 2) && !marked(&lines, i, "# Safety", 6) {
            push(
                &mut out,
                i,
                "safety-comment",
                "`unsafe` without a `// SAFETY:` comment within 5 lines".into(),
            );
        }
    }

    out
}

/// Checks that a crate's `lib.rs` forbids unsafe code (unless the crate
/// is on the `UNSAFE_CRATES` allowlist).
fn lint_forbid(rel_lib: &str, content: &str) -> Vec<Violation> {
    let crate_dir = rel_lib.trim_end_matches("/src/lib.rs");
    if UNSAFE_CRATES.contains(&crate_dir) {
        return Vec::new();
    }
    if content.contains("#![forbid(unsafe_code)]") {
        return Vec::new();
    }
    vec![Violation {
        file: rel_lib.to_string(),
        line: 1,
        rule: "forbid-unsafe",
        message: "crate does not need unsafe: add `#![forbid(unsafe_code)]`".into(),
    }]
}

fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Vendored external shims and the lint fixtures are out of
            // scope (fixtures are scanned by the unit tests instead).
            if name == "target" || name == "fixtures" || name == ".git" {
                continue;
            }
            rust_files_under(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn run_lint(root: &Path) -> Result<usize, String> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests"] {
        rust_files_under(&root.join(top), &mut files);
    }
    if files.is_empty() {
        return Err(format!(
            "no Rust sources under {} — wrong workspace root?",
            root.display()
        ));
    }
    files.sort();

    let mut violations = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        // The linter's own sources carry every rule pattern as a string
        // literal; scanning them is pure false positives.
        if rel.starts_with("crates/xtask/") {
            continue;
        }
        let content =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        violations.extend(lint_file(FileCtx::for_path(&rel), &content));
        if rel.starts_with("crates/") && rel.ends_with("/src/lib.rs") {
            violations.extend(lint_forbid(&rel, &content));
        }
    }

    for v in &violations {
        eprintln!("{v}");
    }
    Ok(violations.len())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("."));
            match run_lint(&root) {
                Ok(0) => {
                    eprintln!("xtask lint: clean");
                    ExitCode::SUCCESS
                }
                Ok(n) => {
                    eprintln!("xtask lint: {n} violation(s)");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("xtask lint: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("usage: cargo xtask lint [workspace-root]");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str) -> String {
        let p = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name);
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
    }

    fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn wall_clock_fixture_fires() {
        let v = lint_file(FileCtx::default(), &fixture("wall_clock.rs"));
        assert_eq!(rules_of(&v), ["wall-clock", "wall-clock"]);
        // The marked site and the test-module site stay quiet.
        assert!(v.iter().all(|x| x.line < 20), "{v:?}");
    }

    #[test]
    fn nondet_iter_fixture_fires() {
        let ctx = FileCtx {
            surface: true,
            ..FileCtx::default()
        };
        let v = lint_file(ctx, &fixture("nondet_iter.rs"));
        assert_eq!(rules_of(&v), ["nondet-iter", "nondet-iter"]);
        // ...but not on a non-surface file.
        assert!(lint_file(FileCtx::default(), &fixture("nondet_iter.rs")).is_empty());
    }

    #[test]
    fn hot_unwrap_fixture_fires() {
        let ctx = FileCtx {
            hot_path: true,
            ..FileCtx::default()
        };
        let v = lint_file(ctx, &fixture("unwrap_hot.rs"));
        assert_eq!(rules_of(&v), ["hot-unwrap", "hot-unwrap"]);
        assert!(lint_file(FileCtx::default(), &fixture("unwrap_hot.rs")).is_empty());
    }

    #[test]
    fn guard_across_io_fixture_fires() {
        let ctx = FileCtx {
            hot_path: true,
            ..FileCtx::default()
        };
        let v = lint_file(ctx, &fixture("guard_across_io.rs"));
        assert_eq!(rules_of(&v), ["guard-across-io", "guard-across-io"]);
        // The rule names the guard taken in each bad function.
        assert!(v[0].message.contains("`g`"), "{:?}", v[0]);
        assert!(v[1].message.contains("`ds`"), "{:?}", v[1]);
        // ...and is silent off the hot path.
        assert!(lint_file(FileCtx::default(), &fixture("guard_across_io.rs")).is_empty());
    }

    #[test]
    fn missing_safety_fixture_fires() {
        let v = lint_file(FileCtx::default(), &fixture("missing_safety.rs"));
        assert_eq!(rules_of(&v), ["safety-comment"]);
    }

    #[test]
    fn clean_fixture_is_clean() {
        let ctx = FileCtx {
            surface: true,
            hot_path: true,
            ..FileCtx::default()
        };
        let v = lint_file(ctx, &fixture("clean.rs"));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn forbid_rule() {
        assert_eq!(
            rules_of(&lint_forbid("crates/demo/src/lib.rs", "pub fn f() {}")),
            ["forbid-unsafe"]
        );
        assert!(lint_forbid(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}"
        )
        .is_empty());
        // Allowlisted unsafe crate.
        assert!(lint_forbid("crates/storage/src/lib.rs", "pub fn f() {}").is_empty());
    }

    #[test]
    fn clock_origin_exempt() {
        let ctx = FileCtx {
            clock_origin: true,
            ..FileCtx::default()
        };
        assert!(lint_file(ctx, "pub fn now() { Instant::now(); }").is_empty());
    }

    /// The real workspace must be clean — the same invocation CI runs.
    #[test]
    fn workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        assert_eq!(run_lint(root).unwrap(), 0);
    }
}
