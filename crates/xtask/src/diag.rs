//! Structured diagnostics, stable fingerprints, JSON output, and the
//! ratcheted baseline file.
//!
//! Every rule emits [`Diagnostic`]s. A diagnostic's *fingerprint* is an
//! FNV-1a-64 hash over `rule | file | stable-key`, where the stable key
//! deliberately excludes line numbers: moving unrelated code above a
//! finding must not change its identity, or the baseline would churn on
//! every refactor. Rules choose semantic keys (held→acquired lock pair,
//! phase-transition triple, event-variant name); the legacy line rules
//! key on the sanitized line *text* plus an occurrence index among
//! identical texts in the same file.
//!
//! The baseline (`lint-baseline.json`) is a ratchet, not an ignore
//! list: a finding whose fingerprint appears there is suppressed, but a
//! baseline entry that no longer matches any finding is *stale* and
//! flagged (an error under `--strict-baseline`, the CI honesty job), so
//! fixed findings must be removed from the file.

use std::fmt;

#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub message: String,
    pub fingerprint: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} {{{}}}",
            self.file, self.line, self.rule, self.message, self.fingerprint
        )
    }
}

/// FNV-1a 64-bit — tiny, dependency-free, and stable across platforms.
pub fn fnv1a64(data: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of (rule, file, stable key) as 16 hex digits.
pub fn fingerprint(rule: &str, file: &str, key: &str) -> String {
    format!("{:016x}", fnv1a64(&format!("{rule}|{file}|{key}")))
}

/// Disambiguates diagnostics that hash to the same (rule, file, key) —
/// e.g. two identical `.unwrap()` lines in one file — by appending an
/// occurrence index. Call after a rule collected all its diagnostics
/// for a file; `diags` must be in source order so indices are stable.
pub fn disambiguate(diags: &mut [Diagnostic]) {
    use std::collections::HashMap;
    let mut seen: HashMap<String, usize> = HashMap::new();
    for d in diags.iter_mut() {
        let n = seen.entry(d.fingerprint.clone()).or_insert(0);
        if *n > 0 {
            d.fingerprint = fingerprint(d.rule, &d.file, &format!("{}#{}", d.fingerprint, n));
        }
        *n += 1;
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a JSON array of objects, one per line, sorted
/// by (file, line, rule) for deterministic output.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"fingerprint\": \"{}\"}}{}\n",
            json_escape(d.rule),
            json_escape(&d.file),
            d.line,
            json_escape(&d.message),
            json_escape(&d.fingerprint),
            if i + 1 < diags.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    out
}

/// One entry in `lint-baseline.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineEntry {
    pub fingerprint: String,
    pub rule: String,
    pub note: String,
}

/// Parses the baseline file. The format is our own (written by
/// `--write-baseline` or by hand): a JSON object with a `version` and an
/// `entries` array of flat string-valued objects. The reader is a
/// minimal scanner for exactly that shape — not a general JSON parser —
/// and errors on anything it does not recognise rather than guessing.
pub fn parse_baseline(src: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut entries = Vec::new();
    let bytes = src.as_bytes();
    // Scan object-by-object inside the entries array; tolerate
    // whitespace and field order, require string values.
    let mut i = src
        .find("\"entries\"")
        .ok_or("baseline: missing \"entries\" key")?;
    while i < bytes.len() && bytes[i] != b'[' {
        i += 1;
    }
    if i == bytes.len() {
        return Err("baseline: \"entries\" is not an array".into());
    }
    i += 1;
    loop {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            return Err("baseline: unterminated entries array".into());
        }
        match bytes[i] {
            b']' => break,
            b',' => {
                i += 1;
                continue;
            }
            b'{' => {
                let end = src[i..]
                    .find('}')
                    .map(|p| i + p)
                    .ok_or("baseline: unterminated entry object")?;
                let obj = &src[i + 1..end];
                let mut fp = None;
                let mut rule = None;
                let mut note = None;
                for (k, v) in string_fields(obj)? {
                    match k.as_str() {
                        "fingerprint" => fp = Some(v),
                        "rule" => rule = Some(v),
                        "note" => note = Some(v),
                        other => return Err(format!("baseline: unknown field \"{other}\"")),
                    }
                }
                entries.push(BaselineEntry {
                    fingerprint: fp.ok_or("baseline: entry missing \"fingerprint\"")?,
                    rule: rule.unwrap_or_default(),
                    note: note.unwrap_or_default(),
                });
                i = end + 1;
            }
            c => {
                return Err(format!(
                    "baseline: unexpected byte {:?} in entries",
                    c as char
                ))
            }
        }
    }
    Ok(entries)
}

/// Splits a flat `"k": "v", "k2": "v2"` object body into pairs.
fn string_fields(obj: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = obj.trim();
    while !rest.is_empty() {
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
            continue;
        }
        let r = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("baseline: expected key in {obj:?}"))?;
        let kend = r.find('"').ok_or("baseline: unterminated key")?;
        let key = r[..kend].to_string();
        let r = r[kend + 1..].trim_start();
        let r = r
            .strip_prefix(':')
            .ok_or("baseline: expected ':' after key")?
            .trim_start();
        let r = r
            .strip_prefix('"')
            .ok_or("baseline: expected string value")?;
        // Values are fingerprints / rule names / notes — our writer never
        // emits escapes in them, so a plain quote scan suffices; a `\"`
        // would need a hand-edit and the unknown-field error catches drift.
        let vend = r.find('"').ok_or("baseline: unterminated value")?;
        out.push((key, r[..vend].to_string()));
        rest = r[vend + 1..].trim_start();
    }
    Ok(out)
}

/// Serialises a baseline from diagnostics (for `--write-baseline`).
pub fn write_baseline(diags: &[Diagnostic], notes: &[(&str, &str)]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let note = notes
            .iter()
            .find(|(fp, _)| *fp == d.fingerprint)
            .map(|(_, n)| *n)
            .unwrap_or("");
        out.push_str(&format!(
            "    {{\"fingerprint\": \"{}\", \"rule\": \"{}\", \"note\": \"{}\"}}{}\n",
            json_escape(&d.fingerprint),
            json_escape(d.rule),
            json_escape(note),
            if i + 1 < diags.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Splits findings against a baseline: (new findings, stale entries).
pub fn apply_baseline<'d, 'b>(
    diags: &'d [Diagnostic],
    baseline: &'b [BaselineEntry],
) -> (Vec<&'d Diagnostic>, Vec<&'b BaselineEntry>) {
    let new: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| !baseline.iter().any(|b| b.fingerprint == d.fingerprint))
        .collect();
    let stale: Vec<&BaselineEntry> = baseline
        .iter()
        .filter(|b| !diags.iter().any(|d| d.fingerprint == b.fingerprint))
        .collect();
    (new, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_line_free() {
        let a = fingerprint("r", "f.rs", "key");
        let b = fingerprint("r", "f.rs", "key");
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert_ne!(a, fingerprint("r", "f.rs", "other"));
        assert_ne!(a, fingerprint("r2", "f.rs", "key"));
    }

    #[test]
    fn disambiguate_splits_duplicates() {
        let mk = |line| Diagnostic {
            rule: "r",
            file: "f.rs".into(),
            line,
            message: String::new(),
            fingerprint: fingerprint("r", "f.rs", "same"),
        };
        let mut v = vec![mk(1), mk(5), mk(9)];
        disambiguate(&mut v);
        assert_ne!(v[0].fingerprint, v[1].fingerprint);
        assert_ne!(v[1].fingerprint, v[2].fingerprint);
        // First occurrence keeps the raw fingerprint.
        assert_eq!(v[0].fingerprint, fingerprint("r", "f.rs", "same"));
    }

    #[test]
    fn baseline_roundtrip() {
        let d = Diagnostic {
            rule: "event-parity",
            file: "crates/server/src/engine.rs".into(),
            line: 42,
            message: "server-only variant".into(),
            fingerprint: "deadbeefdeadbeef".into(),
        };
        let text = write_baseline(
            std::slice::from_ref(&d),
            &[("deadbeefdeadbeef", "threaded-only arc")],
        );
        let parsed = parse_baseline(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].fingerprint, "deadbeefdeadbeef");
        assert_eq!(parsed[0].note, "threaded-only arc");
        let diags = [d];
        let (new, stale) = apply_baseline(&diags, &parsed);
        assert!(new.is_empty() && stale.is_empty());
    }

    #[test]
    fn baseline_detects_new_and_stale() {
        let d = Diagnostic {
            rule: "r",
            file: "f.rs".into(),
            line: 1,
            message: String::new(),
            fingerprint: "1111111111111111".into(),
        };
        let b = BaselineEntry {
            fingerprint: "2222222222222222".into(),
            rule: "r".into(),
            note: String::new(),
        };
        let (new, stale) = apply_baseline(std::slice::from_ref(&d), std::slice::from_ref(&b));
        assert_eq!(new.len(), 1);
        assert_eq!(stale.len(), 1);
    }

    #[test]
    fn baseline_rejects_unknown_fields() {
        let bad = r#"{"version": 1, "entries": [{"fingerprint": "x", "extra": "y"}]}"#;
        assert!(parse_baseline(bad).is_err());
    }

    #[test]
    fn json_output_is_valid_enough() {
        let d = Diagnostic {
            rule: "r",
            file: "a\"b.rs".into(),
            line: 3,
            message: "msg with \"quotes\" and\nnewline".into(),
            fingerprint: "f".into(),
        };
        let j = to_json(&[d]);
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("\\n"));
        assert!(j.starts_with("[\n") && j.ends_with("]\n"));
    }
}
